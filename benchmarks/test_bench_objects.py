"""Experiment C7 — object invocation policies (paper Section 4.2).

Claim: the object runtime "could use location information exported
from Khazana to decide if it is more efficient to load a local copy
of the object or perform a remote invocation of the object on a node
where it is already physically instantiated".

On a WAN, a client invokes a remote object under three policies:

- LOCAL: always pull a replica and run locally — pays one transfer,
  then repeated use is free, but every write must keep replicas
  coherent;
- REMOTE: always RPC to the object's home — pays one WAN round trip
  per call, never moves the state;
- ADAPTIVE: starts remote, localises after repeated use.

Expected shape: REMOTE wins for one-shot access to a cold object;
LOCAL wins for repeated access; ADAPTIVE tracks the better of the two.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.objects import (
    InvocationPolicy,
    KhazanaObject,
    ObjectRuntime,
    readonly,
    register_class,
)

CALLS = 12


@register_class
class BenchCounter(KhazanaObject):
    state_budget = 4096

    @staticmethod
    def initial_state():
        return {"n": 0}

    def bump(self, state):
        state["n"] += 1
        return state["n"]

    @readonly
    def value(self, state):
        return state["n"]


def _run(policy, calls, read_only):
    cluster = create_cluster(num_nodes=4, topology="wan")
    home_rt = ObjectRuntime(cluster.client(node=1))
    ref = home_rt.export(BenchCounter)
    home_rt.proxy(ref).bump()   # object warm at its home

    client_rt = ObjectRuntime(cluster.client(node=3))
    proxy = client_rt.proxy(ref, policy=policy)
    start = cluster.now
    for _ in range(calls):
        if read_only:
            proxy.value()
        else:
            proxy.bump()
    elapsed = cluster.now - start
    return 1000 * elapsed / calls


def test_object_invocation_policies(once):
    scenarios = {
        "one-shot read (cold)": dict(calls=1, read_only=True),
        f"{CALLS} repeated reads": dict(calls=CALLS, read_only=True),
        f"{CALLS} repeated writes": dict(calls=CALLS, read_only=False),
    }

    def run():
        results = {}
        for name, kwargs in scenarios.items():
            for policy in InvocationPolicy:
                results[(name, policy.value)] = _run(policy, **kwargs)
        return results

    results = once(run)

    table = Table(
        "C7: mean ms per invocation on a WAN (object homed remotely)",
        ["scenario", "local", "remote", "adaptive"],
    )
    for name in scenarios:
        table.add(
            name,
            results[(name, "local")],
            results[(name, "remote")],
            results[(name, "adaptive")],
        )
    table.show()

    one_shot = "one-shot read (cold)"
    repeated = f"{CALLS} repeated reads"

    # Shape 1: for a single cold read, remote invocation is no worse
    # than dragging a replica over (one RPC vs lock+fetch traffic).
    assert results[(one_shot, "remote")] <= results[(one_shot, "local")] + 1e-9
    # Shape 2: for repeated reads, the local replica amortises its
    # transfer and crushes per-call RPC.
    assert results[(repeated, "local")] < results[(repeated, "remote")] / 2
    # Shape 3: adaptive is never the outright worst policy.
    for name in scenarios:
        trio = {
            p: results[(name, p)] for p in ("local", "remote", "adaptive")
        }
        assert trio["adaptive"] <= max(trio["local"], trio["remote"]) + 1e-9
