"""Experiment C5 — the local storage hierarchy (paper Section 3.4).

Claim: node-local storage is a cache of global data; RAM victimizes
to disk, and the hierarchy keeps the hot working set in the fastest
level.  We run a Zipf workload over a working set larger than RAM and
report RAM hit rate, victimizations, and mean latency for three RAM
sizes.  Expected shape: bigger RAM → higher RAM hit rate → lower mean
latency; tiny RAM still works (the disk level absorbs the overflow),
it is just slower.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.bench.workloads import WorkloadSpec, make_regions, run_access_workload
from repro.core.daemon import DaemonConfig

REGIONS = 96          # 96 pages of working set
OPS = 400
RAM_SIZES = (16, 48, 256)   # pages


def _run(ram_pages):
    config = DaemonConfig(
        memory_bytes=ram_pages * 4096,
        disk_bytes=4096 * 4096,
    )
    cluster = create_cluster(num_nodes=2, config=config)
    # All regions homed at node 0 (the remote side); node 1 caches.
    owner = cluster.client(node=0)
    regions = make_regions(owner, REGIONS)
    for region in regions:
        owner.write_at(region.rid, b"data")
    reader = cluster.client(node=1)
    daemon = cluster.daemon(1)

    spec = WorkloadSpec(operations=OPS, write_fraction=0.0,
                        zipf_skew=1.0, seed=42)
    stats_before = (daemon.storage.stats.ram_hits,
                    daemon.storage.stats.disk_hits,
                    daemon.storage.stats.misses)
    result = run_access_workload(cluster, reader, regions, spec)
    s = daemon.storage.stats
    ram_hits = s.ram_hits - stats_before[0]
    disk_hits = s.disk_hits - stats_before[1]
    misses = s.misses - stats_before[2]
    total = max(1, ram_hits + disk_hits + misses)
    return {
        "ram_rate": ram_hits / total,
        "disk_hits": disk_hits,
        "misses": misses,
        "victimized": s.victimized_to_disk,
        "mean_ms": result.latency.mean() * 1000,
        "errors": result.errors,
    }


def test_storage_hierarchy_hot_set(once):
    def run():
        return {ram: _run(ram) for ram in RAM_SIZES}

    results = once(run)

    table = Table(
        f"C5: Zipf(1.0) over {REGIONS}-page working set, {OPS} reads "
        "(remote homes)",
        ["RAM pages", "RAM hit rate", "disk hits", "remote misses",
         "victimized", "mean ms/op"],
    )
    for ram, r in results.items():
        table.add(ram, f"{r['ram_rate']:.0%}", r["disk_hits"],
                  r["misses"], r["victimized"], r["mean_ms"])
    table.show()

    for r in results.values():
        assert r["errors"] == 0

    small, medium, large = (results[r] for r in RAM_SIZES)
    # Shape 1: RAM hit rate rises with RAM size.
    assert small["ram_rate"] < medium["ram_rate"] < large["ram_rate"]
    # Shape 2: a RAM larger than the working set victimizes ~nothing
    # and hits ~always.
    assert large["victimized"] == 0
    assert large["ram_rate"] > 0.9
    # Shape 3: tiny RAM spills to disk but still serves the workload.
    assert small["victimized"] > 0
    assert small["disk_hits"] > 0
    # Shape 4: latency tracks the hit rate.
    assert large["mean_ms"] <= small["mean_ms"]
