"""Experiment F2 — Figure 2: the lock-and-fetch protocol trace.

Figure 2 enumerates 13 steps to service a <lock, fetch> pair for page
p at Node A when Node B owns the page: (1-3) obtain the region
descriptor, possibly via an address-map lookup; (4) page-directory
lookup; (5-6) the CM requests credentials from its peer; (7-9) Node
B's CM directs its daemon to supply a copy of p; (10-11) ownership and
lock grant; (12-13) the locked copy is supplied from local storage.

This benchmark replays that exact scenario and checks the wire trace
against the figure: a descriptor-location phase, a single CM
credential exchange carrying the page data, and *zero* messages on a
warm re-acquire (steps 12-13 are purely local once the copy exists).
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.core.locks import LockMode
from repro.net.message import MessageType

LOCATION_TYPES = {
    MessageType.CM_HINT_QUERY, MessageType.CM_HINT_REPLY,
    MessageType.DESCRIPTOR_FETCH, MessageType.DESCRIPTOR_REPLY,
    MessageType.REGION_LOOKUP, MessageType.REGION_LOOKUP_REPLY,
    MessageType.PAGE_FETCH, MessageType.PAGE_DATA,
}
CREDENTIAL_TYPES = {MessageType.LOCK_REQUEST, MessageType.LOCK_REPLY}


def test_figure2_lock_fetch_trace(once):
    table = Table("F2: Figure 2 cold lock+fetch from node A (3), "
                  "owner B (1)", ["phase", "messages", "types"])

    def run():
        cluster = create_cluster(num_nodes=5)
        owner = cluster.client(node=1)   # Node B
        region = owner.reserve(4096)
        owner.allocate(region.rid)
        owner.write_at(region.rid, b"page p")
        cluster.run(1.0)

        trace = []
        cluster.network.tap(lambda m: trace.append(m))

        # Node A performs the cold <lock, fetch>.
        requester = cluster.client(node=3)
        ctx = requester.lock(region.rid, 4096, LockMode.READ)
        data = requester.read(ctx, region.rid, 6)
        requester.unlock(ctx)
        cold = list(trace)

        # Warm re-acquire: steps 1-4 hit local caches, 5-13 are local.
        trace.clear()
        ctx = requester.lock(region.rid, 4096, LockMode.READ)
        requester.read(ctx, region.rid, 6)
        requester.unlock(ctx)
        warm = list(trace)
        return data, cold, warm

    data, cold, warm = once(run)

    location = [m for m in cold if m.msg_type in LOCATION_TYPES]
    credentials = [m for m in cold if m.msg_type in CREDENTIAL_TYPES]
    table.add("steps 1-4: locate descriptor", len(location),
              sorted({m.msg_type.value for m in location}))
    table.add("steps 5-11: CM credentials + copy of p", len(credentials),
              sorted({m.msg_type.value for m in credentials}))
    table.add("steps 12-13 (local supply)", 0, "[]")
    table.add("warm re-acquire", len(warm),
              sorted({m.msg_type.value for m in warm}))
    table.show()

    assert data == b"page p"
    # The descriptor-location phase happened (steps 1-3).
    assert location, "expected a descriptor-location exchange"
    # Exactly one credential round-trip to the peer CM (steps 5-11).
    requests = [m for m in credentials
                if m.msg_type is MessageType.LOCK_REQUEST]
    replies = [m for m in credentials
               if m.msg_type is MessageType.LOCK_REPLY]
    assert len(requests) == 1 and len(replies) == 1
    # The reply carried the copy of p (steps 7-9 fold data into it).
    assert replies[0].payload.get("data") is not None
    # Warm acquire is satisfied from local storage: no messages at all.
    assert warm == []
