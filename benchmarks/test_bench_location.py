"""Experiment C1 — the three-tier location chain (paper Section 3.2).

Claim: "To avoid expensive remote lookups, Khazana maintains a cache
of recently used region descriptors ... a node next queries its local
cluster manager ... Only if this search fails does it search the
address map tree."  Under a skewed (Zipf) workload the local region
directory should absorb almost all lookups; uniform access over many
regions pushes more lookups to the deeper, costlier tiers.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.bench.workloads import WorkloadSpec, AccessPattern, make_regions, run_access_workload
from repro.core.daemon import DaemonConfig

REGIONS = 48
OPS = 240


def _run_pattern(pattern, directory_capacity=1024):
    config = DaemonConfig(region_directory_capacity=directory_capacity)
    cluster = create_cluster(num_nodes=4, config=config)
    owner = cluster.client(node=1)
    regions = make_regions(owner, REGIONS)
    for region in regions:
        owner.write_at(region.rid, b"seed")
    cluster.run(2.0)   # hints propagate to the cluster manager

    reader = cluster.client(node=3)
    daemon = cluster.daemon(3)
    daemon.stats.lookup_tiers.clear()
    before = cluster.stats.snapshot()
    spec = WorkloadSpec(operations=OPS, write_fraction=0.0,
                        pattern=pattern, zipf_skew=1.1, seed=11)
    result = run_access_workload(cluster, reader, regions, spec)
    delta = cluster.stats.delta_since(before)
    tiers = dict(daemon.stats.lookup_tiers)
    return result, tiers, delta


def test_location_tiers_zipf_vs_uniform(once):
    def run():
        return {
            "zipf": _run_pattern(AccessPattern.ZIPF),
            "uniform": _run_pattern(AccessPattern.UNIFORM),
            "uniform_tiny_dir": _run_pattern(
                AccessPattern.UNIFORM, directory_capacity=8
            ),
        }

    outcomes = once(run)

    table = Table(
        f"C1: location-tier usage, {OPS} reads over {REGIONS} regions "
        "(reader on node 3)",
        ["workload", "directory", "cluster", "map", "walk",
         "msgs/op", "mean ms"],
    )
    for name, (result, tiers, delta) in outcomes.items():
        table.add(
            name,
            tiers.get("directory", 0),
            tiers.get("cluster", 0),
            tiers.get("map", 0),
            tiers.get("walk", 0),
            delta.messages_sent / result.operations,
            result.latency.mean() * 1000,
        )
    table.show()

    zipf_tiers = outcomes["zipf"][1]
    uniform_tiers = outcomes["uniform"][1]
    tiny_tiers = outcomes["uniform_tiny_dir"][1]

    # Shape 1: the region directory absorbs the bulk of a skewed
    # workload's lookups.
    total_zipf = sum(zipf_tiers.values())
    assert zipf_tiers.get("directory", 0) / total_zipf > 0.6

    # Shape 2: the cluster-manager tier catches directory misses
    # before any address-map walk happens.
    assert uniform_tiers.get("cluster", 0) >= uniform_tiers.get("map", 0)

    # Shape 3: shrinking the directory pushes lookups down the chain.
    assert tiny_tiers.get("directory", 0) < uniform_tiers.get("directory", 0) \
        or tiny_tiers.get("cluster", 0) > uniform_tiers.get("cluster", 0)

    # Shape 4: the deeper the lookups go, the more messages per op.
    zipf_msgs = outcomes["zipf"][2].messages_sent
    tiny_msgs = outcomes["uniform_tiny_dir"][2].messages_sent
    assert tiny_msgs > zipf_msgs
