"""Experiment B1 — batched multi-page protocol operations.

A 64-page lock/read/write/unlock cycle from a node across a WAN link
to the region's single remote home.  Per-page, the cycle costs one
serial round-trip per page per phase (~128+ request RPCs); batched, it
costs one RPC per (home node, message kind) — the O(pages) -> O(home
nodes) drop the batching tentpole claims.  Bandwidth is identical
(the same page bytes move either way); what the batch removes is the
per-page envelope and, above all, the serial WAN latencies.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.daemon import DaemonConfig
from repro.core.locks import LockMode
from repro.net.message import REPLY_TYPES

PAGES = 64
SIZE = PAGES * 4096

_REPLY_KEYS = {msg_type.value for msg_type in REPLY_TYPES}


def request_count(delta) -> int:
    """Request (non-reply) messages in a NetworkStats delta."""
    return sum(
        count for key, count in delta.by_type.items()
        if key not in _REPLY_KEYS
    )


def run_cycle(enable_batching: bool):
    """One 64-page WRITE lock/read/write/unlock cycle over a WAN."""
    config = DaemonConfig(
        enable_failure_handling=False,   # no PING noise in the counts
        enable_batching=enable_batching,
    )
    cluster = create_cluster(num_nodes=2, topology="wan", config=config)
    owner = cluster.client(node=0)
    region = owner.reserve(
        SIZE, RegionAttributes(consistency_level=ConsistencyLevel.RELEASE)
    )
    owner.allocate(region.rid)
    cluster.run(1.0)

    kz = cluster.client(node=1)
    before = cluster.stats.snapshot()
    start = cluster.now
    ctx = kz.lock(region.rid, SIZE, LockMode.WRITE)
    kz.read(ctx, region.rid, SIZE)
    kz.write(ctx, region.rid, b"b" * SIZE)
    kz.unlock(ctx)
    elapsed = cluster.now - start
    delta = cluster.stats.delta_since(before)
    return request_count(delta), elapsed, delta


def test_batching_wan_cycle(once):
    table = Table(
        f"B1: {PAGES}-page WAN lock/read/write/unlock vs one remote home",
        ["metric", "per-page", "batched"],
    )

    def run():
        unbatched = run_cycle(enable_batching=False)
        batched = run_cycle(enable_batching=True)
        return unbatched, batched

    (unbatched, batched) = once(run)
    un_requests, un_elapsed, un_delta = unbatched
    b_requests, b_elapsed, b_delta = batched

    table.add("request RPCs", un_requests, b_requests)
    table.add("virtual seconds", f"{un_elapsed:.2f}", f"{b_elapsed:.2f}")
    table.add("messages sent", un_delta.messages_sent, b_delta.messages_sent)
    table.add("bytes sent", un_delta.bytes_sent, b_delta.bytes_sent)
    table.show()

    # O(pages) -> O(home nodes): the batched cycle fits in a handful
    # of RPCs where the per-page path needs one per page per phase.
    assert b_requests <= 6
    assert un_requests >= 100
    # Removing ~2*PAGES serial WAN latencies must show up as time.
    assert b_elapsed < un_elapsed
