"""Experiment A1 — ablation of the location-hint tiers.

Section 3.5 argues the first two lookup tiers exist to reduce
dependence on (and traffic to) the address-map tree: "the local region
directory is searched first and then the cluster manager is queried,
before an address map tree search is started".

We run one uniform read workload with each tier knocked out:

- full:       region directory + cluster hints + map
- no-hints:   cluster-manager tier disabled
- tiny-dir:   region directory shrunk to one entry
- neither:    both degradations at once

Expected shape: every removed tier pushes lookups deeper and raises
messages per operation, with "neither" strictly worst.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.bench.workloads import (
    AccessPattern,
    WorkloadSpec,
    make_regions,
    run_access_workload,
)
from repro.core.daemon import DaemonConfig

REGIONS = 32
OPS = 160

CONFIGS = {
    "full": DaemonConfig(),
    "no-hints": DaemonConfig(use_cluster_hints=False),
    "tiny-dir": DaemonConfig(region_directory_capacity=1),
    "neither": DaemonConfig(use_cluster_hints=False,
                            region_directory_capacity=1),
}


def _run(config):
    cluster = create_cluster(num_nodes=4, config=config)
    owner = cluster.client(node=1)
    regions = make_regions(owner, REGIONS)
    for region in regions:
        owner.write_at(region.rid, b"seed")
    cluster.run(2.0)
    reader = cluster.client(node=3)
    daemon = cluster.daemon(3)
    daemon.stats.lookup_tiers.clear()
    before = cluster.stats.snapshot()
    spec = WorkloadSpec(operations=OPS, write_fraction=0.0,
                        pattern=AccessPattern.UNIFORM, seed=3)
    result = run_access_workload(cluster, reader, regions, spec)
    delta = cluster.stats.delta_since(before)
    background = sum(
        delta.by_type.get(t, 0)
        for t in ("ping", "pong", "free_space_report")
    )
    return {
        "tiers": dict(daemon.stats.lookup_tiers),
        "msgs_per_op": (delta.messages_sent - background) / OPS,
        "mean_ms": result.latency.mean() * 1000,
        "errors": result.errors,
    }


def test_tier_ablation(once):
    def run():
        return {name: _run(config) for name, config in CONFIGS.items()}

    results = once(run)

    table = Table(
        f"A1: knocking out lookup tiers ({OPS} uniform reads over "
        f"{REGIONS} regions)",
        ["variant", "directory", "cluster", "map", "msgs/op", "mean ms"],
    )
    for name, r in results.items():
        table.add(name, r["tiers"].get("directory", 0),
                  r["tiers"].get("cluster", 0), r["tiers"].get("map", 0),
                  r["msgs_per_op"], r["mean_ms"])
    table.show()

    for r in results.values():
        assert r["errors"] == 0   # every variant still works

    full = results["full"]
    no_hints = results["no-hints"]
    tiny = results["tiny-dir"]
    neither = results["neither"]

    # Shape 1: the full chain is the cheapest configuration.
    assert full["msgs_per_op"] <= no_hints["msgs_per_op"] + 1e-9
    assert full["msgs_per_op"] <= tiny["msgs_per_op"] + 1e-9
    # Shape 2: losing both tiers is strictly the worst.
    assert neither["msgs_per_op"] > full["msgs_per_op"]
    assert neither["msgs_per_op"] >= max(no_hints["msgs_per_op"],
                                         tiny["msgs_per_op"]) - 1e-9
    # Shape 3: without hints, directory misses go to the map tier.
    assert no_hints["tiers"].get("cluster", 0) == 0
    assert neither["tiers"].get("map", 0) > full["tiers"].get("map", 0)
