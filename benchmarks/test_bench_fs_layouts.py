"""Experiment A4 — file layouts: per-block regions vs one extent.

Paper Section 4.1 describes both designs: "each block of the
filesystem is allocated into a separate 4-kilobyte region.  An
alternative would be for the filesystem to allocate each file into a
single contiguous region, which would require the filesystem to
resize the region whenever the file size changes."

This experiment quantifies the trade: sequential writes and reads of
a 64 KiB file under each layout, from the creating node and from a
remote mount.  Expected shape: the blocks layout pays one reserve +
allocate (address-map traffic) *per 4 KiB block*; the extent layout
pays a handful of resizes for the whole file, so it needs far fewer
Khazana operations — at the price of needing contiguous address space
(relocation when boxed in).
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.fs import KhazanaFileSystem

FILE_SIZE = 64 * 1024
CHUNK = 4096


def _run(layout):
    cluster = create_cluster(num_nodes=3)
    fs = KhazanaFileSystem.format(cluster.client(node=1))
    daemon = cluster.daemon(1)
    ops_before = dict(daemon.stats.ops)
    before = cluster.stats.snapshot()
    start = cluster.now

    with fs.create("/data.bin", layout=layout) as f:
        for offset in range(0, FILE_SIZE, CHUNK):
            f.write(bytes((offset // CHUNK) % 256 for _ in range(CHUNK)))
    write_done = cluster.now

    remote = KhazanaFileSystem.mount(
        cluster.client(node=2), fs.superblock_addr
    )
    with remote.open("/data.bin") as f:
        blob = f.read()
    assert len(blob) == FILE_SIZE

    elapsed_write = write_done - start
    elapsed_read = cluster.now - write_done
    delta = cluster.stats.delta_since(before)
    background = sum(
        delta.by_type.get(t, 0)
        for t in ("ping", "pong", "free_space_report")
    )
    ops = daemon.stats.ops
    return {
        "reserves": ops.get("reserve", 0) - ops_before.get("reserve", 0),
        "resizes": ops.get("resize", 0) - ops_before.get("resize", 0),
        "locks": ops.get("lock", 0) - ops_before.get("lock", 0),
        "write_ms": elapsed_write * 1000,
        "remote_read_ms": elapsed_read * 1000,
        "msgs": delta.messages_sent - background,
    }


def test_block_vs_extent_layout(once):
    def run():
        return {layout: _run(layout) for layout in ("blocks", "extent")}

    results = once(run)

    table = Table(
        f"A4: sequential {FILE_SIZE // 1024} KiB file, per-layout cost",
        ["layout", "reserves", "resizes", "locks", "write ms",
         "remote read ms", "messages"],
    )
    for layout, r in results.items():
        table.add(layout, r["reserves"], r["resizes"], r["locks"],
                  r["write_ms"], r["remote_read_ms"], r["msgs"])
    table.show()

    blocks, extent = results["blocks"], results["extent"]
    # Shape 1: the blocks layout reserves one region per block (+2 for
    # superblock-era metadata); the extent layout reserves O(1).
    assert blocks["reserves"] >= FILE_SIZE // CHUNK
    assert extent["reserves"] <= 4
    # Shape 2: the extent layout grows by doubling — log2 resizes.
    assert 1 <= extent["resizes"] <= 6
    # Shape 3: fewer Khazana ops overall for the extent layout.
    assert extent["locks"] < blocks["locks"]
    assert extent["msgs"] <= blocks["msgs"]
