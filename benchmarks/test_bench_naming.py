"""Experiment C9 — the directory-service consumer (paper Section 1).

The paper's opening motivation lists "distributed directory services
(Novell's NDS, Microsoft's Active Directory)" among the systems that
reduce to shared-state management.  `repro.naming` is that consumer;
this experiment measures the consistency trade it exists to make: a
WAN-distributed registry served from eventual-consistency replicas vs
the same registry on strict consistency.

Workload: one site publishes 12 entries; a remote site performs 60
lookups (Zipf-skewed) plus 3 updates arrive mid-stream.  Expected
shape: eventual lookups cost ~0 after the first touch of each context
(local replicas), while strict lookups keep paying WAN round trips
whenever writes invalidate the context pages; the price of eventual is
bounded staleness, observed directly.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.bench.workloads import ZipfGenerator
from repro.core.attributes import ConsistencyLevel
from repro.naming import NameService

ENTRIES = 12
LOOKUPS = 60


def _run(consistency):
    cluster = create_cluster(num_nodes=6, topology="two_cluster")
    publisher = NameService.create(
        cluster.client(node=1), consistency=consistency
    )
    names = [f"/svc/entry-{i:02d}" for i in range(ENTRIES)]
    for i, name in enumerate(names):
        publisher.bind(name, {"generation": 0, "index": i})

    remote = NameService.attach(cluster.client(node=4), publisher.root_addr)
    zipf = ZipfGenerator(ENTRIES, skew=1.1, seed=17)
    before = cluster.stats.snapshot()
    start = cluster.now
    lookup_time = 0.0
    stale_reads = 0
    for step in range(LOOKUPS):
        if step in (20, 35, 50):
            # Updates land at the publisher mid-stream.
            publisher.rebind(names[0], {"generation": step, "index": 0})
        t0 = cluster.now
        got = remote.lookup(names[zipf.next()])
        lookup_time += cluster.now - t0
        if got["index"] == 0:
            current = publisher.lookup(names[0])["generation"]
            if got["generation"] != current:
                stale_reads += 1
    elapsed = cluster.now - start
    delta = cluster.stats.delta_since(before)
    background = sum(
        delta.by_type.get(t, 0)
        for t in ("ping", "pong", "free_space_report")
    )
    return {
        "ms_per_lookup": 1000 * lookup_time / LOOKUPS,
        "msgs_per_lookup": (delta.messages_sent - background) / LOOKUPS,
        "stale_reads": stale_reads,
        "total_ms": elapsed * 1000,
    }


def test_directory_service_consistency_tradeoff(once):
    def run():
        return {
            "eventual": _run(ConsistencyLevel.EVENTUAL),
            "strict": _run(ConsistencyLevel.STRICT),
        }

    results = once(run)

    table = Table(
        f"C9: WAN directory service, {LOOKUPS} remote lookups with "
        "concurrent updates",
        ["consistency", "ms/lookup", "msgs/lookup", "stale reads"],
    )
    for name, r in results.items():
        table.add(name, r["ms_per_lookup"], r["msgs_per_lookup"],
                  r["stale_reads"])
    table.show()

    eventual, strict = results["eventual"], results["strict"]
    # Shape 1: eventual lookups are much cheaper on the WAN.
    assert eventual["ms_per_lookup"] < strict["ms_per_lookup"] / 2
    assert eventual["msgs_per_lookup"] < strict["msgs_per_lookup"]
    # Shape 2: strict never serves stale data; eventual may (that is
    # the contract being bought).
    assert strict["stale_reads"] == 0
