"""Experiment C8 — the multi-cluster hierarchy (paper Section 3.1).

The paper designs clusters so that lookups stay cheap and local:
intra-cluster traffic rides the LAN, and only the cluster managers
talk across the WAN ("representing the local cluster during
inter-cluster communication").  The prototype never implemented this
("Cluster hierarchies are yet to be implemented"); this reproduction
does, and this experiment measures what the hierarchy buys.

Setup: two 4-node clusters joined by a WAN.  Cluster 0 publishes
regions; every node of cluster 1 then reads them.  We compare the
hierarchy against a flat 8-node WAN deployment (no LAN locality, one
global manager) — the deployment a single-cluster Khazana would be
forced into at this scale.
"""

from repro.api import create_cluster, create_hierarchy
from repro.bench.metrics import Table
from repro.bench.workloads import make_regions

REGIONS = 8
READS_PER_NODE = 6


def _publish_and_read(cluster, reader_nodes):
    owner = cluster.client(node=1)
    regions = make_regions(owner, REGIONS)
    for region in regions:
        owner.write_at(region.rid, b"hierarchy")
    cluster.run(1.0)

    before = cluster.stats.snapshot()
    start = cluster.now
    lookups = 0
    for node in reader_nodes:
        session = cluster.client(node=node)
        for i in range(READS_PER_NODE):
            session.read_at(regions[i % REGIONS].rid, 9)
            lookups += 1
    elapsed = cluster.now - start
    delta = cluster.stats.delta_since(before)
    background = sum(
        delta.by_type.get(t, 0)
        for t in ("ping", "pong", "free_space_report")
    )
    tier_totals = {}
    for node in reader_nodes:
        for tier, count in cluster.daemon(node).stats.lookup_tiers.items():
            tier_totals[tier] = tier_totals.get(tier, 0) + count
    return {
        "ms_per_read": 1000 * elapsed / lookups,
        "msgs_per_read": (delta.messages_sent - background) / lookups,
        "tiers": tier_totals,
    }


def test_hierarchy_vs_flat_wan(once):
    def run():
        hierarchy = create_hierarchy([4, 4])
        h = _publish_and_read(hierarchy, reader_nodes=[4, 5, 6, 7])
        flat = create_cluster(num_nodes=8, topology="wan")
        f = _publish_and_read(flat, reader_nodes=[4, 5, 6, 7])
        return {"hierarchy": h, "flat wan": f}

    results = once(run)

    table = Table(
        f"C8: cluster-1 nodes reading {REGIONS} cluster-0 regions "
        f"({READS_PER_NODE} reads/node)",
        ["deployment", "ms/read", "msgs/read",
         "cluster-tier hits", "intercluster hits"],
    )
    for name, r in results.items():
        table.add(name, r["ms_per_read"], r["msgs_per_read"],
                  r["tiers"].get("cluster", 0),
                  r["tiers"].get("intercluster", 0))
    table.show()

    h, f = results["hierarchy"], results["flat wan"]
    # Shape 1: the hierarchy resolves most lookups without leaving the
    # cluster — only the first touch of each region pays the WAN hop.
    assert h["tiers"].get("intercluster", 0) <= REGIONS
    assert h["tiers"].get("cluster", 0) > h["tiers"].get("intercluster", 0)
    # Shape 2: the flat deployment pays WAN latency on every remote
    # exchange, so the hierarchy is cheaper per read.
    assert h["ms_per_read"] < f["ms_per_read"]
