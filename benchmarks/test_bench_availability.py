"""Experiment C4 — availability vs replica count (paper Section 3.5).

Claim: "Khazana allows clients to specify a minimum number of primary
replicas that should be maintained for each page in a Khazana region.
This functionality further enhances availability, at a cost of
resource consumption."

We create many regions at each replication level on an 8-node
cluster, crash two non-bootstrap nodes, and measure the fraction of
regions still readable.  Expected shape: availability climbs steeply
with the replica count (replicas=1 loses whatever the dead nodes
homed; replicas>=3 survives any two failures), while resource cost
(pages stored cluster-wide) grows linearly.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.core.attributes import RegionAttributes
from repro.core.errors import KhazanaError

REGIONS_PER_LEVEL = 12
LEVELS = (1, 2, 3, 4)
KILL = (1, 2)   # two non-bootstrap nodes


def _run_level(replicas):
    cluster = create_cluster(num_nodes=8)
    regions = []
    # Spread creators over the nodes we will kill and some survivors,
    # so replicas=1 actually has something to lose.
    creators = [1, 2, 3, 4]
    for i in range(REGIONS_PER_LEVEL):
        session = cluster.client(node=creators[i % len(creators)])
        desc = session.reserve(
            4096, RegionAttributes(min_replicas=replicas)
        )
        session.allocate(desc.rid)
        session.write_at(desc.rid, f"region-{i}".encode())
        regions.append(desc)
    cluster.run(3.0)   # replica write-back + maintenance settle

    stored_copies = sum(
        1
        for node in cluster.node_ids()
        for desc in regions
        if cluster.daemon(node).storage.contains(desc.rid)
    )

    for node in KILL:
        cluster.crash(node)
    cluster.run(12.0)   # detection + promotion

    reader = cluster.client(node=6)
    available = 0
    for i, desc in enumerate(regions):
        try:
            data = reader.read_at(desc.rid, len(f"region-{i}"))
            if data == f"region-{i}".encode():
                available += 1
        except KhazanaError:
            pass
    return available / len(regions), stored_copies / len(regions)


def test_availability_vs_replica_count(once):
    def run():
        return {level: _run_level(level) for level in LEVELS}

    results = once(run)

    table = Table(
        f"C4: availability after killing nodes {list(KILL)} of 8",
        ["min_replicas", "available", "copies/region (cost)"],
    )
    for level, (availability, copies) in results.items():
        table.add(level, f"{availability:.0%}", copies)
    table.show()

    # Shape 1: availability is monotone non-decreasing in replicas.
    values = [results[level][0] for level in LEVELS]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    # Shape 2: replicas=1 actually lost data; 3+ replicas lost none.
    assert values[0] < 1.0
    assert values[2] == 1.0 and values[3] == 1.0
    # Shape 3: the cost side — stored copies grow with the level.
    costs = [results[level][1] for level in LEVELS]
    assert costs[-1] > costs[0] * 2
