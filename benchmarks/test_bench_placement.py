"""Placement benchmarks — ring math cost, churn re-homing, lookup RPCs.

The wall-clock parts (DirectorTable directs/sec, join scan rate) run
like the hotpath suite; the churn and lookup parts are deterministic
(balance ratios, virtual-time message counts) and assert the PR's
actual claims: a membership event re-homes only ~``regions/members``
regions, and ring lookups cost a flat number of messages per op that
churn does not bend.  The full run is ``python -m
repro.bench.placement`` and its output is tracked in
``BENCH_placement.json``, gated by the CI placement-smoke job.
"""

from repro.bench.placement import (
    FAIR_SHARE_CEILING,
    check_regressions,
    render,
    run_suite,
)
from repro.bench.metrics import Table


def test_placement_suite(once):
    doc = once(lambda: run_suite(quick=True))

    table = Table(
        "Placement benchmarks (quick mode)",
        ["benchmark", "results"],
    )
    for name, r in doc["benchmarks"].items():
        table.add(name, ", ".join(f"{k}={v}" for k, v in r.items()))
    table.show()
    print(render(doc))

    results = doc["benchmarks"]
    assert set(results) == {"ring_rank", "churn_rehome", "lookup_msgs"}

    # Ring lookups are pure table reads: fast enough that location
    # math can never be the bottleneck of a simulated (or real) op.
    assert results["ring_rank"]["directs_per_sec"] > 100_000
    assert results["ring_rank"]["join_buckets_per_sec"] > 10_000

    # Minimal disruption: no single join/leave moved much more than
    # the fair share, and ownership stays balanced afterwards.
    churn = results["churn_rehome"]
    assert churn["max_moved_over_fair"] <= FAIR_SHARE_CEILING
    assert churn["spread_max_over_mean"] < 1.5

    # Flat location cost: adding a node mid-run does not bend the
    # ring's msgs/op, and the ring never costs more than the tiered
    # chain plus change on the same directory-cold workload.
    msgs = results["lookup_msgs"]
    assert (msgs["ring_msgs_per_op_after_churn"]
            <= msgs["ring_msgs_per_op"] * 1.5)
    assert msgs["ring_msgs_per_op"] <= msgs["tiered_msgs_per_op"] * 1.5

    # A run checked against itself never reports a regression.
    assert check_regressions(doc, doc) == []
