"""Experiment C3 — selectable consistency protocols (paper Section 3.3).

Claim: applications choose their consistency level per region, and
relaxed protocols buy performance — "a weaker (and thus higher
performance) consistency protocol" (Section 1), with release
consistency for metadata and an even weaker model for web-cache-like
consumers "for which release consistency is overkill".

Same workload — two nodes sharing one region, 85% reads — run under
CREW, release, and eventual consistency, on a LAN and on a WAN.  The
paper's expected shape: the weaker the protocol, the cheaper the
reads (fewer synchronous remote hops), with the gap exploding on WAN
latencies.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.core.attributes import ConsistencyLevel, RegionAttributes

OPS = 120
READ_FRACTION = 0.85


def _run(level, topology):
    cluster = create_cluster(num_nodes=4, topology=topology)
    owner = cluster.client(node=1)
    region = owner.reserve(
        4096, RegionAttributes(consistency_level=level)
    )
    owner.allocate(region.rid)
    owner.write_at(region.rid, b"seed")
    other = cluster.client(node=3)
    other.read_at(region.rid, 4)   # both nodes warm

    sessions = [owner, other]
    start = cluster.now
    before = cluster.stats.snapshot()
    read_time = 0.0
    reads = writes = 0
    for i in range(OPS):
        session = sessions[i % 2]
        if (i % 20) / 20 < READ_FRACTION:
            t0 = cluster.now
            session.read_at(region.rid, 4)
            read_time += cluster.now - t0
            reads += 1
        else:
            session.write_at(region.rid, f"w{i:03d}".encode())
            writes += 1
    delta = cluster.stats.delta_since(before)
    elapsed = cluster.now - start
    # Exclude background housekeeping (failure-detector pings, free
    # space reports) whose count scales with elapsed virtual time, not
    # with the workload.
    background = sum(
        delta.by_type.get(t, 0)
        for t in ("ping", "pong", "free_space_report")
    )
    return {
        "mean_ms": 1000 * elapsed / OPS,
        "read_ms": 1000 * read_time / reads,
        "msgs_per_op": (delta.messages_sent - background) / OPS,
    }


def test_consistency_protocol_cost(once):
    def run():
        results = {}
        for topo in ("lan", "wan"):
            for level in ConsistencyLevel:
                results[(topo, level.value)] = _run(level, topo)
        return results

    results = once(run)

    table = Table(
        f"C3: protocol cost, 2 sharers, {OPS} ops, "
        f"{int(READ_FRACTION * 100)}% reads",
        ["network", "protocol", "mean ms/op", "mean read ms", "msgs/op"],
    )
    for (topo, level), r in results.items():
        table.add(topo, level, r["mean_ms"], r["read_ms"], r["msgs_per_op"])
    table.show()

    for topo in ("lan", "wan"):
        crew = results[(topo, "strict")]
        release = results[(topo, "release")]
        eventual = results[(topo, "eventual")]
        # Shape 1: reads get cheaper as consistency weakens.
        assert eventual["read_ms"] <= release["read_ms"] + 1e-9
        assert release["read_ms"] <= crew["read_ms"] + 1e-9
        # Shape 2: eventual sends the least traffic.
        assert eventual["msgs_per_op"] <= crew["msgs_per_op"]

    # Shape 3: the strict-vs-eventual gap explodes on the WAN —
    # that is exactly why clients get to pick (Section 1's example).
    lan_gap = results[("lan", "strict")]["mean_ms"] - results[
        ("lan", "eventual")]["mean_ms"]
    wan_gap = results[("wan", "strict")]["mean_ms"] - results[
        ("wan", "eventual")]["mean_ms"]
    assert wan_gap > lan_gap * 10
