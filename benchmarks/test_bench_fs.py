"""Experiment C6 — the KFS file system (paper Section 4.1).

Claims: "The same filesystem can be run on a stand-alone machine or
in a distributed environment without the system being aware of the
change in environment", and file operations decompose entirely into
Khazana operations (reserve/allocate/lock/read/write).

One identical file workload — create, write, read, readdir, unlink —
runs on clusters of 1, 4, and 8 nodes.  On multi-node clusters the
clients are spread across nodes.  Expected shape: identical results
everywhere; single-node runs cost no messages at all; distributing
clients adds coherence traffic but everything still works.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.fs import KhazanaFileSystem

FILES = 6
FILE_SIZE = 6000   # two blocks


def _run(num_nodes):
    cluster = create_cluster(num_nodes=num_nodes)
    creator = cluster.client(node=min(1, num_nodes - 1))
    fs = KhazanaFileSystem.format(creator)
    mounts = [
        KhazanaFileSystem.mount(cluster.client(node=n), fs.superblock_addr)
        for n in range(num_nodes)
    ]

    ops_before = dict(cluster.daemon(creator.node_id).stats.ops)
    before = cluster.stats.snapshot()
    start = cluster.now
    fs.mkdir("/data")
    checks = 0
    for i in range(FILES):
        body = bytes((i + j) % 256 for j in range(FILE_SIZE))
        with fs.create(f"/data/file-{i}") as f:
            f.write(body)
        # A different node reads it back.
        m = mounts[(i + 1) % num_nodes]
        with m.open(f"/data/file-{i}") as f:
            assert f.read() == body
            checks += 1
    listing = mounts[-1].listdir("/data")
    fs.unlink("/data/file-0")
    listing_after = mounts[-1].listdir("/data")
    elapsed = cluster.now - start
    delta = cluster.stats.delta_since(before)
    background = sum(
        delta.by_type.get(t, 0)
        for t in ("ping", "pong", "free_space_report")
    )
    ops_after = cluster.daemon(creator.node_id).stats.ops
    khazana_ops = {
        k: ops_after.get(k, 0) - ops_before.get(k, 0)
        for k in ("reserve", "allocate", "lock", "read", "write")
    }
    return {
        "files_ok": checks,
        "listing": len(listing),
        "after_unlink": len(listing_after),
        "elapsed_ms": elapsed * 1000,
        "msgs": delta.messages_sent - background,
        "khazana_ops": khazana_ops,
    }


def test_fs_same_code_any_cluster_size(once):
    def run():
        return {n: _run(n) for n in (1, 4, 8)}

    results = once(run)

    table = Table(
        f"C6: identical KFS workload ({FILES} x {FILE_SIZE}B files) "
        "vs cluster size",
        ["nodes", "files verified", "readdir", "after unlink",
         "virtual ms", "messages"],
    )
    for n, r in results.items():
        table.add(n, r["files_ok"], r["listing"], r["after_unlink"],
                  r["elapsed_ms"], r["msgs"])
    table.show()

    decomposition = Table(
        "C6b: creator-node Khazana ops behind the 4-node run "
        "(file ops decompose into the Section 2 API)",
        ["khazana op", "count"],
    )
    for op, count in results[4]["khazana_ops"].items():
        decomposition.add(op, count)
    decomposition.show()

    # Shape 1: identical functional results at every size.
    for r in results.values():
        assert r["files_ok"] == FILES
        assert r["listing"] == FILES
        assert r["after_unlink"] == FILES - 1
    # Shape 2: stand-alone operation needs no network at all.
    assert results[1]["msgs"] == 0
    # Shape 3: distribution costs messages, not correctness.
    assert results[4]["msgs"] > 0
    assert results[8]["msgs"] > 0
    # Shape 4: the file ops really decompose into Khazana ops.
    ops = results[4]["khazana_ops"]
    assert ops["reserve"] >= FILES          # inode + block regions
    assert ops["lock"] > ops["reserve"]     # every access locks
