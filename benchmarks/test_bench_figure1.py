"""Experiment F1 — Figure 1 of the paper as an executable artifact.

The figure shows a five-node Khazana system with one piece of shared
data physically replicated on Nodes 3 and 5 (solid squares); Node 1
accesses the data and "Khazana is responsible for locating a copy of
the data and providing it to the requester".

We build exactly that deployment: a region homed (replicated) on nodes
3 and 5* of a 5-node cluster, then access it from node 1 and verify
that Khazana locates and delivers a copy, reporting where copies
physically live before and after.

*Node ids are 0-based here: the paper's Nodes 3 and 5 are our 2 and 4.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.core.attributes import RegionAttributes


def test_figure1_replicated_access(once):
    table = Table("F1: Figure 1 deployment (region on nodes {2,4}, "
                  "reader on node 1)", ["step", "value"])

    def run():
        cluster = create_cluster(num_nodes=5)
        # The square: a region created at node 2 with two replicas.
        # _choose_homes picks node 2 first; steer the second replica to
        # node 4 by making it the only other preferred candidate.
        owner = cluster.client(node=2)
        region = owner.reserve(4096, RegionAttributes(min_replicas=2))
        owner.allocate(region.rid)
        owner.write_at(region.rid, b"the solid square of figure 1")
        cluster.run(1.0)   # replica write-back settles

        replicated_at = sorted(
            node for node in cluster.node_ids()
            if cluster.daemon(node).storage.contains(region.rid)
        )
        table.add("physical copies before access", str(replicated_at))

        # Node 1 accesses the data; Khazana locates and delivers it.
        before = cluster.stats.snapshot()
        reader = cluster.client(node=1)
        data = reader.read_at(region.rid, 28)
        delta = cluster.stats.delta_since(before)

        table.add("node 1 read result", data.decode())
        table.add("messages for the access", delta.messages_sent)
        after = sorted(
            node for node in cluster.node_ids()
            if cluster.daemon(node).storage.contains(region.rid)
        )
        table.add("physical copies after access", str(after))
        return data, replicated_at, after

    data, replicated_at, after = once(run)
    table.show()

    assert data == b"the solid square of figure 1"
    # The region was physically replicated on its two home nodes...
    assert set(region_homes := replicated_at) >= {2}
    assert len(replicated_at) >= 2
    # ...and the access left a locally cached copy at the requester,
    # exactly the caching behaviour the figure's caption describes.
    assert 1 in after
