"""Experiment A2 — ablation: caching+invalidation vs always-fetch.

The point of CREW's cached read copies (and of Khazana caching
generally — "Data should be cached near where it is used", Section 2)
is that repeat reads cost nothing.  The ablation replaces CREW with a
deliberately cache-less protocol that refetches the page from its
home on every read acquire.

The cache-less CM is registered through the public protocol registry,
which also demonstrates Section 5's claim that "plugging in new
protocols or consistency managers is only a matter of registering
them with Khazana".
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.bench.workloads import WorkloadSpec, make_regions, run_access_workload
from repro.consistency.eventual import EventualManager
from repro.consistency.manager import register_protocol
from repro.core.attributes import RegionAttributes

OPS = 150
READ_FRACTION = 0.95


@register_protocol
class NoCacheManager(EventualManager):
    """Always refetches from the home node: staleness bound of -1
    means even a fresh local copy is 'too old' to serve."""

    protocol_name = "nocache"

    def __init__(self, daemon):
        super().__init__(daemon, staleness_bound=-1.0)


def _run(protocol):
    cluster = create_cluster(num_nodes=4)
    owner = cluster.client(node=1)
    region = owner.reserve(
        4096, RegionAttributes(consistency_protocol=protocol)
    )
    owner.allocate(region.rid)
    owner.write_at(region.rid, b"cacheable")
    reader = cluster.client(node=3)
    before = cluster.stats.snapshot()
    spec = WorkloadSpec(operations=OPS, write_fraction=1 - READ_FRACTION,
                        seed=9)
    result = run_access_workload(cluster, reader, [region], spec)
    delta = cluster.stats.delta_since(before)
    background = sum(
        delta.by_type.get(t, 0)
        for t in ("ping", "pong", "free_space_report")
    )
    return {
        "msgs_per_op": (delta.messages_sent - background) / OPS,
        "bytes_per_op": delta.bytes_sent / OPS,
        "mean_ms": result.latency.mean() * 1000,
        "errors": result.errors,
    }


def test_caching_vs_always_fetch(once):
    def run():
        return {proto: _run(proto) for proto in ("crew", "nocache")}

    results = once(run)

    table = Table(
        f"A2: read-mostly sharing ({int(READ_FRACTION*100)}% reads), "
        "cached CREW vs cache-less fetch",
        ["protocol", "msgs/op", "bytes/op", "mean ms/op"],
    )
    for proto, r in results.items():
        table.add(proto, r["msgs_per_op"], r["bytes_per_op"], r["mean_ms"])
    table.show()

    crew, nocache = results["crew"], results["nocache"]
    assert crew["errors"] == 0 and nocache["errors"] == 0
    # Shape: caching slashes both message and byte traffic for a
    # read-mostly workload — by several-fold, not marginally.
    assert nocache["msgs_per_op"] > crew["msgs_per_op"] * 3
    assert nocache["bytes_per_op"] > crew["bytes_per_op"] * 3
    assert nocache["mean_ms"] > crew["mean_ms"]
