"""Shared helpers for the benchmark suite.

Every benchmark uses ``benchmark.pedantic(run, rounds=1)`` so that the
deterministic simulation executes exactly once per pytest-benchmark
session; the wall-clock number pytest-benchmark reports is the cost of
simulating the experiment, while the *experiment results* (virtual-time
latencies, message counts, hit rates) are printed as tables and
asserted as shapes.  Run with ``pytest benchmarks/ --benchmark-only``;
add ``-s`` to see the tables.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(fn):
        return run_once(benchmark, fn)

    return runner
