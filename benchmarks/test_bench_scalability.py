"""Experiment C2 — scalability (paper Section 2, "Scalability").

Claim: "Performance should scale as nodes are added if the new nodes
do not contend for access to the same regions as existing nodes.
Data should be cached near where it is used."

We grow the cluster from 2 to 16 nodes under two workloads with the
same per-node operation count:

- **disjoint**: each node works on its own regions.  Per-operation
  cost must stay flat as nodes are added (perfect scaling).
- **contended**: every node hammers one shared region with 30%%
  writes.  Coherence traffic grows with the sharer count, so
  per-operation cost rises — the paper's stated limit of scaling.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.bench.workloads import make_regions
from repro.core.attributes import RegionAttributes

OPS_PER_NODE = 30
NODE_COUNTS = (2, 4, 8, 16)


def _disjoint(num_nodes):
    cluster = create_cluster(num_nodes=num_nodes)
    sessions = [cluster.client(node=n) for n in range(num_nodes)]
    regions = {s.node_id: make_regions(s, 2) for s in sessions}
    start = cluster.now
    before = cluster.stats.snapshot()
    for i in range(OPS_PER_NODE):
        for session in sessions:
            mine = regions[session.node_id]
            region = mine[i % len(mine)]
            if i % 3 == 0:
                session.write_at(region.rid, b"local-update")
            else:
                session.read_at(region.rid, 12)
    ops = OPS_PER_NODE * num_nodes
    delta = cluster.stats.delta_since(before)
    elapsed = cluster.now - start
    return elapsed / ops, delta.messages_sent / ops


def _contended(num_nodes):
    cluster = create_cluster(num_nodes=num_nodes)
    owner = cluster.client(node=1)
    shared = owner.reserve(4096, RegionAttributes())
    owner.allocate(shared.rid)
    owner.write_at(shared.rid, b"contended")
    sessions = [cluster.client(node=n) for n in range(num_nodes)]
    start = cluster.now
    before = cluster.stats.snapshot()
    for i in range(OPS_PER_NODE):
        for j, session in enumerate(sessions):
            if (i + j) % 10 < 3:
                session.write_at(shared.rid, b"contended-write")
            else:
                session.read_at(shared.rid, 9)
    ops = OPS_PER_NODE * num_nodes
    delta = cluster.stats.delta_since(before)
    elapsed = cluster.now - start
    return elapsed / ops, delta.messages_sent / ops


def test_scalability_disjoint_vs_contended(once):
    def run():
        rows = []
        for n in NODE_COUNTS:
            d_lat, d_msgs = _disjoint(n)
            c_lat, c_msgs = _contended(n)
            rows.append((n, d_lat, d_msgs, c_lat, c_msgs))
        return rows

    rows = once(run)

    table = Table(
        f"C2: per-op cost vs cluster size ({OPS_PER_NODE} ops/node)",
        ["nodes", "disjoint ms/op", "disjoint msgs/op",
         "contended ms/op", "contended msgs/op"],
    )
    for n, d_lat, d_msgs, c_lat, c_msgs in rows:
        table.add(n, d_lat * 1000, d_msgs, c_lat * 1000, c_msgs)
    table.show()

    # Shape 1: disjoint per-op cost is flat — growing the cluster 8x
    # changes it by well under 2x.
    d_small = rows[0][1]
    d_large = rows[-1][1]
    assert d_large < max(d_small, 1e-9) * 2 + 1e-4

    # Shape 2: contention costs more than independence at every size.
    for n, d_lat, d_msgs, c_lat, c_msgs in rows:
        assert c_msgs > d_msgs

    # Shape 3: contended coherence traffic grows with sharers.
    assert rows[-1][4] > rows[0][4]
