"""Hot-path microbenchmarks — real CPU/allocation cost per operation.

Unlike every other experiment here, this one measures *wall-clock*
cost, not virtual-time cost: ops/sec and tracemalloc allocation peaks
of the client read/write/lock fast paths (see docs/performance.md).
Quick mode keeps it cheap enough for the suite; the full run is
``python -m repro.bench.hotpath`` and its output is tracked in
``BENCH_hotpath.json``, gated by the CI bench-smoke job.
"""

from repro.bench.hotpath import check_regressions, render, run_suite
from repro.bench.metrics import Table


def test_hotpath_suite(once):
    doc = once(lambda: run_suite(quick=True))

    table = Table(
        "Hot-path microbenchmarks (quick mode, wall-clock)",
        ["benchmark", "ops/sec", "alloc peak/op", "retained/op"],
    )
    for name, r in doc["benchmarks"].items():
        table.add(
            name,
            f"{r['ops_per_sec']:.0f}",
            f"{r['alloc_peak_per_op_bytes']}B",
            f"{r['alloc_retained_per_op_bytes']}B",
        )
    table.show()
    print(render(doc))

    results = doc["benchmarks"]
    assert set(results) == {
        "cached_read", "cold_read", "write_diff", "lock_unlock", "batch_64",
    }
    for name, r in results.items():
        assert r["ops_per_sec"] > 0, name
        assert r["alloc_peak_per_op_bytes"] >= 0, name

    # The zero-copy fast path's signature: a cached read of a resident
    # 4 KiB page allocates far less than one page of transient memory,
    # and it is *much* faster than a cycle that takes the protocol
    # machinery (shape assertion, not a timing one: both numbers come
    # from the same process on the same machine).
    assert results["cached_read"]["alloc_peak_per_op_bytes"] < 1024
    assert (results["cached_read"]["ops_per_sec"]
            > 5 * results["lock_unlock"]["ops_per_sec"])

    # The committed baseline doc and a fresh run agree on shape: a
    # run checked against itself never reports a regression.
    assert check_regressions(doc, doc) == []
