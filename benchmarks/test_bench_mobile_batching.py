"""Experiment B2 — batched multi-page ops under the mobile protocol.

A 32-page lock/read/write/unlock cycle against a mobile (epidemic)
region whose only other replica lives across a WAN link.  Per-page,
the acquire costs one PAGE_FETCH round-trip per page and the release
gossips one UPDATE_PUSH per (page, peer); batched, the acquire is one
PAGE_FETCH_BATCH to the first reachable peer and the release one
UPDATE_PUSH_BATCH per peer — the same O(pages) -> O(peers) drop the
home-directory protocols get, with no consistency cost (gossip is
best-effort either way).
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.core.attributes import RegionAttributes
from repro.core.daemon import DaemonConfig
from repro.core.locks import LockMode
from repro.net.message import REPLY_TYPES

PAGES = 32
SIZE = PAGES * 4096

_REPLY_KEYS = {msg_type.value for msg_type in REPLY_TYPES}


def request_count(delta) -> int:
    """Request (non-reply) messages in a NetworkStats delta."""
    return sum(
        count for key, count in delta.by_type.items()
        if key not in _REPLY_KEYS
    )


def run_cycle(enable_batching: bool):
    """One 32-page WRITE lock/read/write/unlock cycle over a WAN."""
    config = DaemonConfig(
        enable_failure_handling=False,   # no PING noise in the counts
        enable_batching=enable_batching,
    )
    cluster = create_cluster(num_nodes=2, topology="wan", config=config)
    owner = cluster.client(node=0)
    region = owner.reserve(
        SIZE, RegionAttributes(consistency_protocol="mobile")
    )
    owner.allocate(region.rid)
    owner.write_at(region.rid, b"a" * SIZE)
    cluster.run(1.0)

    kz = cluster.client(node=1)
    before = cluster.stats.snapshot()
    start = cluster.now
    ctx = kz.lock(region.rid, SIZE, LockMode.WRITE)
    kz.read(ctx, region.rid, SIZE)
    kz.write(ctx, region.rid, b"b" * SIZE)
    kz.unlock(ctx)
    elapsed = cluster.now - start
    delta = cluster.stats.delta_since(before)
    return request_count(delta), elapsed, delta


def test_mobile_batching_wan_cycle(once):
    table = Table(
        f"B2: {PAGES}-page WAN mobile lock/read/write/unlock cycle",
        ["metric", "per-page", "batched"],
    )

    def run():
        unbatched = run_cycle(enable_batching=False)
        batched = run_cycle(enable_batching=True)
        return unbatched, batched

    (unbatched, batched) = once(run)
    un_requests, un_elapsed, un_delta = unbatched
    b_requests, b_elapsed, b_delta = batched

    table.add("request RPCs", un_requests, b_requests)
    table.add("virtual seconds", f"{un_elapsed:.2f}", f"{b_elapsed:.2f}")
    table.add("messages sent", un_delta.messages_sent, b_delta.messages_sent)
    table.add("bytes sent", un_delta.bytes_sent, b_delta.bytes_sent)
    table.show()

    # Acceptance: mobile multi-page operations may only improve under
    # batching — strictly fewer request RPCs, never more.
    assert b_requests < un_requests
    # O(pages) fetches + O(pages * peers) gossip collapse to one
    # fetch batch plus one gossip batch per peer.
    assert b_requests <= 4
    assert un_requests >= PAGES
    assert b_elapsed <= un_elapsed
