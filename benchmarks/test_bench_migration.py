"""Experiment A3 — ablation: load-aware home migration.

The paper's conclusion lists "resource- and load-aware migration and
replication policies" as the next step beyond the prototype.  This
experiment measures what the policy is worth: a region created on one
node but used almost exclusively by another keeps paying remote
coherence costs unless its home follows the work.

Setup: node 1 creates a region; node 3 then performs a long stream of
writes and reads against it, with auto-migration off vs on.  Expected
shape: with migration enabled the region moves to node 3 early in the
stream, after which operations are local — cutting both messages and
latency for the remainder.
"""

from repro.api import create_cluster
from repro.bench.metrics import Table
from repro.core.daemon import DaemonConfig

OPS = 200


def _run(auto_migration):
    config = DaemonConfig(enable_auto_migration=auto_migration)
    cluster = create_cluster(num_nodes=4, config=config)
    creator = cluster.client(node=1)
    region = creator.reserve(4096)
    creator.allocate(region.rid)
    creator.write_at(region.rid, b"created-at-1")

    heavy = cluster.client(node=3)
    before = cluster.stats.snapshot()
    start = cluster.now
    for i in range(OPS):
        if i % 2 == 0:
            heavy.write_at(region.rid, f"update-{i:03d}".encode())
        else:
            heavy.read_at(region.rid, 10)
        cluster.run(0.05)   # let housekeeping (and the advisor) breathe
    elapsed = cluster.now - start
    delta = cluster.stats.delta_since(before)
    background = sum(
        delta.by_type.get(t, 0)
        for t in ("ping", "pong", "free_space_report")
    )
    final_home = None
    for node in cluster.node_ids():
        if region.rid in cluster.daemon(node).homed_regions:
            desc = cluster.daemon(node).homed_regions[region.rid]
            if desc.primary_home == node:
                final_home = node
    return {
        "msgs_per_op": (delta.messages_sent - background) / OPS,
        "ms_per_op": 1000 * elapsed / OPS,
        "final_home": final_home,
    }


def test_migration_follows_the_work(once):
    def run():
        return {
            "static home": _run(auto_migration=False),
            "auto-migration": _run(auto_migration=True),
        }

    results = once(run)

    table = Table(
        f"A3: node-3-dominated workload ({OPS} ops) on a node-1 region",
        ["policy", "msgs/op", "ms/op", "final primary home"],
    )
    for name, r in results.items():
        table.add(name, r["msgs_per_op"], r["ms_per_op"],
                  str(r["final_home"]))
    table.show()

    static, auto = results["static home"], results["auto-migration"]
    # Shape 1: the region actually moved to the heavy user.
    assert static["final_home"] == 1
    assert auto["final_home"] == 3
    # Shape 2: following the work saves messages per operation.
    assert auto["msgs_per_op"] < static["msgs_per_op"]