"""The per-node region directory: a cache of region descriptors.

Paper Section 3.2: "To avoid expensive remote lookups, Khazana
maintains a cache of recently used region descriptors called the
region directory.  The region directory is not kept globally
consistent, and thus may contain stale data, but this is not a
problem ... the use of a stale home pointer will simply result in a
message being sent to a node that no longer is home to the object."

Entries for well-known bootstrap regions (the address-map region at
address 0) are *pinned* and never evicted, which is what keeps the
lookup chain grounded (Section 3.1: "A well-known region beginning at
address 0 stores the root node of the address map tree").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.core.region import RegionDescriptor

DEFAULT_CAPACITY = 1024


class RegionDirectory:
    """Bounded LRU cache mapping region id -> descriptor."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._cache: "OrderedDict[int, RegionDescriptor]" = OrderedDict()
        self._pinned: "OrderedDict[int, RegionDescriptor]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def pin(self, descriptor: RegionDescriptor) -> None:
        """Install a never-evicted entry (bootstrap/system regions)."""
        self._pinned[descriptor.rid] = descriptor
        self._cache.pop(descriptor.rid, None)

    def insert(self, descriptor: RegionDescriptor) -> None:
        """Cache a descriptor, keeping only the newest version seen."""
        rid = descriptor.rid
        if rid in self._pinned:
            if descriptor.version >= self._pinned[rid].version:
                self._pinned[rid] = descriptor
            return
        existing = self._cache.get(rid)
        if existing is not None and existing.version > descriptor.version:
            self._cache.move_to_end(rid)
            return
        self._cache[rid] = descriptor
        self._cache.move_to_end(rid)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)

    def get(self, rid: int) -> Optional[RegionDescriptor]:
        """Exact lookup by region id."""
        descriptor = self._pinned.get(rid)
        if descriptor is not None:
            self.hits += 1
            return descriptor
        descriptor = self._cache.get(rid)
        if descriptor is not None:
            self._cache.move_to_end(rid)
            self.hits += 1
            return descriptor
        self.misses += 1
        return None

    def find_covering(self, address: int) -> Optional[RegionDescriptor]:
        """Descriptor of the cached region containing ``address``.

        Linear in the cache size; the cache is small (its whole point
        is to hold the hot set) and this avoids maintaining a second
        index that the original prototype did not have either.
        """
        for descriptor in self._pinned.values():
            if descriptor.range.contains(address):
                self.hits += 1
                return descriptor
        for rid, descriptor in self._cache.items():
            if descriptor.range.contains(address):
                self._cache.move_to_end(rid)
                self.hits += 1
                return descriptor
        self.misses += 1
        return None

    def invalidate(self, rid: int) -> None:
        """Drop a cached entry proven stale (home NAKed a request)."""
        self._cache.pop(rid, None)

    def entries(self) -> List[RegionDescriptor]:
        return list(self._pinned.values()) + list(self._cache.values())

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache) + len(self._pinned)

    def __iter__(self) -> Iterator[RegionDescriptor]:
        return iter(self.entries())
