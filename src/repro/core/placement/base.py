"""The PlacementStrategy seam: how a node resolves and places regions.

Paper Section 3.2 describes *one* location chain (directory → cluster
manager → address map → cluster walk).  PR 8 taught this codebase
that a seam pays for itself: the same protocol code runs over the
simulator and over TCP because everything time- or wire-shaped goes
through ``Runtime``.  This package applies the identical pattern to
*placement*: everything that decides where a region lives or how an
address resolves to a descriptor goes through a
:class:`PlacementStrategy`, so the paper's tiered chain
(:class:`~repro.core.placement.tiered.TieredPlacement`) and the
hash-partitioned ring
(:class:`~repro.core.placement.ring.HashRingPlacement`) are
interchangeable backends behind one surface.

The strategy surface, by concern:

=====================  ==================================================
lookup                 ``locate_region``, ``refresh_descriptor``,
                       ``handle_region_lookup``
hint/metadata publish  ``advertise_caching``, ``readvertise``,
                       ``retract``, ``note_unreserved``, ``note_migrated``
home selection         ``choose_homes``, ``home_order``
cluster-manager role   ``manager_node``, ``hosts_cluster_manager``
membership             ``membership``, ``on_membership_change``
wiring/inspection      ``wire_routes``, ``report``
=====================  ==================================================

Lint rule KHZ012 fences the complement: outside this package no code
reads ``config.cluster_manager_node`` or computes ring homes directly
— placement decisions have exactly one owner.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

from repro.core.address_map import SYSTEM_RID, EntryState
from repro.core.errors import KhazanaError
from repro.core.region import RegionDescriptor
from repro.net.message import MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout
from repro.net.tasks import Future

if TYPE_CHECKING:
    from repro.core.addressing import AddressRange
    from repro.core.kernel import NodeKernel
    from repro.core.router import MessageRouter
    from repro.net.message import Message

ProtocolGen = Generator[Future, Any, Any]

#: Lookup RPCs fail over to the next tier quickly rather than
#: retransmitting for long: stale hints are normal (Section 3.2).
LOOKUP_POLICY = RetryPolicy(timeout=1.0, retries=1, backoff=2.0)


class PlacementStrategy:
    """Base class of the placement seam.

    Subclasses own the tier between the local region directory and the
    address map (cluster-manager hints for the tiered chain, bucket
    directors for the ring); the directory tier, the address-map tree
    walk, and the tier-4 cluster walk are shared here because every
    strategy needs the same authoritative fallbacks.
    """

    #: Config value selecting this strategy (``DaemonConfig.placement``).
    name = "base"

    def __init__(self, kernel: "NodeKernel") -> None:
        self.kernel = kernel
        #: The live-member view driving this strategy (None for
        #: strategies that don't track membership themselves).
        self.membership: Optional[Any] = None

    # ------------------------------------------------------------------
    # Lookup (strategy-specific middle tier; override locate_region)
    # ------------------------------------------------------------------

    def locate_region(self, address: int,
                      skip_directory: bool = False) -> ProtocolGen:
        raise NotImplementedError

    def _locate_via_address_map(self, address: int) -> ProtocolGen:
        """Tier 3: the authoritative address-map tree walk plus a
        descriptor fetch from a home node."""
        kernel = self.kernel
        try:
            entry = yield from kernel.address_map.lookup(address)
        except KhazanaError:
            return None
        if entry.state is not EntryState.RESERVED:
            return None
        for home in entry.home_nodes:
            if home == kernel.node_id:
                desc = kernel.homed_regions.get(entry.range.start)
                if desc is not None:
                    return desc
                continue
            try:
                reply = yield kernel.rpc.request(
                    home, MessageType.DESCRIPTOR_FETCH,
                    {"rid": entry.range.start},
                    policy=LOOKUP_POLICY,
                )
                return RegionDescriptor.from_wire(reply.payload["descriptor"])
            except (RpcTimeout, RemoteError):
                continue
        return None

    def _cluster_walk(self, address: int) -> ProtocolGen:
        """Tier 4 (failure fallback, Section 3.1): ask every known
        peer whether it can name the region."""
        kernel = self.kernel
        peers = [n for n in kernel.network.node_ids() if n != kernel.node_id]
        for peer in peers:
            try:
                reply = yield kernel.rpc.request(
                    peer, MessageType.REGION_LOOKUP, {"address": address},
                    policy=LOOKUP_POLICY,
                )
            except (RpcTimeout, RemoteError):
                continue
            return RegionDescriptor.from_wire(reply.payload["descriptor"])
        return None

    def refresh_descriptor(self, desc: RegionDescriptor) -> ProtocolGen:
        """Fetch the authoritative descriptor from a home node."""
        kernel = self.kernel
        for home in desc.home_nodes:
            if home == kernel.node_id:
                return kernel.homed_regions.get(desc.rid, desc)
            try:
                reply = yield kernel.rpc.request(
                    home, MessageType.DESCRIPTOR_FETCH, {"rid": desc.rid},
                    policy=LOOKUP_POLICY,
                )
            except (RpcTimeout, RemoteError):
                continue
            fresh = RegionDescriptor.from_wire(reply.payload["descriptor"])
            kernel.adopt_descriptor(fresh)
            return fresh
        return desc

    def handle_region_lookup(self, msg: "Message") -> None:
        """Answer a tier-4 cluster-walk query from a peer."""
        kernel = self.kernel
        address = int(msg.payload["address"])
        desc = kernel.homed_regions.get(address)
        if desc is None:
            for candidate in kernel.homed_regions.values():
                if candidate.range.contains(address):
                    desc = candidate
                    break
        if desc is None:
            cached = kernel.region_directory.find_covering(address)
            if cached is not None and cached.rid != SYSTEM_RID:
                desc = cached
        if desc is None:
            kernel.reply_error(msg, "region_not_found",
                               f"node {kernel.node_id} cannot resolve "
                               f"{address:#x}")
            return
        kernel.reply_request(
            msg, MessageType.REGION_LOOKUP_REPLY,
            {"descriptor": desc.to_wire()},
        )

    # ------------------------------------------------------------------
    # Hint / metadata publication
    # ------------------------------------------------------------------

    def advertise_caching(self, desc: RegionDescriptor) -> None:
        """This node now caches (or homes) ``desc``; feed the middle
        lookup tier so later lookups from other nodes resolve there."""
        raise NotImplementedError

    def readvertise(self, desc: RegionDescriptor) -> None:
        """Refresh the middle tier after the descriptor changed
        (allocation, resize, migration)."""
        raise NotImplementedError

    def retract(self, desc: RegionDescriptor) -> None:
        """This node no longer caches any page of ``desc`` (eviction
        of the last page): withdraw its caching advertisement."""
        raise NotImplementedError

    def note_unreserved(self, desc: RegionDescriptor) -> None:
        """The region was unreserved: withdraw all placement metadata."""
        self.retract(desc)

    def note_migrated(self, new_desc: RegionDescriptor) -> None:
        """The region's home order changed (primary-side migration):
        republish so later lookups see the new homes."""

    # ------------------------------------------------------------------
    # Home selection
    # ------------------------------------------------------------------

    def choose_homes(self, range_: "AddressRange",
                     min_replicas: int) -> Tuple[int, ...]:
        """Home nodes for a fresh reservation: this node first, then
        alive peers (the paper's locality-first default)."""
        kernel = self.kernel
        homes: List[int] = [kernel.node_id]
        for peer in kernel.detector.alive_peers():
            if len(homes) >= min_replicas:
                break
            if peer != kernel.node_id:
                homes.append(peer)
        return tuple(homes)

    def home_order(self, desc: RegionDescriptor) -> List[int]:
        """Candidate order for the engine's ordered home failover
        (``request_home``).  The default is the descriptor's own home
        order; strategies may reorder or append likely homes the
        caller's stale descriptor does not name yet."""
        return list(desc.home_nodes)

    # ------------------------------------------------------------------
    # Cluster-manager role
    # ------------------------------------------------------------------

    @property
    def manager_node(self) -> Optional[int]:
        """The node hosting this daemon's cluster-manager role (space
        delegation always needs one; lookups may not)."""
        return self.kernel.config.cluster_manager_node

    def hosts_cluster_manager(self) -> bool:
        """Does *this* node host the cluster-manager role?"""
        return self.kernel.node_id == self.kernel.config.cluster_manager_node

    # ------------------------------------------------------------------
    # Membership / wiring / inspection
    # ------------------------------------------------------------------

    def on_membership_change(self, joined: List[int],
                             left: List[int]) -> None:
        """The live member set changed (join/leave/death/recovery)."""

    def wire_routes(self, router: "MessageRouter") -> None:
        """Register strategy-specific wire routes."""

    def report(self) -> Dict[str, Any]:
        """Inspection snapshot for ``tools/inspect.py``."""
        return {"strategy": self.name}
