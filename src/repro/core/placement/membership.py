"""MembershipService: the live member set behind ring placement.

"Machines can dynamically enter and leave Khazana and
contribute/reclaim local resources" (paper Section 3).  The tiered
chain tolerates churn passively — stale hints NAK and lookups fall
through — but hash placement *computes* homes from the member set, so
the set itself must be an explicit, gossiped protocol object:

- **Seeding**: an initial deployment hands every daemon the same peer
  list at bootstrap, so all rings agree from birth.
- **Join**: a newcomer sends ``MEMBER_JOIN`` to any seed member and
  absorbs the ``MEMBER_WELCOME`` member list; the welcoming node
  broadcasts a ``MEMBER_UPDATE`` so the rest of the ring learns in one
  hop.
- **Leave/death**: liveness comes from the failure detector, focused
  ring-successor-style — each member pings only its ``FOCUS_SUCCESSORS``
  ring successors (cf. succ1/succ2 pinging in Chord-like systems)
  instead of all-to-all, and a member that discovers a death gossips
  ``MEMBER_UPDATE left=[...]`` to everyone.

Every confirmed change flows to the owning
:class:`~repro.core.placement.base.PlacementStrategy` through
``on_membership_change`` so directors republish and re-homing starts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Set

from repro.core.placement.ring import mix64
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout
from repro.net.tasks import Future

if TYPE_CHECKING:
    from repro.core.kernel import NodeKernel
    from repro.core.placement.base import PlacementStrategy

ProtocolGen = Generator[Future, Any, Any]

#: How many ring successors each member pings (succ1/succ2 style).
FOCUS_SUCCESSORS = 2

#: A join announcement retries hard: a newcomer that cannot reach any
#: seed member is simply not in the system yet.
JOIN_POLICY = RetryPolicy(timeout=2.0, retries=3, backoff=1.5)


class MembershipService:
    """Tracks the live member set and runs the join/leave protocol."""

    def __init__(self, kernel: "NodeKernel",
                 placement: "PlacementStrategy") -> None:
        self.kernel = kernel
        self.placement = placement
        self._members: Set[int] = {kernel.node_id}
        #: The ring successors this member is responsible for pinging.
        self._focus: List[int] = []
        self.joins_seen = 0
        self.leaves_seen = 0
        kernel.detector.on_death(self._peer_died)
        kernel.detector.on_recovery(self._peer_recovered)

    # ------------------------------------------------------------------
    # The member view
    # ------------------------------------------------------------------

    def members(self) -> List[int]:
        """All known members (alive or not), this node included."""
        return sorted(self._members)

    def alive_members(self) -> List[int]:
        """Members the failure detector currently believes are up."""
        detector = self.kernel.detector
        return [m for m in sorted(self._members) if detector.is_alive(m)]

    def is_member(self, node_id: int) -> bool:
        return node_id in self._members

    def seed(self, peers: List[int]) -> None:
        """Install the bootstrap member list (initial deployment)."""
        self._members.update(peers)
        self._members.add(self.kernel.node_id)
        self._refocus()

    # ------------------------------------------------------------------
    # Mutation (returns True only on a *new* fact, so gossip terminates)
    # ------------------------------------------------------------------

    def add_member(self, node_id: int) -> bool:
        if node_id in self._members:
            return False
        self._members.add(node_id)
        self.kernel.detector.add_peer(node_id)
        self.joins_seen += 1
        self._refocus()
        return True

    def remove_member(self, node_id: int) -> bool:
        if node_id not in self._members or node_id == self.kernel.node_id:
            return False
        self._members.discard(node_id)
        self.leaves_seen += 1
        self._refocus()
        return True

    # ------------------------------------------------------------------
    # Join protocol (runs on the newcomer)
    # ------------------------------------------------------------------

    def join(self, seed_node: int) -> ProtocolGen:
        """Announce this node to ``seed_node`` and absorb the member
        list from its welcome."""
        kernel = self.kernel
        try:
            reply = yield kernel.rpc.request(
                seed_node, MessageType.MEMBER_JOIN,
                {"node": kernel.node_id}, policy=JOIN_POLICY,
            )
        except (RpcTimeout, RemoteError):
            # Not fatal: the seed list we were bootstrapped with keeps
            # the ring usable; gossip will complete the picture.
            return False
        fresh = [
            m for m in (int(n) for n in reply.payload.get("members", ()))
            if self.add_member(m)
        ]
        if fresh:
            self.placement.on_membership_change(fresh, [])
        return True

    def handle_member_join(self, msg: Message) -> None:
        """A newcomer announced itself: welcome it with the member
        list, then broadcast the join to the rest of the ring."""
        kernel = self.kernel
        node = int(msg.payload["node"])
        fresh = self.add_member(node)
        # A join announcement is proof of life — unstick the detector
        # if it still has the node marked dead from a past crash.
        kernel.detector.declare_alive(node)
        kernel.reply_request(
            msg, MessageType.MEMBER_WELCOME, {"members": self.members()}
        )
        if fresh:
            self._gossip(joined=[node], left=[])
            self.placement.on_membership_change([node], [])

    def handle_member_update(self, msg: Message) -> None:
        """Absorb a gossiped membership delta (no re-forwarding: the
        discovering member broadcast to everyone already)."""
        joined = [
            m for m in (int(n) for n in msg.payload.get("joined", ()))
            if self.add_member(m)
        ]
        for node in joined:
            # A gossiped join vouches for the node's liveness.
            self.kernel.detector.declare_alive(node)
        left = [
            m for m in (int(n) for n in msg.payload.get("left", ()))
            if self.remove_member(m)
        ]
        for node in left:
            # A gossiped leave is as authoritative as a local
            # detection: fire the repair machinery now.
            self.kernel.detector.declare_dead(node)
        if joined or left:
            self.placement.on_membership_change(joined, left)

    # ------------------------------------------------------------------
    # Detector feed
    # ------------------------------------------------------------------

    def _peer_died(self, node_id: int) -> None:
        # Capture responsibility *before* remove_member refocuses: the
        # dead node drops out of the new focus set by construction.
        was_watching = node_id in self._focus
        if not self.remove_member(node_id):
            return
        # Only the responsible pingers broadcast, so an all-at-once
        # clean leave (every detector told directly) costs O(N)
        # gossip messages instead of O(N^2).
        if was_watching:
            self._gossip(joined=[], left=[node_id])
        self.placement.on_membership_change([], [node_id])

    def _peer_recovered(self, node_id: int) -> None:
        was_watching = node_id in self._focus
        if not self.add_member(node_id):
            return
        if was_watching:
            self._gossip(joined=[node_id], left=[])
        # Re-sync both directions: while the link was down this side
        # may have been dropped from the peer's ring too.  The join
        # protocol re-announces us and absorbs the peer's member list.
        self.kernel.spawn(self.join(node_id),
                          label=f"member-rejoin:{node_id}")
        self.placement.on_membership_change([node_id], [])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _gossip(self, joined: List[int], left: List[int]) -> None:
        kernel = self.kernel
        payload = {"joined": list(joined), "left": list(left)}
        for member in self.members():
            if member == kernel.node_id or member in left:
                continue
            kernel.rpc.send(
                Message(
                    msg_type=MessageType.MEMBER_UPDATE,
                    src=kernel.node_id,
                    dst=member,
                    payload=dict(payload),
                )
            )

    def _refocus(self) -> None:
        """Point the failure detector at this member's ring successors.

        Members are ordered by their hashed ring position; each pings
        the next ``FOCUS_SUCCESSORS`` members after itself, so liveness
        cost per member is O(1) however large the ring grows.
        """
        kernel = self.kernel
        ordered = sorted(self._members, key=lambda m: (mix64(m), m))
        if kernel.node_id not in ordered or len(ordered) < 2:
            self._focus = []
            kernel.detector.set_focus(None)
            return
        index = ordered.index(kernel.node_id)
        focus: List[int] = []
        for step in range(1, len(ordered)):
            succ = ordered[(index + step) % len(ordered)]
            if succ == kernel.node_id:
                break
            focus.append(succ)
            if len(focus) >= FOCUS_SUCCESSORS:
                break
        self._focus = focus
        kernel.detector.set_focus(focus)
