"""HashRingPlacement: rendezvous-hashed region location at scale.

The tiered chain funnels misses through the cluster manager — a
per-cluster chokepoint (ablation A1).  Here any node computes a
region's *director* in O(1) from the live member set alone, so a
lookup is at most one RPC regardless of system size, and a membership
change re-homes only the optimally-small ~``regions / nodes`` slice.

Mechanics:

- The global address space is cut into fixed ``BUCKET_BYTES`` buckets.
- Each bucket's **director** is the member winning rendezvous (HRW)
  hashing over the live member set: ``argmax rendezvous_weight(bucket,
  member)``.  Rendezvous needs no token ranges or virtual nodes, and a
  join/leave moves exactly the buckets whose argmax changed.
- A region's home nodes are the top-ranked members of its first
  bucket (``choose_homes``), so the director *is* the primary and a
  lookup usually lands on the data's home in one hop.
- Homes and cachers publish descriptors to the directors of every
  overlapped bucket (``RING_PUBLISH``, one-way); lookups ask the
  director (``RING_QUERY``), recorded as the ``ring`` tier in
  :attr:`DaemonStats.lookup_tiers`.  The address map stays the
  authority of record: a cold director falls through to the shared
  map-walk tier.
- On membership change (fed by
  :class:`~repro.core.placement.membership.MembershipService`) every
  node republishes what it homes and proposes re-homes through
  :meth:`~repro.core.migration.MigrationAdvisor.propose_rehome`; the
  engine's ordered ``request_home`` failover (via :meth:`home_order`)
  keeps in-flight consistency traffic alive across the move.

The hash is a fixed splitmix64-style mixer, *not* Python's ``hash``:
ring positions must agree across processes regardless of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from repro.core.address_map import SYSTEM_RID
from repro.core.errors import RegionNotFound
from repro.core.placement.base import (
    LOOKUP_POLICY,
    PlacementStrategy,
    ProtocolGen,
)
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RpcTimeout

if TYPE_CHECKING:
    from repro.core.kernel import NodeKernel

_MASK64 = (1 << 64) - 1

#: Placement granularity.  1 MiB buckets give a 64 GiB address space
#: 65536 buckets — enough resolution that even a 100+-node ring
#: re-homes within a few percent of the optimal ``regions / nodes`` on
#: a single join or leave.
BUCKET_BYTES = 1 << 20

#: How many top-ranked directors a lookup tries before falling through
#: to the address map (the runner-up covers a director mid-failover).
QUERY_CANDIDATES = 2

#: Publication cap for pathologically large regions: beyond this many
#: buckets the map walk is the lookup path anyway.
PUBLISH_BUCKET_CAP = 64


def mix64(value: int) -> int:
    """Deterministic 64-bit finalizer (splitmix64's output stage)."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


def rendezvous_weight(bucket: int, member: int) -> int:
    """HRW weight of ``member`` for ``bucket``; the highest weight
    among live members directs the bucket."""
    return mix64(((bucket + 1) * 0x9E3779B97F4A7C15 & _MASK64) ^
                 mix64(member + 1))


def bucket_of(address: int) -> int:
    return address // BUCKET_BYTES


def rank_members(bucket: int, members: Iterable[int]) -> List[int]:
    """Members ordered by descending rendezvous weight (ties break
    toward the lower node id, so every node agrees)."""
    return sorted(members,
                  key=lambda m: (-rendezvous_weight(bucket, m), m))


def director_of(bucket: int, members: Iterable[int]) -> Optional[int]:
    """The single member directing ``bucket`` (None without members)."""
    best: Optional[int] = None
    best_weight = -1
    for member in members:
        weight = rendezvous_weight(bucket, member)
        if weight > best_weight or (weight == best_weight
                                    and (best is None or member < best)):
            best = member
            best_weight = weight
    return best


class DirectorTable:
    """Incremental bucket→director assignment over a large ring.

    Caches each bucket's ``(director, weight)`` so a join is a single
    weight comparison per bucket and a leave recomputes only the
    departed member's buckets — O(buckets) per membership event
    instead of O(buckets × members).  The churn benchmark drives a
    million regions through this table.
    """

    def __init__(self, num_buckets: int, members: Iterable[int]) -> None:
        self.num_buckets = num_buckets
        self.members: List[int] = sorted(set(members))
        if not self.members:
            raise ValueError("a ring needs at least one member")
        self._best: List[Tuple[int, int]] = [
            self._recompute(bucket) for bucket in range(num_buckets)
        ]

    def _recompute(self, bucket: int) -> Tuple[int, int]:
        best = self.members[0]
        best_weight = rendezvous_weight(bucket, best)
        for member in self.members[1:]:
            weight = rendezvous_weight(bucket, member)
            if weight > best_weight or (weight == best_weight
                                        and member < best):
                best, best_weight = member, weight
        return best, best_weight

    def director(self, bucket: int) -> int:
        return self._best[bucket][0]

    def join(self, member: int) -> List[int]:
        """Add a member; returns the buckets whose director moved."""
        if member in self.members:
            return []
        self.members.append(member)
        self.members.sort()
        moved: List[int] = []
        for bucket, (incumbent, weight) in enumerate(self._best):
            challenger = rendezvous_weight(bucket, member)
            if challenger > weight or (challenger == weight
                                       and member < incumbent):
                self._best[bucket] = (member, challenger)
                moved.append(bucket)
        return moved

    def leave(self, member: int) -> List[int]:
        """Remove a member; returns the buckets whose director moved."""
        if member not in self.members or len(self.members) == 1:
            return []
        self.members.remove(member)
        moved = [
            bucket for bucket, (incumbent, _) in enumerate(self._best)
            if incumbent == member
        ]
        for bucket in moved:
            self._best[bucket] = self._recompute(bucket)
        return moved

    def spread(self) -> Dict[int, int]:
        """Buckets directed per member (ownership-spread inspection)."""
        counts: Dict[int, int] = {m: 0 for m in self.members}
        for director, _ in self._best:
            counts[director] += 1
        return counts


class HashRingPlacement(PlacementStrategy):
    """O(1) region location over a gossiped live member set."""

    name = "ring"

    def __init__(self, kernel: "NodeKernel") -> None:
        super().__init__(kernel)
        # Local import: membership.py imports mix64 from this module.
        from repro.core.placement.membership import MembershipService

        self.membership = MembershipService(kernel, self)
        #: Buckets this node directs: bucket -> rid -> descriptor.
        self._directed: Dict[int, Dict[int, RegionDescriptor]] = {}
        #: Regions this node has already published to their directors.
        self._published: set = set()
        self.rehomes_proposed = 0
        self.publishes_sent = 0

    # ------------------------------------------------------------------
    # Lookup: directory → ring → map → walk
    # ------------------------------------------------------------------

    def locate_region(self, address: int,
                      skip_directory: bool = False) -> ProtocolGen:
        kernel = self.kernel
        if not skip_directory:
            cached = kernel.region_directory.find_covering(address)
            if cached is not None:
                kernel.stats.tier("directory")
                return cached

        desc = yield from self._locate_via_ring(address)
        if desc is not None:
            kernel.stats.tier("ring")
            kernel.region_directory.insert(desc)
            return desc

        desc = yield from self._locate_via_address_map(address)
        if desc is not None:
            kernel.stats.tier("map")
            kernel.region_directory.insert(desc)
            self.advertise_caching(desc)
            return desc

        desc = yield from self._cluster_walk(address)
        if desc is not None:
            kernel.stats.tier("walk")
            kernel.region_directory.insert(desc)
            return desc

        raise RegionNotFound(
            f"no reserved region covers address {address:#x}"
        )

    def _locate_via_ring(self, address: int) -> ProtocolGen:
        """Ask the bucket's director (then the runner-up) — one RPC,
        independent of system size."""
        kernel = self.kernel
        members = self.membership.alive_members()
        if not members:
            return None
        bucket = bucket_of(address)
        for candidate in rank_members(bucket, members)[:QUERY_CANDIDATES]:
            if candidate == kernel.node_id:
                desc = self._directed_lookup(bucket, address)
                if desc is not None:
                    return desc
                continue
            try:
                reply = yield kernel.rpc.request(
                    candidate, MessageType.RING_QUERY,
                    {"address": address}, policy=LOOKUP_POLICY,
                )
            except (RpcTimeout, RemoteError):
                continue
            return RegionDescriptor.from_wire(reply.payload["descriptor"])
        return None

    def _directed_lookup(self, bucket: int,
                         address: int) -> Optional[RegionDescriptor]:
        for desc in self._directed.get(bucket, {}).values():
            if desc.range.contains(address):
                return desc
        for desc in self.kernel.homed_regions.values():
            if desc.rid != SYSTEM_RID and desc.range.contains(address):
                return desc
        return None

    # ------------------------------------------------------------------
    # Publication (replaces the tiered chain's hint advertising)
    # ------------------------------------------------------------------

    def advertise_caching(self, desc: RegionDescriptor) -> None:
        if desc.rid == SYSTEM_RID or desc.rid in self._published:
            return
        self._published.add(desc.rid)
        self._publish(desc)

    def readvertise(self, desc: RegionDescriptor) -> None:
        self._published.discard(desc.rid)
        self.advertise_caching(desc)

    def retract(self, desc: RegionDescriptor) -> None:
        """No-op: ring publications record where a region *lives*, not
        who caches it, so an eviction here retracts nothing."""

    def note_unreserved(self, desc: RegionDescriptor) -> None:
        self._published.discard(desc.rid)
        self._publish(desc, dropped=True)

    def note_migrated(self, new_desc: RegionDescriptor) -> None:
        self._published.discard(new_desc.rid)
        self.advertise_caching(new_desc)

    def _publish(self, desc: RegionDescriptor, dropped: bool = False) -> None:
        kernel = self.kernel
        members = self.membership.alive_members()
        if not members:
            return
        per_director: Dict[int, List[int]] = {}
        for bucket in self._buckets_of(desc):
            director = director_of(bucket, members)
            per_director.setdefault(director, []).append(bucket)
        for director, buckets in per_director.items():
            if director == kernel.node_id:
                self._apply_publish(desc, buckets, dropped)
                continue
            self.publishes_sent += 1
            kernel.rpc.send(
                Message(
                    msg_type=MessageType.RING_PUBLISH,
                    src=kernel.node_id,
                    dst=director,
                    payload={"descriptor": desc.to_wire(),
                             "buckets": buckets, "dropped": dropped},
                )
            )

    @staticmethod
    def _buckets_of(desc: RegionDescriptor) -> List[int]:
        first = bucket_of(desc.range.start)
        last = bucket_of(desc.range.end - 1)
        return list(range(first, min(last, first + PUBLISH_BUCKET_CAP) + 1))

    def _apply_publish(self, desc: RegionDescriptor, buckets: List[int],
                       dropped: bool) -> None:
        for bucket in buckets:
            table = self._directed.get(bucket)
            if dropped:
                if table is not None:
                    table.pop(desc.rid, None)
                continue
            if table is None:
                table = self._directed[bucket] = {}
            known = table.get(desc.rid)
            if known is None or desc.version >= known.version:
                table[desc.rid] = desc

    # ------------------------------------------------------------------
    # Wire handlers
    # ------------------------------------------------------------------

    def handle_ring_query(self, msg: Message) -> None:
        kernel = self.kernel
        address = int(msg.payload["address"])
        desc = self._directed_lookup(bucket_of(address), address)
        if desc is None:
            kernel.reply_error(
                msg, "region_not_found",
                f"director {kernel.node_id} has no record covering "
                f"{address:#x}",
            )
            return
        kernel.reply_request(
            msg, MessageType.RING_REPLY, {"descriptor": desc.to_wire()}
        )

    def handle_ring_publish(self, msg: Message) -> None:
        desc = RegionDescriptor.from_wire(msg.payload["descriptor"])
        buckets = [int(b) for b in msg.payload.get("buckets", ())]
        self._apply_publish(desc, buckets, bool(msg.payload.get("dropped")))

    def wire_routes(self, router) -> None:
        router.register(MessageType.RING_QUERY, self.handle_ring_query,
                        dedup=True)
        router.register(MessageType.RING_PUBLISH, self.handle_ring_publish)
        router.register(MessageType.MEMBER_JOIN,
                        self.membership.handle_member_join, dedup=True)
        router.register(MessageType.MEMBER_UPDATE,
                        self.membership.handle_member_update)

    # ------------------------------------------------------------------
    # Home selection and ordered failover
    # ------------------------------------------------------------------

    def choose_homes(self, range_, min_replicas: int) -> Tuple[int, ...]:
        """Top-ranked ring members of the region's first bucket: the
        director is the primary from birth, so lookup and data land on
        the same node."""
        members = self.membership.alive_members()
        if not members:
            return (self.kernel.node_id,)
        ranked = rank_members(bucket_of(range_.start), members)
        return tuple(ranked[:max(min_replicas, 1)])

    def home_order(self, desc: RegionDescriptor) -> List[int]:
        """Director-first failover order; the current director is
        appended even when the (possibly stale) descriptor does not
        name it, as the post-migration last-ditch candidate."""
        order = list(desc.home_nodes)
        members = self.membership.alive_members()
        if members:
            director = director_of(bucket_of(desc.range.start), members)
            if director in order:
                order.remove(director)
                order.insert(0, director)
            elif (director is not None
                  and self.kernel.detector.is_alive(director)):
                order.append(director)
        return order

    # ------------------------------------------------------------------
    # Membership churn → republication + re-homing
    # ------------------------------------------------------------------

    def on_membership_change(self, joined: List[int],
                             left: List[int]) -> None:
        kernel = self.kernel
        members = self.membership.alive_members()
        if not members:
            return
        for rid, desc in list(kernel.homed_regions.items()):
            if rid == SYSTEM_RID or desc.primary_home != kernel.node_id:
                continue
            # New directors must learn what we home before lookups
            # land on them.
            self._publish(desc)
            target = director_of(bucket_of(desc.range.start), members)
            if (target is not None and target != kernel.node_id
                    and kernel.detector.is_alive(target)):
                if kernel.migration_advisor.propose_rehome(desc, target):
                    self.rehomes_proposed += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        doc = super().report()
        doc["members"] = self.membership.members()
        doc["alive_members"] = self.membership.alive_members()
        doc["buckets_directed"] = len(self._directed)
        doc["regions_directed"] = len(
            {rid for table in self._directed.values() for rid in table}
        )
        doc["regions_published"] = len(self._published)
        doc["rehomes_proposed"] = self.rehomes_proposed
        doc["publishes_sent"] = self.publishes_sent
        doc["joins_seen"] = self.membership.joins_seen
        doc["leaves_seen"] = self.membership.leaves_seen
        return doc
