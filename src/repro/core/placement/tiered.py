"""TieredPlacement: the paper's four-tier location chain (Section 3.2).

"To locate a region, a Khazana node consults, in order: its local
region directory, its cluster manager, and the global address map" —
with the cluster walk of Section 3.1 as the failure fallback.  The
four tiers are visible in :attr:`DaemonStats.lookup_tiers` as
``directory`` / ``cluster`` / ``intercluster`` / ``map`` / ``walk``.

The strategy also owns the *hint advertising* side of the chain: a
node lazily tells its cluster manager which regions it caches, so
later lookups from other nodes resolve at tier 2 instead of walking
the map.  This is a verbatim move of the pre-seam
``LocationService`` — bit-identical on the A1/scalability benchmarks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.core.errors import RegionNotFound
from repro.core.placement.base import (
    LOOKUP_POLICY,
    PlacementStrategy,
    ProtocolGen,
)
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RpcTimeout

if TYPE_CHECKING:
    from repro.core.kernel import NodeKernel


class TieredPlacement(PlacementStrategy):
    """Resolves addresses through the paper's tier chain; places
    regions locality-first and publishes caching hints to the
    cluster-manager role."""

    name = "tiered"

    def __init__(self, kernel: "NodeKernel") -> None:
        super().__init__(kernel)
        #: Regions this node has already advertised to its manager.
        self._hinted_rids: set = set()

    # ------------------------------------------------------------------
    # The four-tier lookup chain
    # ------------------------------------------------------------------

    def locate_region(self, address: int,
                      skip_directory: bool = False) -> ProtocolGen:
        """Resolve the region descriptor covering ``address``.

        Tier 1: the local region directory.  Tier 2: the cluster
        manager's hint cache.  Tier 3: the address-map tree walk plus a
        descriptor fetch from a home node.  Tier 4 (failure fallback,
        Section 3.1): the cluster walk, asking every known peer.
        """
        kernel = self.kernel
        if not skip_directory:
            cached = kernel.region_directory.find_covering(address)
            if cached is not None:
                kernel.stats.tier("directory")
                return cached

        if kernel.config.use_cluster_hints:
            found = yield from self._locate_via_cluster_manager(address)
            if found is not None:
                desc, via = found
                kernel.stats.tier(
                    "intercluster" if via == "intercluster" else "cluster"
                )
                kernel.region_directory.insert(desc)
                return desc

        desc = yield from self._locate_via_address_map(address)
        if desc is not None:
            kernel.stats.tier("map")
            kernel.region_directory.insert(desc)
            self.advertise_caching(desc)
            return desc

        desc = yield from self._cluster_walk(address)
        if desc is not None:
            kernel.stats.tier("walk")
            kernel.region_directory.insert(desc)
            return desc

        raise RegionNotFound(
            f"no reserved region covers address {address:#x}"
        )

    def _locate_via_cluster_manager(self, address: int) -> ProtocolGen:
        """Tiers 2-3: local cluster manager, then peer clusters.

        Returns ``(descriptor, via)`` or None; ``via`` distinguishes a
        local-cluster hint from an inter-cluster answer for the stats.
        """
        kernel = self.kernel
        if kernel.cluster_role is not None:
            hint = kernel.cluster_role.lookup_hint(address)
            if hint is not None:
                return hint[0], "local"
            # This node IS the manager: ask peer-cluster managers.
            for manager in kernel.config.peer_managers:
                try:
                    reply = yield kernel.rpc.request(
                        manager, MessageType.CM_HINT_QUERY,
                        {"address": address, "no_forward": True},
                        policy=LOOKUP_POLICY,
                    )
                except (RpcTimeout, RemoteError):
                    continue
                desc = RegionDescriptor.from_wire(reply.payload["descriptor"])
                for node in reply.payload.get("nodes", []):
                    kernel.cluster_role.note_region_cached(desc, int(node))
                return desc, "intercluster"
            return None
        manager = self.manager_node
        try:
            reply = yield kernel.rpc.request(
                manager, MessageType.CM_HINT_QUERY, {"address": address},
                policy=LOOKUP_POLICY,
            )
        except (RpcTimeout, RemoteError):
            return None
        return (
            RegionDescriptor.from_wire(reply.payload["descriptor"]),
            reply.payload.get("via", "local"),
        )

    # ------------------------------------------------------------------
    # Hint advertising (feeding tier 2)
    # ------------------------------------------------------------------

    def advertise_caching(self, desc: RegionDescriptor) -> None:
        """Lazily tell the cluster manager we now cache this region."""
        kernel = self.kernel
        if not kernel.config.use_cluster_hints:
            return
        if desc.rid in self._hinted_rids:
            return
        self._hinted_rids.add(desc.rid)
        if kernel.cluster_role is not None:
            kernel.cluster_role.note_region_cached(desc, kernel.node_id)
            return
        kernel.rpc.send(
            Message(
                msg_type=MessageType.CM_HINT_UPDATE,
                src=kernel.node_id,
                dst=self.manager_node,
                payload={"descriptor": desc.to_wire()},
            )
        )

    def readvertise(self, desc: RegionDescriptor) -> None:
        """Refresh the manager's hint after the descriptor changed
        (allocation, resize, migration) so later lookups from other
        nodes see the new one."""
        self._hinted_rids.discard(desc.rid)
        self.advertise_caching(desc)

    def retract(self, desc: RegionDescriptor) -> None:
        """Withdraw this node's caching hint for a gone region."""
        kernel = self.kernel
        if desc.rid not in self._hinted_rids:
            return
        self._hinted_rids.discard(desc.rid)
        if kernel.cluster_role is not None:
            kernel.cluster_role.note_region_dropped(desc.rid, kernel.node_id)
        else:
            kernel.rpc.send(
                Message(
                    msg_type=MessageType.CM_HINT_UPDATE,
                    src=kernel.node_id,
                    dst=self.manager_node,
                    payload={"descriptor": desc.to_wire(), "dropped": True},
                )
            )

    def note_migrated(self, new_desc: RegionDescriptor) -> None:
        """Primary-side migration: point the manager's hint at the new
        primary so tier-2 lookups chase the region, not the old home."""
        kernel = self.kernel
        manager = self.manager_node
        if manager is not None and manager != kernel.node_id:
            kernel.rpc.send(
                Message(
                    msg_type=MessageType.CM_HINT_UPDATE,
                    src=kernel.node_id,
                    dst=manager,
                    payload={"descriptor": new_desc.to_wire()},
                )
            )
        elif kernel.cluster_role is not None:
            kernel.cluster_role.note_region_cached(
                new_desc, new_desc.home_nodes[0]
            )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        doc = super().report()
        doc["hinted_regions"] = len(self._hinted_rids)
        doc["manager_node"] = self.manager_node
        return doc
