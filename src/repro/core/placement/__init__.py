"""Pluggable region placement (the PlacementStrategy seam).

``DaemonConfig.placement`` selects the backend:

- ``"tiered"`` (default) — the paper's four-tier chain
  (:class:`~repro.core.placement.tiered.TieredPlacement`),
- ``"ring"`` — rendezvous-hashed O(1) location with live membership
  (:class:`~repro.core.placement.ring.HashRingPlacement`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.placement.base import LOOKUP_POLICY, PlacementStrategy
from repro.core.placement.ring import HashRingPlacement
from repro.core.placement.tiered import TieredPlacement

if TYPE_CHECKING:
    from repro.core.kernel import NodeKernel

__all__ = [
    "LOOKUP_POLICY",
    "PlacementStrategy",
    "TieredPlacement",
    "HashRingPlacement",
    "create_placement",
]

_STRATEGIES = {
    TieredPlacement.name: TieredPlacement,
    HashRingPlacement.name: HashRingPlacement,
}


def create_placement(kernel: "NodeKernel") -> PlacementStrategy:
    """Build the placement strategy named by ``kernel.config.placement``."""
    name = kernel.config.placement
    strategy = _STRATEGIES.get(name)
    if strategy is None:
        raise ValueError(
            f"unknown placement strategy {name!r}; "
            f"expected one of {sorted(_STRATEGIES)}"
        )
    return strategy(kernel)
