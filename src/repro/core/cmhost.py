"""The CMHost contract: the node surface consistency managers may use.

The paper treats consistency managers as plug-in modules: "Program
modules called Consistency Managers (CMs) run at each of the replica
sites and cooperate to implement the required level of consistency
among the replicas" (Section 3.3), and "plugging in new protocols or
consistency managers is only a matter of registering them with
Khazana" (Section 5).  Plugging in stays cheap only while the surface
a CM programs against is narrow and named — this module *is* that
surface.

A :class:`~repro.core.kernel.NodeKernel` implements this protocol;
:class:`~repro.consistency.manager.ConsistencyManager` subclasses
receive their host typed as :class:`CMHost` and must not reach past
it.  Lint rule KHZ006 enforces the complement: outside ``repro/core``
no code may touch a ``_``-private attribute of a daemon/kernel/host
object.  Within the consistency layer the surface narrows once more:
KHZ007 forbids protocol *policy* modules from calling ``host.rpc`` or
``host.reply_*`` themselves — every wire interaction goes through a
:class:`~repro.consistency.engine.wire.ProtocolEngine` primitive, so
only the engine package uses this protocol's messaging rows directly.

The surface, by concern:

===================  ======================================================
identity/config      ``node_id``, ``config``, ``runtime``, ``now``,
                     ``probe``
messaging            ``rpc``, ``reply_request``, ``reply_error``
coherence state      ``page_directory``, ``lock_table``, ``storage``
page residency       ``local_page_bytes``, ``store_local_page``,
                     ``drop_local_page``
lock mediation       ``wait_local_conflicts``
task plumbing        ``spawn``, ``spawn_handler``, ``sleep``
failure handling     ``retry_queue``
===================  ======================================================
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Generator,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.net.tasks import Future

if TYPE_CHECKING:
    from repro.core.kernel import DaemonConfig
    from repro.core.locks import LockMode, LockTable
    from repro.core.page_directory import PageDirectory
    from repro.core.region import RegionDescriptor
    from repro.failure.retry import RetryQueue
    from repro.net.runtime import Runtime
    from repro.net.message import Message, MessageType
    from repro.net.rpc import RpcEndpoint
    from repro.storage.hierarchy import StorageHierarchy

ProtocolGen = Generator[Future, Any, Any]


@runtime_checkable
class CMHost(Protocol):
    """What a consistency manager's hosting node looks like."""

    # --- Identity and configuration ------------------------------------
    node_id: int
    config: "DaemonConfig"
    #: The backend seam (clock/timers/transport); CM policy code never
    #: schedules on it directly (KHZ008) — it reads the clock via
    #: :attr:`now` and sleeps via :meth:`sleep`.
    runtime: "Runtime"
    #: Race-detector probe (``NULL_PROBE`` when detection is off);
    #: call sites guard on ``probe.enabled``.
    probe: Any

    @property
    def now(self) -> float:
        """The node's clock (virtual or wall seconds, per backend)."""
        ...

    # --- Messaging -------------------------------------------------------
    rpc: "RpcEndpoint"

    def reply_request(self, msg: "Message", msg_type: "MessageType",
                      payload: Optional[dict] = None) -> None:
        """Send (and cache, for duplicate suppression) a reply."""
        ...

    def reply_error(self, msg: "Message", code: str, detail: str = "") -> None:
        """NAK a request with a wire-codable error."""
        ...

    # --- Placement -------------------------------------------------------
    def home_order(self, desc: "RegionDescriptor") -> list:
        """Candidate order for ordered home failover: the placement
        strategy's view of where the region's home is (or moved to),
        starting from the descriptor's own home list."""
        ...

    # --- Coherence state -------------------------------------------------
    page_directory: "PageDirectory"
    lock_table: "LockTable"
    storage: "StorageHierarchy"

    # --- Page residency --------------------------------------------------
    def local_page_bytes(self, desc: "RegionDescriptor",
                         page_addr: int) -> ProtocolGen:
        """Bytes of a locally stored page (None when not resident)."""
        ...

    def store_local_page(self, desc: "RegionDescriptor", page_addr: int,
                         data: bytes, dirty: bool) -> ProtocolGen:
        """Cache page bytes locally, charging simulated I/O time."""
        ...

    def drop_local_page(self, page_addr: int) -> None:
        """Discard the local copy of a page."""
        ...

    # --- Lock mediation --------------------------------------------------
    def wait_local_conflicts(self, page_addr: int,
                             mode: "LockMode") -> ProtocolGen:
        """Block until no live local context conflicts with ``mode``."""
        ...

    # --- Task plumbing ---------------------------------------------------
    def spawn(self, task: ProtocolGen, label: str = "task") -> Future:
        ...

    def spawn_handler(self, msg: "Message", task: ProtocolGen,
                      label: str = "handler") -> None:
        ...

    def sleep(self, seconds: float) -> Future:
        ...

    # --- Failure handling ------------------------------------------------
    retry_queue: "RetryQueue"
