"""Khazana error taxonomy.

Following the paper's failure semantics (Section 3.5): errors raised
while *acquiring* resources (reserve, allocate, lock, read, write) are
reflected back to the client as these exceptions, while errors raised
while *releasing* resources (unreserve, free, unlock) are absorbed and
retried in the background by :mod:`repro.failure.retry`.
"""

from __future__ import annotations


class KhazanaError(Exception):
    """Base class for every error Khazana reflects to a client.

    ``code`` is the stable wire identifier carried in ERROR NAK
    messages between daemons.
    """

    code = "khazana_error"

    def __init__(self, detail: str = "") -> None:
        super().__init__(detail or self.__doc__ or self.code)
        self.detail = detail


class InvalidRange(KhazanaError):
    """The supplied global address range is malformed or out of bounds."""

    code = "invalid_range"


class BadPageSize(KhazanaError):
    """Requested page size is not 4 KiB or a supported larger power of two."""

    code = "bad_page_size"


class AddressSpaceExhausted(KhazanaError):
    """No contiguous run of unreserved global address space was found."""

    code = "address_space_exhausted"


class RegionNotFound(KhazanaError):
    """No reserved region encloses the requested global address range.

    Raised after the full lookup chain — region directory, cluster
    manager, address-map tree walk — has failed (paper Section 3.2:
    "If the region descriptor cannot be located, the region is deemed
    inaccessible and the operation fails back to the client").
    """

    code = "region_not_found"


class NotReserved(KhazanaError):
    """Operation on address space that is not part of a reserved region."""

    code = "not_reserved"


class AlreadyReserved(KhazanaError):
    """Attempt to reserve address space that is already reserved."""

    code = "already_reserved"


class NotAllocated(KhazanaError):
    """Access to a reserved region before physical storage is allocated.

    "A region cannot be accessed until physical storage is explicitly
    allocated to it" (paper Section 2).
    """

    code = "not_allocated"


class AllocationFailed(KhazanaError):
    """No node could supply backing storage for the requested pages."""

    code = "allocation_failed"


class StorageExhausted(KhazanaError):
    """A node's local storage hierarchy is full of locked/pinned pages."""

    code = "storage_exhausted"


class AccessDenied(KhazanaError):
    """The caller's credentials fail the region's access control list."""

    code = "access_denied"


class LockDenied(KhazanaError):
    """The consistency manager refused the lock (e.g. timeout waiting
    for a conflicting holder, or mode not permitted for this caller)."""

    code = "lock_denied"


class InvalidLockContext(KhazanaError):
    """A read/write presented a lock context that is closed, covers a
    different range, or grants an insufficient mode."""

    code = "invalid_lock_context"


class ProtocolUnknown(KhazanaError):
    """The region names a consistency protocol no CM has registered."""

    code = "protocol_unknown"


class NodeUnavailable(KhazanaError):
    """Every node that could serve the request is crashed or partitioned."""

    code = "node_unavailable"


class KhazanaTimeout(KhazanaError):
    """The operation timed out after exhausting retries on all known
    nodes (paper Section 3.5)."""

    code = "timeout"


class RegionInUse(KhazanaError):
    """Unreserve attempted while locks are still held on the region."""

    code = "region_in_use"


#: Wire code -> exception class, used when turning an ERROR NAK from a
#: peer daemon back into a typed exception at the requesting node.
ERROR_CODES = {
    cls.code: cls
    for cls in (
        KhazanaError,
        InvalidRange,
        BadPageSize,
        AddressSpaceExhausted,
        RegionNotFound,
        NotReserved,
        AlreadyReserved,
        NotAllocated,
        AllocationFailed,
        StorageExhausted,
        AccessDenied,
        LockDenied,
        InvalidLockContext,
        ProtocolUnknown,
        NodeUnavailable,
        KhazanaTimeout,
        RegionInUse,
    )
}


def error_from_code(code: str, detail: str = "") -> KhazanaError:
    """Reconstruct a typed exception from a wire error code."""
    cls = ERROR_CODES.get(code, KhazanaError)
    return cls(detail)
