"""Region home migration and the load-aware placement policy.

Two future-work items from the paper are implemented here:

- Section 3.2 presumes homes can move ("Regions do not migrate home
  nodes often, so the cached value is most likely accurate"), and the
  conclusion lists "resource- and load-aware migration and replication
  policies" as planned work.

Mechanism (:meth:`migrate_region` on the daemon, driven through the
``REGION_MIGRATE`` message): the current primary home pushes every
allocated page to the new primary, publishes a descriptor with the new
home order, updates the address map, and demotes itself.  Stale cached
descriptors elsewhere keep pointing at the old home; its directory
entries remain as hints, and the normal stale-hint machinery (NAKs,
descriptor refresh, lookup fallbacks) converges readers onto the new
home — exactly the tolerance Section 3.2 describes.

Policy (:class:`MigrationAdvisor`): each home counts which nodes
generate consistency traffic per region; when one remote node
dominates (by share and sample count), the region follows the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Set

from repro.net.tasks import Future

ProtocolGen = Generator[Future, Any, Any]

#: A remote node must account for at least this share of a region's
#: accesses before auto-migration triggers.
DOMINANCE_THRESHOLD = 0.7

#: ...and at least this many accesses must have been observed.
MIN_SAMPLES = 12


@dataclass
class RegionTraffic:
    """Access counts per requester for one homed region."""

    by_node: Dict[int, int]

    def total(self) -> int:
        return sum(self.by_node.values())

    def dominant(self) -> Optional[int]:
        """The node providing a dominant share of accesses, if any."""
        total = self.total()
        if total < MIN_SAMPLES:
            return None
        node, count = max(self.by_node.items(), key=lambda kv: kv[1])
        if count / total >= DOMINANCE_THRESHOLD:
            return node
        return None


class MigrationAdvisor:
    """Observes per-region access traffic and proposes migrations.

    ``note_access`` is fed by the daemon's consistency-message
    dispatcher, so every remote lock request, page fetch, and update
    push counts toward the requester's share.  The advisor's ``tick``
    runs on the daemon's housekeeping timer when auto-migration is
    enabled.
    """

    def __init__(self, daemon: Any) -> None:
        self.daemon = daemon
        self._traffic: Dict[int, RegionTraffic] = {}
        self._migrating: Set[int] = set()
        self.migrations_started = 0
        self.migrations_completed = 0

    def note_access(self, rid: int, node: int) -> None:
        if node == self.daemon.node_id:
            return
        traffic = self._traffic.get(rid)
        if traffic is None:
            traffic = RegionTraffic(by_node={})
            self._traffic[rid] = traffic
        traffic.by_node[node] = traffic.by_node.get(node, 0) + 1

    def traffic_for(self, rid: int) -> Dict[int, int]:
        traffic = self._traffic.get(rid)
        return dict(traffic.by_node) if traffic else {}

    def forget_region(self, rid: int) -> None:
        self._traffic.pop(rid, None)

    def propose_rehome(self, desc: Any, target: int) -> bool:
        """Start a placement-driven migration of ``desc`` to ``target``.

        Ring placement calls this on membership change for regions
        whose director moved; the same guards as the load-aware policy
        apply (one migration per region at a time, never to self or a
        dead node, only from the current primary).  Returns True when
        a migration task was actually started.
        """
        rid = desc.rid
        if rid in self._migrating or target == self.daemon.node_id:
            return False
        if desc.primary_home != self.daemon.node_id:
            return False
        if not self.daemon.detector.is_alive(target):
            return False
        self._migrating.add(rid)
        self.migrations_started += 1
        outcome = self.daemon.spawn(
            self.daemon.migrate_region_local(desc, target),
            label=f"rehome:{rid:#x}",
        )

        def done(future: Future, rid=rid) -> None:
            self._migrating.discard(rid)
            self._traffic.pop(rid, None)
            if future.exception() is None:
                self.migrations_completed += 1

        outcome.add_callback(done)
        return True

    def tick(self) -> None:
        """Propose migrations for regions with a dominant remote user."""
        for rid, traffic in list(self._traffic.items()):
            desc = self.daemon.homed_regions.get(rid)
            if desc is None or desc.primary_home != self.daemon.node_id:
                self._traffic.pop(rid, None)
                continue
            if rid in self._migrating:
                continue
            target = traffic.dominant()
            if target is None or target == self.daemon.node_id:
                continue
            if not self.daemon.detector.is_alive(target):
                continue
            self._migrating.add(rid)
            self.migrations_started += 1
            outcome = self.daemon.spawn(
                self.daemon.migrate_region_local(desc, target),
                label=f"auto-migrate:{rid:#x}",
            )

            def done(future: Future, rid=rid) -> None:
                self._migrating.discard(rid)
                self._traffic.pop(rid, None)
                if future.exception() is None:
                    self.migrations_completed += 1

            outcome.add_callback(done)
