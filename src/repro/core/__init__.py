"""Khazana core: the paper's primary contribution.

This package implements the global shared storage abstraction of
Sections 2 and 3 of the paper: the 128-bit global address space,
regions and pages, the distributed address map, per-node region and
page directories, lock contexts, cluster managers, and the per-node
daemon that ties them together.
"""

from repro.core.addressing import (
    ADDRESS_BITS,
    DEFAULT_PAGE_SIZE,
    MAX_ADDRESS,
    AddressRange,
    format_address,
)
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.errors import (
    AccessDenied,
    AddressSpaceExhausted,
    AllocationFailed,
    BadPageSize,
    InvalidLockContext,
    InvalidRange,
    KhazanaError,
    KhazanaTimeout,
    LockDenied,
    NodeUnavailable,
    NotAllocated,
    NotReserved,
    ProtocolUnknown,
    RegionNotFound,
    StorageExhausted,
)
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor

__all__ = [
    "ADDRESS_BITS",
    "AccessDenied",
    "AddressRange",
    "AddressSpaceExhausted",
    "AllocationFailed",
    "BadPageSize",
    "ConsistencyLevel",
    "DEFAULT_PAGE_SIZE",
    "InvalidLockContext",
    "InvalidRange",
    "KhazanaError",
    "KhazanaTimeout",
    "LockContext",
    "LockDenied",
    "LockMode",
    "MAX_ADDRESS",
    "NodeUnavailable",
    "NotAllocated",
    "NotReserved",
    "ProtocolUnknown",
    "RegionAttributes",
    "RegionDescriptor",
    "RegionNotFound",
    "StorageExhausted",
    "format_address",
]
