"""Local address-space pools.

Paper Section 3.1: "Khazana daemon processes maintain a pool of
locally reserved, but unused, address space.  In response to a client
request to reserve a new region of memory, the contacted Khazana
daemon first attempts to find enough space in unreserved regions that
it is managing locally.  If it has insufficient local unreserved
space, the node contacts its local cluster manager, requesting a large
(e.g., one gigabyte) region of unreserved space that it will then
locally manage."
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.addressing import AddressRange

#: Size of the chunk a daemon requests from its cluster manager when
#: its local pool runs dry (the paper's example value).
DEFAULT_CHUNK_SIZE = 1 << 30   # one gigabyte


class LocalSpacePool:
    """Free address space delegated to one daemon.

    Ranges in the pool are disjoint and sorted.  Carving is first-fit
    with alignment; freed reservations are *not* returned to the pool
    (the paper: "For simplicity, we do not defragment ... We do not
    expect this to cause address space fragmentation problems, as we
    have a huge (128-bit) address space at our disposal").
    """

    def __init__(self) -> None:
        self._free: List[AddressRange] = []

    def add(self, chunk: AddressRange) -> None:
        """Add a delegated chunk to the pool, merging where adjacent."""
        merged = chunk
        keep: List[AddressRange] = []
        for existing in self._free:
            if existing.overlaps(merged):
                raise ValueError(
                    f"chunk {chunk} overlaps pooled range {existing}"
                )
            if existing.adjacent_to(merged):
                merged = merged.union(existing)
            else:
                keep.append(existing)
        keep.append(merged)
        keep.sort(key=lambda r: r.start)
        self._free = keep

    def carve(self, size: int, alignment: int = 1) -> Optional[AddressRange]:
        """Remove and return an aligned range of ``size`` bytes, or
        None when no pooled range fits."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if alignment <= 0:
            raise ValueError(f"alignment must be positive, got {alignment}")
        for index, candidate in enumerate(self._free):
            start = -(-candidate.start // alignment) * alignment
            if start + size > candidate.end:
                continue
            carved = AddressRange(start, size)
            remainder: List[AddressRange] = candidate.subtract(carved)
            self._free[index : index + 1] = remainder
            return carved
        return None

    def remove_overlap(self, claimed: AddressRange) -> int:
        """Remove any pooled space overlapping ``claimed``.

        Used when a region extension consumes part of this node's
        delegated space directly through the address map; the pool
        must stop offering those addresses.  Returns bytes removed.
        """
        removed = 0
        updated: List[AddressRange] = []
        for existing in self._free:
            if not existing.overlaps(claimed):
                updated.append(existing)
                continue
            overlap = existing.intersection(claimed)
            removed += overlap.length if overlap else 0
            updated.extend(existing.subtract(claimed))
        updated.sort(key=lambda r: r.start)
        self._free = updated
        return removed

    def total_free(self) -> int:
        return sum(r.length for r in self._free)

    def max_contiguous(self) -> int:
        return max((r.length for r in self._free), default=0)

    def ranges(self) -> List[AddressRange]:
        return list(self._free)

    def __len__(self) -> int:
        return len(self._free)
