"""The Khazana daemon: one peer of the distributed service.

"The Khazana service is implemented by a dynamically changing set of
cooperating daemon processes running on some (not necessarily all)
machines of a potentially wide-area network.  Note that there is no
notion of a 'server' in a Khazana system — all Khazana nodes are peers
that cooperate to provide the illusion of a unified resource."
(paper Section 2)

Each daemon owns:

- a local storage hierarchy (RAM over disk) caching global pages,
- the per-node region directory (descriptor cache) and page directory,
- a lock table recording live lock contexts,
- one consistency-manager instance per protocol in use,
- a pool of delegated address space for servicing reserves,
- the failure-handling machinery (retry queue, detector, replica
  maintainer),
- and, on designated nodes, the cluster-manager role.

Client operations are implemented as protocol generators (see
:mod:`repro.net.tasks`); the region-location chain follows Section 3.2
exactly: region directory, then cluster manager, then address-map tree
walk, then the cluster-walk broadcast of Section 3.1.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional, Set, Tuple

from collections import OrderedDict, deque

from repro.consistency import create_manager
from repro.consistency.manager import ConsistencyManager
from repro.core.address_map import (
    ROOT_PAGE,
    SYSTEM_REGION,
    AddressMap,
    MapIO,
    initial_root_node,
)
from repro.core.addressing import AddressRange, DEFAULT_PAGE_SIZE
from repro.core.allocator import DEFAULT_CHUNK_SIZE, LocalSpacePool
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.cluster import ClusterManagerRole
from repro.core.errors import (
    AccessDenied,
    InvalidLockContext,
    InvalidRange,
    KhazanaError,
    KhazanaTimeout,
    LockDenied,
    NodeUnavailable,
    NotAllocated,
    RegionInUse,
    RegionNotFound,
    error_from_code,
)
from repro.core.locks import LockContext, LockMode, LockTable
from repro.core.page_directory import PageDirectory
from repro.core.region import RegionDescriptor
from repro.core.region_directory import RegionDirectory
from repro.core.security import Right, SYSTEM_PRINCIPAL, AccessControlList
from repro.failure.detector import FailureDetector
from repro.failure.replicas import ReplicaMaintainer
from repro.failure.retry import RetryQueue
from repro.net.clock import EventScheduler
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcEndpoint, RpcTimeout
from repro.net.sim import SimNetwork
from repro.net.tasks import Future, TaskRunner
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.memory import MemoryStore
from repro.storage.disk import DiskStore
from repro.storage.store import StoredPage

ProtocolGen = Generator[Future, Any, Any]

logger = logging.getLogger(__name__)

#: The region id of the well-known address-map region.
SYSTEM_RID = SYSTEM_REGION.start

LOOKUP_POLICY = RetryPolicy(timeout=1.0, retries=1, backoff=2.0)


@dataclass
class DaemonConfig:
    """Tunables for one daemon."""

    memory_bytes: int = 256 * DEFAULT_PAGE_SIZE
    disk_bytes: int = 16384 * DEFAULT_PAGE_SIZE
    #: Node hosting the cluster-manager role for this daemon's cluster.
    cluster_manager_node: int = 0
    #: Which cluster this daemon belongs to (paper 3.1: nodes are
    #: "organized into a hierarchy" of clusters).
    cluster_id: int = 0
    #: Manager nodes of the *other* clusters, for inter-cluster
    #: location queries ("representing the local cluster during
    #: inter-cluster communication").
    peer_managers: Tuple[int, ...] = ()
    #: Node that bootstrapped the system region (home of the map).
    bootstrap_node: int = 0
    #: Give up waiting for a lock after this many virtual seconds.
    lock_wait_timeout: float = 60.0
    #: Housekeeping period (CM ticks, free-space reports).
    housekeeping_period: float = 1.0
    #: Run the failure detector / replica maintainer.
    enable_failure_handling: bool = True
    #: Coalesce multi-page lock/unlock traffic into one RPC per home
    #: node (PAGE_FETCH_BATCH / TOKEN_ACQUIRE_BATCH / UPDATE_PUSH_BATCH).
    #: Off forces the per-page protocol path everywhere.
    enable_batching: bool = True
    #: Region-directory capacity (ablation A1 shrinks this to 1).
    region_directory_capacity: int = 1024
    #: Disable the cluster-manager hint tier (ablation A1).
    use_cluster_hints: bool = True
    #: When set, the daemon's disk level is file-backed under
    #: ``{spill_dir}/node{id}`` and homed-region metadata is journaled
    #: there, so the daemon can be restarted with its state intact.
    spill_dir: Optional[str] = None
    #: Automatically migrate a region's home toward a node that
    #: dominates its access traffic (future-work policy; see
    #: repro/core/migration.py).
    enable_auto_migration: bool = False
    #: Run the dynamic race/invariant detector (repro.analysis.races)
    #: against this daemon.  Within a Cluster all daemons share one
    #: detector so cross-node races are visible.
    detect_races: bool = False


@dataclass
class DaemonStats:
    """Per-daemon operation counters used by benchmarks."""

    ops: Dict[str, int] = field(default_factory=dict)
    #: How each successful region location was resolved:
    #: "directory" | "cluster" | "map" | "walk".
    lookup_tiers: Dict[str, int] = field(default_factory=dict)
    lock_waits: int = 0
    lock_timeouts: int = 0

    def bump(self, op: str) -> None:
        self.ops[op] = self.ops.get(op, 0) + 1

    def tier(self, name: str) -> None:
        self.lookup_tiers[name] = self.lookup_tiers.get(name, 0) + 1


class _DaemonMapIO(MapIO):
    """Adapter giving the address map access to system-region pages
    through this daemon's ordinary lock/read/write path."""

    def __init__(self, daemon: "KhazanaDaemon") -> None:
        self.daemon = daemon
        self.page_size = DEFAULT_PAGE_SIZE

    def lock_page(self, page_addr: int, mode: LockMode) -> ProtocolGen:
        ctx = yield from self.daemon.op_lock(
            AddressRange(page_addr, self.page_size),
            mode,
            principal=SYSTEM_PRINCIPAL,
        )
        return ctx

    def read_page(self, ctx: Any, page_addr: int) -> ProtocolGen:
        data = yield from self.daemon.op_read(
            ctx, AddressRange(page_addr, self.page_size)
        )
        return data

    def write_page(self, ctx: Any, page_addr: int, data: bytes) -> ProtocolGen:
        yield from self.daemon.op_write(
            ctx, AddressRange(page_addr, self.page_size), data
        )

    def unlock_page(self, ctx: Any) -> ProtocolGen:
        yield from self.daemon.op_unlock(ctx)


class KhazanaDaemon:
    """One Khazana peer."""

    def __init__(
        self,
        node_id: int,
        network: SimNetwork,
        scheduler: EventScheduler,
        config: Optional[DaemonConfig] = None,
        probe: Optional["Any"] = None,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.scheduler = scheduler
        self.config = config if config is not None else DaemonConfig()

        from repro.analysis.races import NULL_PROBE, RaceDetector

        if probe is None and self.config.detect_races:
            # Standalone daemon with detection on: private detector.
            # Clusters pass one shared detector instead.
            probe = RaceDetector()
        self.probe = probe if probe is not None else NULL_PROBE
        if self.probe.enabled:
            self.probe.attach_daemon(self)

        self.rpc = RpcEndpoint(node_id, network, scheduler)
        self.runner = TaskRunner()
        self.stats = DaemonStats()

        self.lock_table = LockTable()
        if self.probe.enabled:
            self.lock_table.probe = self.probe
        self.region_directory = RegionDirectory(
            capacity=self.config.region_directory_capacity
        )
        self.page_directory = PageDirectory(node_id)
        self.journal = None
        if self.config.spill_dir is not None:
            import os

            from repro.storage.disk import FileBackedDiskStore
            from repro.storage.persistence import MetadataJournal

            node_dir = os.path.join(self.config.spill_dir, f"node{node_id}")
            disk = FileBackedDiskStore(node_dir, self.config.disk_bytes)
            self.journal = MetadataJournal(node_dir)
        else:
            disk = DiskStore(self.config.disk_bytes)
        self.storage = StorageHierarchy(
            memory=MemoryStore(self.config.memory_bytes),
            disk=disk,
            is_pinned=self.lock_table.page_locked,
            on_disk_evict=self._on_disk_evict,
        )
        self.space_pool = LocalSpacePool()
        self.homed_regions: Dict[int, RegionDescriptor] = {}
        self._cms: Dict[str, ConsistencyManager] = {}
        self._ctx_pages: Dict[int, Tuple[RegionDescriptor, List[int]]] = {}
        self._page_waiters: Dict[int, Deque[Future]] = {}
        self._hinted_rids: Set[int] = set()
        self._reply_cache: "OrderedDict[Tuple[int, int], Optional[Message]]" = (
            OrderedDict()
        )
        self._alive = True

        self.address_map = AddressMap(_DaemonMapIO(self))
        self.retry_queue = RetryQueue(scheduler, self.spawn)
        self.detector = FailureDetector(
            self.rpc, scheduler, peers=[]
        )
        self.detector.on_death(self._on_peer_death)
        self.replica_maintainer = ReplicaMaintainer(self)
        from repro.core.migration import MigrationAdvisor

        self.migration_advisor = MigrationAdvisor(self)
        self.cluster_role: Optional[ClusterManagerRole] = None
        if node_id == self.config.cluster_manager_node:
            self.cluster_role = ClusterManagerRole(self)

        self._wire_handlers()
        self._schedule_housekeeping()

    # ------------------------------------------------------------------
    # Lifecycle / bootstrap
    # ------------------------------------------------------------------

    def bootstrap_system_region(self, peers: List[int]) -> None:
        """Install the well-known address-map region (Section 3.1).

        Every daemon pins the system descriptor; the bootstrap node
        additionally homes the region and writes the initial root tree
        node.  Must run before any client operation.
        """
        attrs = RegionAttributes(
            consistency_level=ConsistencyLevel.RELEASE,
            min_replicas=1,
            page_size=DEFAULT_PAGE_SIZE,
            acl=AccessControlList.private(SYSTEM_PRINCIPAL),
        )
        desc = RegionDescriptor(
            range=SYSTEM_REGION,
            attrs=attrs,
            home_nodes=(self.config.bootstrap_node,),
            allocated=True,
            version=1,
        )
        self.region_directory.pin(desc)
        for peer in peers:
            self.detector.add_peer(peer)
        if self.node_id == self.config.bootstrap_node:
            self.homed_regions[SYSTEM_RID] = desc
            if not self.storage.contains(ROOT_PAGE):
                # A restarted bootstrap node already has the map on
                # disk; only a truly fresh deployment initialises it.
                root = initial_root_node()
                self.storage.write_through(
                    StoredPage(ROOT_PAGE, root.encode(DEFAULT_PAGE_SIZE),
                               dirty=False)
                )
            entry = self.page_directory.ensure(ROOT_PAGE, SYSTEM_RID, homed=True)
            entry.allocated = True
            entry.owner = self.node_id
            entry.record_sharer(self.node_id)
        self._recover_from_journal()
        if self.config.enable_failure_handling:
            self.detector.start()
            self.replica_maintainer.start()

    def _recover_from_journal(self) -> None:
        """Reload homed regions and page metadata after a restart."""
        if self.journal is None:
            return
        for desc in self.journal.load_regions():
            if desc.rid == SYSTEM_RID:
                continue
            self.region_directory.insert(desc)
            if self.node_id in desc.home_nodes:
                self.homed_regions[desc.rid] = desc
        for entry in self.journal.load_page_entries(self.node_id):
            if entry.rid == SYSTEM_RID:
                continue
            existing = self.page_directory.ensure(
                entry.address, entry.rid, homed=True
            )
            existing.allocated = entry.allocated
            existing.owner = entry.owner
            existing.record_sharer(self.node_id)
            existing.version = entry.version

    def checkpoint(self) -> None:
        """Flush homed-region metadata to the journal (no-op without
        a spill directory)."""
        if self.journal is None:
            return
        self.journal.save_regions(self.homed_regions)
        self.journal.save_page_entries(self.page_directory)

    def stop(self) -> None:
        """Shut the daemon down (simulating a crash or clean exit)."""
        self._alive = False
        self.detector.stop()
        self.replica_maintainer.stop()
        self.rpc.shutdown()

    @property
    def cluster_manager_node(self) -> Optional[int]:
        return self.config.cluster_manager_node

    # ------------------------------------------------------------------
    # Task plumbing
    # ------------------------------------------------------------------

    def spawn(self, task: ProtocolGen, label: str = "task") -> Future:
        """Run a protocol generator under this daemon's task runner."""
        return self.runner.spawn(task, label=f"n{self.node_id}:{label}")

    def spawn_handler(self, msg: Message, task: ProtocolGen,
                      label: str = "handler") -> None:
        """Run a message-handler task; failures NAK the request."""
        outcome = self.spawn(task, label=label)

        def on_done(future: Future) -> None:
            exc = future.exception()
            if exc is None:
                return
            if msg.request_id is None:
                return
            if isinstance(exc, KhazanaError):
                self.reply_error(msg, exc.code, str(exc))
            else:
                self.reply_error(msg, "khazana_error", repr(exc))

        outcome.add_callback(on_done)

    def sleep(self, seconds: float) -> Future:
        """A future resolving after ``seconds`` of virtual time."""
        future = Future(label=f"sleep:{seconds}")
        if seconds <= 0:
            future.set_result(None)
        else:
            self.scheduler.call_later(seconds, lambda: future.set_result(None))
        return future

    def _with_timeout(self, inner: Future, seconds: float,
                      error: KhazanaError) -> Future:
        """Wrap ``inner`` so it fails with ``error`` after ``seconds``."""
        wrapper = Future(label=f"timeout:{inner.label}")
        timer = self.scheduler.call_later(
            seconds,
            lambda: None if wrapper.done else wrapper.set_exception(error),
        )

        def forward(future: Future) -> None:
            timer.cancel()
            if wrapper.done:
                return
            exc = future.exception()
            if exc is not None:
                wrapper.set_exception(exc)
            else:
                wrapper.set_result(future.result())

        inner.add_callback(forward)
        return wrapper

    # ------------------------------------------------------------------
    # Region location (paper Section 3.2)
    # ------------------------------------------------------------------

    def locate_region(self, address: int,
                      skip_directory: bool = False) -> ProtocolGen:
        """Resolve the region descriptor covering ``address``.

        Tier 1: the local region directory.  Tier 2: the cluster
        manager's hint cache.  Tier 3: the address-map tree walk plus a
        descriptor fetch from a home node.  Tier 4 (failure fallback,
        Section 3.1): the cluster walk, asking every known peer.
        """
        if not skip_directory:
            cached = self.region_directory.find_covering(address)
            if cached is not None:
                self.stats.tier("directory")
                return cached

        if self.config.use_cluster_hints:
            found = yield from self._locate_via_cluster_manager(address)
            if found is not None:
                desc, via = found
                self.stats.tier(
                    "intercluster" if via == "intercluster" else "cluster"
                )
                self.region_directory.insert(desc)
                return desc

        desc = yield from self._locate_via_address_map(address)
        if desc is not None:
            self.stats.tier("map")
            self.region_directory.insert(desc)
            self._advertise_caching(desc)
            return desc

        desc = yield from self._cluster_walk(address)
        if desc is not None:
            self.stats.tier("walk")
            self.region_directory.insert(desc)
            return desc

        raise RegionNotFound(
            f"no reserved region covers address {address:#x}"
        )

    def _locate_via_cluster_manager(self, address: int) -> ProtocolGen:
        """Tiers 2-3: local cluster manager, then peer clusters.

        Returns ``(descriptor, via)`` or None; ``via`` distinguishes a
        local-cluster hint from an inter-cluster answer for the stats.
        """
        if self.cluster_role is not None:
            hint = self.cluster_role.lookup_hint(address)
            if hint is not None:
                return hint[0], "local"
            # This node IS the manager: ask peer-cluster managers.
            for manager in self.config.peer_managers:
                try:
                    reply = yield self.rpc.request(
                        manager, MessageType.CM_HINT_QUERY,
                        {"address": address, "no_forward": True},
                        policy=LOOKUP_POLICY,
                    )
                except (RpcTimeout, RemoteError):
                    continue
                desc = RegionDescriptor.from_wire(reply.payload["descriptor"])
                for node in reply.payload.get("nodes", []):
                    self.cluster_role.note_region_cached(desc, int(node))
                return desc, "intercluster"
            return None
        manager = self.config.cluster_manager_node
        try:
            reply = yield self.rpc.request(
                manager, MessageType.CM_HINT_QUERY, {"address": address},
                policy=LOOKUP_POLICY,
            )
        except (RpcTimeout, RemoteError):
            return None
        return (
            RegionDescriptor.from_wire(reply.payload["descriptor"]),
            reply.payload.get("via", "local"),
        )

    def _locate_via_address_map(self, address: int) -> ProtocolGen:
        try:
            entry = yield from self.address_map.lookup(address)
        except KhazanaError:
            return None
        from repro.core.address_map import EntryState

        if entry.state is not EntryState.RESERVED:
            return None
        for home in entry.home_nodes:
            if home == self.node_id:
                desc = self.homed_regions.get(entry.range.start)
                if desc is not None:
                    return desc
                continue
            try:
                reply = yield self.rpc.request(
                    home, MessageType.DESCRIPTOR_FETCH,
                    {"rid": entry.range.start},
                    policy=LOOKUP_POLICY,
                )
                return RegionDescriptor.from_wire(reply.payload["descriptor"])
            except (RpcTimeout, RemoteError):
                continue
        return None

    def _cluster_walk(self, address: int) -> ProtocolGen:
        """Ask every known peer whether it can name the region."""
        peers = [n for n in self.network.node_ids() if n != self.node_id]
        for peer in peers:
            try:
                reply = yield self.rpc.request(
                    peer, MessageType.REGION_LOOKUP, {"address": address},
                    policy=LOOKUP_POLICY,
                )
            except (RpcTimeout, RemoteError):
                continue
            return RegionDescriptor.from_wire(reply.payload["descriptor"])
        return None

    def _advertise_caching(self, desc: RegionDescriptor) -> None:
        """Lazily tell the cluster manager we now cache this region."""
        if not self.config.use_cluster_hints:
            return
        if desc.rid in self._hinted_rids:
            return
        self._hinted_rids.add(desc.rid)
        if self.cluster_role is not None:
            self.cluster_role.note_region_cached(desc, self.node_id)
            return
        self.rpc.send(
            Message(
                msg_type=MessageType.CM_HINT_UPDATE,
                src=self.node_id,
                dst=self.config.cluster_manager_node,
                payload={"descriptor": desc.to_wire()},
            )
        )

    # ------------------------------------------------------------------
    # Client operations (paper Section 2's API)
    # ------------------------------------------------------------------

    def op_reserve(
        self,
        size: int,
        attrs: RegionAttributes,
        principal: str = SYSTEM_PRINCIPAL,
    ) -> ProtocolGen:
        """Reserve a contiguous range of global address space."""
        self.stats.bump("reserve")
        if size <= 0:
            raise InvalidRange(f"reserve size must be positive, got {size}")
        page_size = attrs.page_size
        size = -(-size // page_size) * page_size

        carved = self.space_pool.carve(size, alignment=page_size)
        if carved is None:
            yield from self._refill_pool(max(size, DEFAULT_CHUNK_SIZE))
            carved = self.space_pool.carve(size, alignment=page_size)
            if carved is None:
                raise KhazanaError(
                    "space pool empty immediately after a chunk grant"
                )

        homes = self._choose_homes(attrs.min_replicas)
        desc = RegionDescriptor(
            range=carved, attrs=attrs, home_nodes=homes, allocated=False
        )
        yield from self.address_map.reserve(carved, homes)
        self.adopt_descriptor(desc)
        for home in homes:
            if home == self.node_id:
                continue
            self.rpc.send(
                Message(
                    msg_type=MessageType.DESCRIPTOR_UPDATE,
                    src=self.node_id,
                    dst=home,
                    payload={"descriptor": desc.to_wire()},
                )
            )
        self._advertise_caching(desc)
        return desc

    def _refill_pool(self, size: int) -> ProtocolGen:
        """Obtain a chunk of unreserved space (Section 3.1)."""
        manager = self.config.cluster_manager_node
        if self.cluster_role is not None:
            chunk = yield from self.cluster_role._delegate_chunk(
                self.node_id, max(size, DEFAULT_CHUNK_SIZE)
            )
            self.space_pool.add(chunk)
            return
        try:
            reply = yield self.rpc.request(
                manager, MessageType.SPACE_REQUEST, {"size": size},
                # Generous retransmission: losing address space grants
                # to a lossy link would fail reserves spuriously (3.5:
                # "tried ... until they succeed or timeout").
                policy=RetryPolicy(timeout=2.0, retries=6, backoff=1.5),
            )
        except RpcTimeout as error:
            raise KhazanaTimeout(
                f"cluster manager {manager} unreachable for a space "
                f"grant: {error}"
            ) from error
        except RemoteError as error:
            raise error_from_code(error.code, error.detail) from error
        chunk = AddressRange(
            int(reply.payload["start"]), int(reply.payload["length"])
        )
        self.space_pool.add(chunk)

    def _choose_homes(self, min_replicas: int) -> Tuple[int, ...]:
        """Pick home nodes: this node first, then alive peers."""
        homes: List[int] = [self.node_id]
        for peer in self.detector.alive_peers():
            if len(homes) >= min_replicas:
                break
            if peer != self.node_id:
                homes.append(peer)
        return tuple(homes)

    def op_unreserve(self, rid: int) -> ProtocolGen:
        """Release a region and reclaim its storage (release-type)."""
        self.stats.bump("unreserve")
        desc = yield from self.locate_region(rid)
        if desc.rid != rid:
            raise InvalidRange(
                f"{rid:#x} is inside region {desc.rid:#x}, not its start"
            )
        for ctx_id, (ctx_desc, _pages) in self._ctx_pages.items():
            if ctx_desc.rid == rid:
                raise RegionInUse(
                    f"region {rid:#x} has live lock context {ctx_id}"
                )
        # Address-map release and per-home teardown are release-type:
        # failures retry in the background, never surface (3.5).
        self.retry_queue.enqueue(
            lambda: self.address_map.release(desc.range),
            label=f"unreserve-map:{rid:#x}",
        )
        for home in desc.home_nodes:
            if home == self.node_id:
                self._teardown_region(rid)
                continue
            payload = {"rid": rid}
            self.retry_queue.enqueue(
                lambda home=home, payload=payload: self._request_once(
                    home, MessageType.REGION_UNRESERVE, payload
                ),
                label=f"unreserve:{rid:#x}@{home}",
            )
        self.region_directory.invalidate(rid)
        self.homed_regions.pop(rid, None)
        if rid in self._hinted_rids:
            self._hinted_rids.discard(rid)
            if self.cluster_role is not None:
                self.cluster_role.note_region_dropped(rid, self.node_id)
            else:
                self.rpc.send(
                    Message(
                        msg_type=MessageType.CM_HINT_UPDATE,
                        src=self.node_id,
                        dst=self.config.cluster_manager_node,
                        payload={"descriptor": desc.to_wire(), "dropped": True},
                    )
                )
        return None

    def _request_once(self, dst: int, msg_type: MessageType,
                      payload: Dict[str, Any]) -> ProtocolGen:
        yield self.rpc.request(dst, msg_type, payload, policy=LOOKUP_POLICY)

    def op_allocate(self, rid: int,
                    subrange: Optional[AddressRange] = None) -> ProtocolGen:
        """Allocate physical storage for a region (or part of one)."""
        self.stats.bump("allocate")
        desc = yield from self.locate_region(rid)
        target = subrange if subrange is not None else desc.range
        if not desc.range.contains_range(target):
            raise InvalidRange(f"{target} not inside region {desc.range}")
        pages = desc.pages_covering(target)
        for home in desc.home_nodes:
            if home == self.node_id:
                self._allocate_local(desc, pages)
                continue
            try:
                yield self.rpc.request(
                    home, MessageType.ALLOC_REQUEST,
                    {"rid": desc.rid, "start": target.start,
                     "length": target.length,
                     # The descriptor rides along: a newly chosen home
                     # may not have processed its DESCRIPTOR_UPDATE yet.
                     "descriptor": desc.to_wire()},
                    policy=RetryPolicy(timeout=2.0, retries=2, backoff=2.0),
                )
            except RpcTimeout as error:
                raise error_from_code(
                    "allocation_failed",
                    f"home {home} unreachable: {error}",
                ) from error
            except RemoteError as error:
                raise error_from_code(error.code, error.detail) from error
        if not desc.allocated:
            new_desc = desc.with_allocated(True)
            self.adopt_descriptor(new_desc)
            for home in desc.home_nodes:
                if home == self.node_id:
                    continue
                self.rpc.send(
                    Message(
                        msg_type=MessageType.DESCRIPTOR_UPDATE,
                        src=self.node_id,
                        dst=home,
                        payload={"descriptor": new_desc.to_wire()},
                    )
                )
            # Refresh the cluster manager's hint so later lookups from
            # other nodes see the allocated descriptor.
            self._hinted_rids.discard(new_desc.rid)
            self._advertise_caching(new_desc)
        return None

    def _allocate_local(self, desc: RegionDescriptor, pages: List[int]) -> None:
        primary = desc.primary_home
        for page_addr in pages:
            entry = self.page_directory.ensure(page_addr, desc.rid, homed=True)
            entry.allocated = True
            if entry.owner is None and self.node_id == primary:
                entry.owner = primary
                entry.record_sharer(primary)

    def op_free(self, rid: int, subrange: AddressRange) -> ProtocolGen:
        """Release physical storage for part of a region (release-type)."""
        self.stats.bump("free")
        desc = yield from self.locate_region(rid)
        if not desc.range.contains_range(subrange):
            raise InvalidRange(f"{subrange} not inside region {desc.range}")
        payload = {"rid": rid, "start": subrange.start,
                   "length": subrange.length}
        for home in desc.home_nodes:
            if home == self.node_id:
                self._free_local(desc, subrange)
                continue
            self.retry_queue.enqueue(
                lambda home=home: self._request_once(
                    home, MessageType.FREE_REQUEST, payload
                ),
                label=f"free:{rid:#x}@{home}",
            )
        return None

    def _free_local(self, desc: RegionDescriptor, subrange: AddressRange) -> None:
        for page_addr in desc.pages_covering(subrange):
            self.storage.drop(page_addr)
            self.page_directory.drop(page_addr)

    def op_lock(
        self,
        target: AddressRange,
        mode: LockMode,
        principal: str = SYSTEM_PRINCIPAL,
    ) -> ProtocolGen:
        """Lock part of a region; returns a :class:`LockContext`."""
        self.stats.bump("lock")
        desc = yield from self.locate_region(target.start)
        if not desc.range.contains_range(target):
            raise InvalidRange(
                f"lock range {target} crosses the boundary of region "
                f"{desc.range}; lock each region separately"
            )
        if not desc.allocated:
            # The cached descriptor may predate allocation; confirm
            # with a home node before failing (stale hints are normal,
            # Section 3.2).
            desc = yield from self._refresh_descriptor(desc)
            if not desc.allocated:
                raise NotAllocated(
                    f"region {desc.rid:#x} has no allocated storage"
                )
        needed = Right.WRITE if mode.is_write else Right.READ
        if not desc.attrs.acl.allows(principal, needed):
            raise AccessDenied(
                f"principal {principal!r} lacks {needed} on region "
                f"{desc.rid:#x}"
            )

        ctx = LockContext(
            rid=desc.rid, range=target, mode=mode,
            node_id=self.node_id, principal=principal,
        )
        if self.probe.enabled:
            self.probe.region_seen(self.node_id, desc)
        pages = desc.pages_covering(target)
        cm = self.consistency_manager(desc.attrs.protocol)
        acquired: List[int] = []

        def note_acquired(page_addr: int) -> None:
            # Pin the page the moment its acquisition is final so a
            # later failure in the same range rolls back exactly the
            # pages we hold.
            self.lock_table.register(ctx, [page_addr])
            acquired.append(page_addr)

        try:
            try:
                yield from cm.acquire_many(desc, pages, mode, ctx,
                                           note_acquired)
            except RemoteError as error:
                raise error_from_code(error.code, error.detail) from error
        except BaseException:
            # Roll back partial acquisition so no page stays pinned.
            if acquired:
                self.lock_table.release(ctx, acquired)
                for page_addr in acquired:
                    self._wake_page(page_addr, cm)
            raise
        self._ctx_pages[ctx.ctx_id] = (desc, pages)
        return ctx

    def _refresh_descriptor(self, desc: RegionDescriptor) -> ProtocolGen:
        """Fetch the authoritative descriptor from a home node."""
        for home in desc.home_nodes:
            if home == self.node_id:
                return self.homed_regions.get(desc.rid, desc)
            try:
                reply = yield self.rpc.request(
                    home, MessageType.DESCRIPTOR_FETCH, {"rid": desc.rid},
                    policy=LOOKUP_POLICY,
                )
            except (RpcTimeout, RemoteError):
                continue
            fresh = RegionDescriptor.from_wire(reply.payload["descriptor"])
            self.adopt_descriptor(fresh)
            return fresh
        return desc

    def _wait_local_conflicts(self, page_addr: int, mode: LockMode) -> ProtocolGen:
        """Block until no live local context conflicts with ``mode``."""
        deadline_exc = LockDenied(
            f"timed out waiting {self.config.lock_wait_timeout}s for a "
            f"conflicting local lock on page {page_addr:#x}"
        )
        while self.lock_table.conflicts(page_addr, mode):
            self.stats.lock_waits += 1
            gate = Future(label=f"lockwait:{page_addr:#x}")
            self._page_waiters.setdefault(page_addr, deque()).append(gate)
            try:
                yield self._with_timeout(
                    gate, self.config.lock_wait_timeout, deadline_exc
                )
            except LockDenied:
                self.stats.lock_timeouts += 1
                raise

    def op_unlock(self, ctx: LockContext) -> ProtocolGen:
        """Release a lock context.

        The *network* side is release-type and never raises (push
        failures go to the background retry queue, paper 3.5) — but
        presenting an already-unlocked or foreign context is a client
        bug, surfaced as ``InvalidLockContext`` like any other misuse
        of a closed context.
        """
        self.stats.bump("unlock")
        mapping = self._ctx_pages.pop(ctx.ctx_id, None)
        if mapping is None:
            ctx.check_open()   # raises InvalidLockContext when closed
            raise InvalidLockContext(
                f"lock context {ctx.ctx_id} unknown to node {self.node_id}"
            )
        desc, pages = mapping
        cm = self.consistency_manager(desc.attrs.protocol)
        try:
            yield from cm.release_many(desc, pages, ctx)
        except Exception:
            # Backstop: release_many already routes per-page failures
            # to the retry queue, but unlock itself must never raise.
            logger.warning(
                "node %d: release_many for context %d failed; retrying "
                "per page in the background", self.node_id, ctx.ctx_id,
                exc_info=True,
            )
            for page_addr in pages:
                self.retry_queue.enqueue(
                    lambda cm=cm, page_addr=page_addr: cm.release(
                        desc, page_addr, ctx
                    ),
                    label=f"cm-release:{page_addr:#x}",
                )
        self.lock_table.release(ctx, pages)
        for page_addr in pages:
            self._wake_page(page_addr, cm)
        return None

    def _wake_page(self, page_addr: int, cm: ConsistencyManager) -> None:
        cm.notify_unlocked(page_addr)
        waiters = self._page_waiters.pop(page_addr, None)
        if waiters:
            for gate in waiters:
                if not gate.done:
                    gate.set_result(None)

    def op_read(self, ctx: LockContext, target: AddressRange) -> ProtocolGen:
        """Read bytes under a lock context."""
        self.stats.bump("read")
        ctx.check_covers(target, for_write=False)
        desc, _pages = self._require_ctx(ctx)
        if self.probe.enabled:
            self.probe.page_read(self.node_id, ctx,
                                 desc.pages_covering(target),
                                 desc.attrs.protocol)
        chunks: List[bytes] = []
        for page_addr in desc.pages_covering(target):
            data = yield from self.local_page_bytes(desc, page_addr)
            if data is None:
                raise KhazanaError(
                    f"page {page_addr:#x} vanished under lock context "
                    f"{ctx.ctx_id}"
                )
            page_range = AddressRange(page_addr, desc.page_size)
            overlap = page_range.intersection(target)
            assert overlap is not None
            lo = overlap.start - page_addr
            chunks.append(data[lo : lo + overlap.length])
        return b"".join(chunks)

    def op_write(self, ctx: LockContext, target: AddressRange,
                 data: bytes) -> ProtocolGen:
        """Write bytes under a lock context."""
        self.stats.bump("write")
        ctx.check_covers(target, for_write=True)
        if len(data) != target.length:
            raise InvalidRange(
                f"write of {len(data)} bytes into range of {target.length}"
            )
        desc, _pages = self._require_ctx(ctx)
        if self.probe.enabled:
            self.probe.page_write(self.node_id, ctx,
                                  desc.pages_covering(target),
                                  desc.attrs.protocol)
        for page_addr in desc.pages_covering(target):
            page_range = AddressRange(page_addr, desc.page_size)
            overlap = page_range.intersection(target)
            assert overlap is not None
            lo = overlap.start - page_addr
            src_lo = overlap.start - target.start
            if overlap.length == desc.page_size:
                # Full-page write: every byte is replaced, so skip the
                # read-modify-write (which may fetch the stale page
                # over the network just to discard it).
                updated = bytes(data[src_lo : src_lo + overlap.length])
            else:
                current = yield from self.local_page_bytes(desc, page_addr)
                if current is None:
                    current = b"\x00" * desc.page_size
                updated = (
                    current[:lo]
                    + data[src_lo : src_lo + overlap.length]
                    + current[lo + overlap.length :]
                )
            yield from self.store_local_page(desc, page_addr, updated,
                                             dirty=True)
            ctx.dirty_pages.add(page_addr)
        return None

    def _require_ctx(self, ctx: LockContext) -> Tuple[RegionDescriptor, List[int]]:
        mapping = self._ctx_pages.get(ctx.ctx_id)
        if mapping is None:
            ctx.check_open()   # raises if closed
            raise KhazanaError(
                f"lock context {ctx.ctx_id} unknown to node {self.node_id}"
            )
        return mapping

    def op_resize_region(self, rid: int, new_size: int) -> ProtocolGen:
        """Grow or shrink a region in place.

        Implements Section 4.1's alternative layout need ("resize the
        region whenever the file size changes").  Growth claims the
        free address space directly after the region (raising
        ``AddressSpaceExhausted`` when it is taken); shrinking frees
        the tail pages.  Returns the new descriptor.
        """
        self.stats.bump("resize")
        desc = yield from self.locate_region(rid)
        if desc.rid != rid:
            raise InvalidRange(
                f"{rid:#x} is inside region {desc.rid:#x}, not its start"
            )
        page_size = desc.attrs.page_size
        if new_size <= 0:
            raise InvalidRange(f"size must be positive, got {new_size}")
        new_size = -(-new_size // page_size) * page_size
        if new_size == desc.range.length:
            return desc
        for ctx_id, (ctx_desc, _pages) in self._ctx_pages.items():
            if ctx_desc.rid == rid:
                raise RegionInUse(
                    f"region {rid:#x} has live lock context {ctx_id}"
                )

        old_range = desc.range
        new_range = AddressRange(old_range.start, new_size)
        if new_size > old_range.length:
            yield from self.address_map.extend(
                old_range, new_size, requester=self.node_id
            )
            # The growth may have consumed part of this node's own
            # delegated pool; stop offering those addresses.
            self.space_pool.remove_overlap(
                AddressRange.from_bounds(old_range.end, new_range.end)
            )
        else:
            tail = AddressRange.from_bounds(new_range.end, old_range.end)
            yield from self.address_map.release(tail)

        new_desc = desc.with_range(new_range)
        self.adopt_descriptor(new_desc)

        if new_size > old_range.length:
            grown = AddressRange.from_bounds(old_range.end, new_range.end)
            yield from self.op_allocate(rid, grown)
        else:
            tail = AddressRange.from_bounds(new_range.end, old_range.end)
            for home in desc.home_nodes:
                if home == self.node_id:
                    self._free_local(desc, tail)
                    continue
                payload = {"rid": rid, "start": tail.start,
                           "length": tail.length}
                self.retry_queue.enqueue(
                    lambda home=home, payload=payload: self._request_once(
                        home, MessageType.FREE_REQUEST, payload
                    ),
                    label=f"shrink:{rid:#x}@{home}",
                )
        for home in new_desc.home_nodes:
            if home == self.node_id:
                continue
            self.rpc.send(
                Message(
                    msg_type=MessageType.DESCRIPTOR_UPDATE,
                    src=self.node_id,
                    dst=home,
                    payload={"descriptor": new_desc.to_wire()},
                )
            )
        self._hinted_rids.discard(rid)
        self._advertise_caching(new_desc)
        final = self.homed_regions.get(rid, new_desc)
        return final

    def op_migrate_region(self, rid: int, new_primary: int) -> ProtocolGen:
        """Move a region's primary home to ``new_primary``.

        The actual transfer runs at the current primary (it holds the
        authoritative pages and directory); other nodes forward the
        request there.  Returns the new descriptor.
        """
        self.stats.bump("migrate")
        desc = yield from self.locate_region(rid)
        if desc.rid != rid:
            raise InvalidRange(
                f"{rid:#x} is inside region {desc.rid:#x}, not its start"
            )
        if desc.primary_home == new_primary:
            return desc
        if desc.primary_home == self.node_id:
            new_desc = yield from self.migrate_region_local(desc, new_primary)
            return new_desc
        try:
            reply = yield self.rpc.request(
                desc.primary_home, MessageType.REGION_MIGRATE,
                {"rid": rid, "new_primary": new_primary},
                policy=RetryPolicy(timeout=5.0, retries=1, backoff=2.0),
            )
        except RpcTimeout as error:
            raise NodeUnavailable(
                f"primary home {desc.primary_home} unreachable: {error}"
            ) from error
        except RemoteError as error:
            raise error_from_code(error.code, error.detail) from error
        new_desc = RegionDescriptor.from_wire(reply.payload["descriptor"])
        self.adopt_descriptor(new_desc)
        return new_desc

    def migrate_region_local(self, desc: RegionDescriptor,
                             new_primary: int) -> ProtocolGen:
        """Primary-side migration: push pages, republish the descriptor."""
        new_homes = (new_primary,) + tuple(
            h for h in desc.home_nodes if h != new_primary
        )
        # Keep the home count stable: with min_replicas satisfied, the
        # old primary drops off the end; otherwise it stays as a
        # secondary replica.
        keep = max(desc.attrs.min_replicas, 1)
        new_homes = new_homes[:max(keep, 1)]
        new_desc = desc.with_homes(new_homes)
        if new_primary not in desc.home_nodes:
            # The pushes carry the *new* descriptor, so the receiver
            # has adopted its home role by the time they are acked.
            yield from self.push_region_to(new_desc, new_primary)
        self.adopt_descriptor(new_desc)
        for node in set(new_homes) | set(desc.home_nodes):
            if node == self.node_id:
                continue
            self.rpc.send(
                Message(
                    msg_type=MessageType.DESCRIPTOR_UPDATE,
                    src=self.node_id,
                    dst=node,
                    payload={"descriptor": new_desc.to_wire()},
                )
            )
        manager = self.cluster_manager_node
        if manager is not None and manager != self.node_id:
            self.rpc.send(
                Message(
                    msg_type=MessageType.CM_HINT_UPDATE,
                    src=self.node_id,
                    dst=manager,
                    payload={"descriptor": new_desc.to_wire()},
                )
            )
        elif self.cluster_role is not None:
            self.cluster_role.note_region_cached(new_desc, new_primary)
        self.retry_queue.enqueue(
            lambda: self.address_map.update_homes(new_desc.range, new_homes),
            label=f"map-migrate:{desc.rid:#x}",
        )
        self.migration_advisor.forget_region(desc.rid)
        return new_desc

    def push_region_to(self, desc: RegionDescriptor, target: int) -> ProtocolGen:
        """Copy every allocated page of a homed region to ``target``."""
        from repro.net.tasks import gather_settled

        pushes = []
        for entry in self.page_directory.entries_for_region(desc.rid):
            if not entry.allocated:
                continue
            data = yield from self.local_page_bytes(desc, entry.address)
            if data is None:
                # Allocated but never written: the page is still
                # logically all-zeroes; hand the target a real page so
                # its 'allocated' marker transfers.
                data = b"\x00" * desc.page_size
            pushes.append(
                self.rpc.request(
                    target,
                    MessageType.REPLICA_CREATE,
                    {"rid": desc.rid, "page": entry.address, "data": data,
                     "descriptor": desc.to_wire(),
                     # Hand over the coherence directory too, so the
                     # receiving home knows the true owner and copyset.
                     "owner": entry.owner,
                     "sharers": sorted(entry.sharers)},
                    policy=RetryPolicy(timeout=2.0, retries=1, backoff=2.0),
                )
            )
        if pushes:
            outcomes = yield gather_settled(pushes, label="migrate-push")
            failures = [exc for ok, exc in outcomes if not ok]
            if failures:
                raise NodeUnavailable(
                    f"could not push region {desc.rid:#x} to node "
                    f"{target}: {failures[0]}"
                )

    def op_get_attributes(self, rid: int) -> ProtocolGen:
        """Fetch a region's current attributes (get-attributes op)."""
        self.stats.bump("get_attrs")
        desc = yield from self.locate_region(rid, skip_directory=True)
        return desc.attrs

    def op_set_attributes(self, rid: int, attrs: RegionAttributes,
                          principal: str = SYSTEM_PRINCIPAL) -> ProtocolGen:
        """Update a region's attributes (set-attributes op)."""
        self.stats.bump("set_attrs")
        desc = yield from self.locate_region(rid)
        if not desc.attrs.acl.allows(principal, Right.ADMIN):
            raise AccessDenied(
                f"principal {principal!r} lacks admin rights on region "
                f"{rid:#x}"
            )
        if attrs.page_size != desc.attrs.page_size:
            raise InvalidRange(
                "page size is fixed at reserve time and cannot change"
            )
        new_desc = desc.with_attrs(attrs)
        self.adopt_descriptor(new_desc)
        for home in new_desc.home_nodes:
            if home == self.node_id:
                continue
            self.rpc.send(
                Message(
                    msg_type=MessageType.DESCRIPTOR_UPDATE,
                    src=self.node_id,
                    dst=home,
                    payload={"descriptor": new_desc.to_wire()},
                )
            )
        return new_desc

    # ------------------------------------------------------------------
    # Page-level services used by consistency managers
    # ------------------------------------------------------------------

    def consistency_manager(self, protocol: str) -> ConsistencyManager:
        cm = self._cms.get(protocol)
        if cm is None:
            cm = create_manager(protocol, self)
            self._cms[protocol] = cm
        return cm

    def local_page_bytes(self, desc: RegionDescriptor,
                         page_addr: int) -> ProtocolGen:
        """Bytes of a locally stored page, charging simulated disk time.

        At a home node, an allocated-but-never-written page zero-fills
        on demand (backing store is materialised lazily).
        Returns None when the page is simply not here.
        """
        page, cost = self.storage.load(page_addr)
        if cost > 0:
            yield self.sleep(cost)
        if page is not None:
            return page.data
        if self.node_id in desc.home_nodes:
            entry = self.page_directory.get(page_addr)
            implicitly_allocated = desc.rid == SYSTEM_RID
            if implicitly_allocated or (entry is not None and entry.allocated):
                data = b"\x00" * desc.page_size
                yield from self.store_local_page(desc, page_addr, data,
                                                 dirty=False)
                entry = self.page_directory.ensure(
                    page_addr, desc.rid, homed=True
                )
                entry.allocated = True
                return data
        return None

    def store_local_page(self, desc: RegionDescriptor, page_addr: int,
                         data: bytes, dirty: bool) -> ProtocolGen:
        """Cache page bytes locally, charging victimization I/O time.

        Address-map pages are written through to disk at their home:
        the paper (3.5) requires the metadata needed to access a region
        to be at least as available as the region itself, so a crashed
        bootstrap node must recover the map from its persistent store.
        """
        page = StoredPage(page_addr, data, dirty=dirty)
        is_home = self.node_id in desc.home_nodes
        durable = self.journal is not None
        if is_home and (desc.rid == SYSTEM_RID or durable):
            # Home copies of the address map are always persistent;
            # on durable deployments every homed page writes through,
            # so a restarted daemon recovers its regions' contents.
            cost = self.storage.write_through(page)
        else:
            cost = self.storage.store(page)
        if cost > 0:
            yield self.sleep(cost)
        entry = self.page_directory.ensure(
            page_addr, desc.rid, homed=self.node_id in desc.home_nodes
        )
        entry.record_sharer(self.node_id)

    def drop_local_page(self, page_addr: int) -> None:
        self.storage.drop(page_addr)

    def adopt_descriptor(self, desc: RegionDescriptor) -> None:
        """Install a (possibly newer) descriptor locally."""
        if self.probe.enabled:
            self.probe.region_seen(self.node_id, desc)
        self.region_directory.insert(desc)
        if self.node_id in desc.home_nodes:
            known = self.homed_regions.get(desc.rid)
            if known is None or desc.version >= known.version:
                self.homed_regions[desc.rid] = desc
        else:
            was_home = self.homed_regions.pop(desc.rid, None) is not None
            if was_home:
                # Demoted (e.g. after a migration): our page entries
                # become hints.  Owner/copyset values stay — the new
                # primary received the same directory state with the
                # pushed pages, so coherence authority moved intact.
                for entry in self.page_directory.entries_for_region(desc.rid):
                    entry.homed = False
                self.migration_advisor.forget_region(desc.rid)

    def _on_disk_evict(self, page: StoredPage) -> bool:
        """Consistency hook before a page leaves this node (3.4)."""
        entry = self.page_directory.get(page.address)
        if entry is None:
            return not page.dirty   # unknown dirty page: refuse to lose it
        if entry.homed:
            return False   # never evict authoritative home copies
        desc = self.region_directory.find_covering(page.address)
        if desc is None:
            return not page.dirty
        cm = self.consistency_manager(desc.attrs.protocol)
        self.spawn(
            cm.evict(desc, page.address, page.data, page.dirty),
            label=f"evict:{page.address:#x}",
        )
        self.page_directory.drop(page.address)
        cm.page_state.pop(page.address, None)
        return True

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def _wire_handlers(self) -> None:
        on = self.rpc.on
        on(MessageType.REGION_LOOKUP, self._dedup(self._h_region_lookup))
        on(MessageType.DESCRIPTOR_FETCH, self._dedup(self._h_descriptor_fetch))
        on(MessageType.DESCRIPTOR_UPDATE, self._h_descriptor_update)
        on(MessageType.REGION_UNRESERVE, self._dedup(self._h_region_unreserve))
        on(MessageType.ALLOC_REQUEST, self._dedup(self._h_alloc_request))
        on(MessageType.FREE_REQUEST, self._dedup(self._h_free_request))
        on(MessageType.LOCK_REQUEST, self._dedup(self._cm_dispatch("handle_lock_request")))
        on(MessageType.PAGE_FETCH, self._dedup(self._cm_dispatch("handle_page_fetch")))
        on(MessageType.INVALIDATE, self._dedup(self._cm_dispatch("handle_invalidate")))
        on(MessageType.UPDATE_PUSH, self._dedup(self._cm_dispatch("handle_update")))
        on(MessageType.PAGE_FETCH_BATCH,
           self._dedup(self._cm_dispatch("handle_page_fetch_batch")))
        on(MessageType.TOKEN_ACQUIRE_BATCH,
           self._dedup(self._cm_dispatch("handle_lock_request_batch")))
        on(MessageType.UPDATE_PUSH_BATCH,
           self._dedup(self._cm_dispatch("handle_update_batch")))
        on(MessageType.SHARER_REGISTER, self._cm_dispatch("handle_sharer_register"))
        on(MessageType.SHARER_UNREGISTER, self._cm_dispatch("handle_sharer_unregister"))
        on(MessageType.REPLICA_CREATE, self._dedup(self._h_replica_create))
        on(MessageType.REGION_MIGRATE, self._dedup(self._h_region_migrate))
        if self.cluster_role is not None:
            on(MessageType.SPACE_REQUEST,
               self._dedup(self.cluster_role.handle_space_request))
            on(MessageType.CM_HINT_QUERY,
               self._dedup(self.cluster_role.handle_hint_query))
            on(MessageType.CM_HINT_UPDATE, self.cluster_role.handle_hint_update)
            on(MessageType.FREE_SPACE_REPORT,
               self.cluster_role.handle_free_space_report)

    def _dedup(self, handler):
        """Wrap a request handler with duplicate suppression.

        Retransmitted requests must not start a second transaction:
        in-progress duplicates are dropped (the eventual reply matches
        either transmission); completed ones get the cached reply.
        """

        def wrapped(msg: Message) -> None:
            if msg.request_id is None:
                handler(msg)
                return
            key = (msg.src, msg.request_id)
            if key in self._reply_cache:
                cached = self._reply_cache[key]
                if cached is not None:
                    self.rpc.send(cached)
                return   # in progress or already answered
            self._reply_cache[key] = None
            while len(self._reply_cache) > 2048:
                self._reply_cache.popitem(last=False)
            handler(msg)

        return wrapped

    def reply_request(self, msg: Message, msg_type: MessageType,
                      payload: Optional[Dict[str, Any]] = None) -> None:
        """Send (and cache) the reply to a request."""
        reply = msg.reply(msg_type, payload or {})
        if msg.request_id is not None:
            self._reply_cache[(msg.src, msg.request_id)] = reply
        self.rpc.send(reply)

    def reply_error(self, msg: Message, code: str, detail: str = "") -> None:
        reply = msg.error_reply(code, detail)
        if msg.request_id is not None:
            self._reply_cache[(msg.src, msg.request_id)] = reply
        self.rpc.send(reply)

    def _cm_dispatch(self, method_name: str):
        """Route a consistency message to the region's CM."""

        def handler(msg: Message) -> None:
            rid = msg.payload.get("rid")
            if rid is not None and rid in self.homed_regions:
                # Feed the load-aware migration policy: consistency
                # traffic reveals who actually uses this region.
                self.migration_advisor.note_access(rid, msg.src)
            desc = self.homed_regions.get(rid)
            if desc is None:
                desc = self.region_directory.get(rid)
            if desc is None and "descriptor" in msg.payload:
                desc = RegionDescriptor.from_wire(msg.payload["descriptor"])
                self.adopt_descriptor(desc)
            if desc is None:
                if msg.request_id is not None:
                    self.reply_error(msg, "region_not_found",
                                     f"node {self.node_id} does not know "
                                     f"region {rid:#x}")
                return
            cm = self.consistency_manager(desc.attrs.protocol)
            getattr(cm, method_name)(desc, msg)

        return handler

    def _h_region_lookup(self, msg: Message) -> None:
        address = int(msg.payload["address"])
        desc = self.homed_regions.get(address)
        if desc is None:
            for candidate in self.homed_regions.values():
                if candidate.range.contains(address):
                    desc = candidate
                    break
        if desc is None:
            cached = self.region_directory.find_covering(address)
            if cached is not None and cached.rid != SYSTEM_RID:
                desc = cached
        if desc is None:
            self.reply_error(msg, "region_not_found",
                             f"node {self.node_id} cannot resolve "
                             f"{address:#x}")
            return
        self.reply_request(
            msg, MessageType.REGION_LOOKUP_REPLY,
            {"descriptor": desc.to_wire()},
        )

    def _h_descriptor_fetch(self, msg: Message) -> None:
        rid = int(msg.payload["rid"])
        desc = self.homed_regions.get(rid)
        if desc is None:
            self.reply_error(msg, "not_responsible",
                             f"node {self.node_id} is not a home of region "
                             f"{rid:#x}")
            return
        self.reply_request(
            msg, MessageType.DESCRIPTOR_REPLY, {"descriptor": desc.to_wire()}
        )

    def _h_descriptor_update(self, msg: Message) -> None:
        desc = RegionDescriptor.from_wire(msg.payload["descriptor"])
        self.adopt_descriptor(desc)

    def _h_region_unreserve(self, msg: Message) -> None:
        rid = int(msg.payload["rid"])
        self._teardown_region(rid)
        self.reply_request(msg, MessageType.FREE_REPLY, {})

    def _teardown_region(self, rid: int) -> None:
        for entry in self.page_directory.entries_for_region(rid):
            self.storage.drop(entry.address)
        self.page_directory.drop_region(rid)
        self.homed_regions.pop(rid, None)
        self.region_directory.invalidate(rid)

    def _h_alloc_request(self, msg: Message) -> None:
        rid = int(msg.payload["rid"])
        desc = self.homed_regions.get(rid)
        if desc is None and "descriptor" in msg.payload:
            self.adopt_descriptor(
                RegionDescriptor.from_wire(msg.payload["descriptor"])
            )
            desc = self.homed_regions.get(rid)
        if desc is None:
            self.reply_error(msg, "not_responsible",
                             f"node {self.node_id} is not a home of region "
                             f"{rid:#x}")
            return
        target = AddressRange(int(msg.payload["start"]),
                              int(msg.payload["length"]))
        self._allocate_local(desc, desc.pages_covering(target))
        if not desc.allocated:
            self.adopt_descriptor(desc.with_allocated(True))
        self.reply_request(msg, MessageType.ALLOC_REPLY, {})

    def _h_free_request(self, msg: Message) -> None:
        rid = int(msg.payload["rid"])
        desc = self.homed_regions.get(rid)
        if desc is not None:
            target = AddressRange(int(msg.payload["start"]),
                                  int(msg.payload["length"]))
            self._free_local(desc, target)
        self.reply_request(msg, MessageType.FREE_REPLY, {})

    def _h_region_migrate(self, msg: Message) -> None:
        rid = int(msg.payload["rid"])
        new_primary = int(msg.payload["new_primary"])
        desc = self.homed_regions.get(rid)
        if desc is None or desc.primary_home != self.node_id:
            self.reply_error(msg, "not_responsible",
                             f"node {self.node_id} is not the primary home "
                             f"of region {rid:#x}")
            return

        def serve() -> ProtocolGen:
            new_desc = yield from self.migrate_region_local(desc, new_primary)
            self.reply_request(
                msg, MessageType.DESCRIPTOR_REPLY,
                {"descriptor": new_desc.to_wire()},
            )

        self.spawn_handler(msg, serve(), label="migrate")

    def _h_replica_create(self, msg: Message) -> None:
        desc = RegionDescriptor.from_wire(msg.payload["descriptor"])
        self.adopt_descriptor(desc)
        page_addr = int(msg.payload["page"])
        data = msg.payload["data"]

        def store() -> ProtocolGen:
            yield from self.store_local_page(desc, page_addr, data,
                                             dirty=False)
            entry = self.page_directory.ensure(page_addr, desc.rid,
                                               homed=True)
            entry.allocated = True
            if msg.payload.get("owner") is not None:
                entry.owner = int(msg.payload["owner"])
            for sharer in msg.payload.get("sharers", ()):
                entry.record_sharer(int(sharer))
            self.reply_request(msg, MessageType.REPLICA_ACK, {})

        self.spawn_handler(msg, store(), label="replica-create")

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def _schedule_housekeeping(self) -> None:
        if not self._alive:
            return
        self.scheduler.call_later(
            self.config.housekeeping_period, self._housekeeping
        )

    def _housekeeping(self) -> None:
        if not self._alive:
            return
        for cm in self._cms.values():
            cm.tick()
        if self.config.enable_auto_migration:
            self.migration_advisor.tick()
        self.checkpoint()
        if (
            self.cluster_role is None
            and self.config.use_cluster_hints
            and self.space_pool.total_free() > 0
        ):
            self.rpc.send(
                Message(
                    msg_type=MessageType.FREE_SPACE_REPORT,
                    src=self.node_id,
                    dst=self.config.cluster_manager_node,
                    payload={
                        "total_free": self.space_pool.total_free(),
                        "max_contiguous": self.space_pool.max_contiguous(),
                    },
                )
            )
        self._schedule_housekeeping()

    def _on_peer_death(self, node_id: int) -> None:
        for cm in self._cms.values():
            cm.on_node_failure(node_id)
        if self.cluster_role is not None:
            self.cluster_role.forget_node(node_id)
