"""The Khazana daemon: one peer of the distributed service.

"The Khazana service is implemented by a dynamically changing set of
cooperating daemon processes running on some (not necessarily all)
machines of a potentially wide-area network.  Note that there is no
notion of a 'server' in a Khazana system — all Khazana nodes are peers
that cooperate to provide the illusion of a unified resource."
(paper Section 2)

:class:`KhazanaDaemon` is the client-facing facade over the layered
node built by :class:`~repro.core.kernel.NodeKernel`:

- :class:`~repro.core.location.LocationService` — the region-location
  chain of Section 3.2 (directory → cluster manager → address-map
  walk → cluster walk),
- :class:`~repro.core.space.SpaceService` — region lifecycle and
  address-space management (Section 3.1),
- :class:`~repro.core.dataplane.DataPlane` — lock/read/write and
  local page residency (Sections 3.3-3.4),
- :class:`~repro.core.router.MessageRouter` — wire dispatch through
  an interceptor chain (dedup, latency stats, trace, probes).

Consistency managers see the node only through the
:class:`~repro.core.cmhost.CMHost` protocol the kernel implements.
Client operations are implemented as protocol generators (see
:mod:`repro.net.tasks`); this facade simply routes each paper
Section 2 operation to the owning service.
"""

from __future__ import annotations

import logging

from typing import Any, Optional

from repro.core.address_map import SYSTEM_RID
from repro.core.addressing import AddressRange
from repro.core.attributes import RegionAttributes
from repro.core.kernel import (
    DaemonConfig,
    DaemonStats,
    NodeKernel,
    OpLatency,
    ProtocolGen,
)
from repro.core.location import LOOKUP_POLICY
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor
from repro.core.security import SYSTEM_PRINCIPAL

logger = logging.getLogger(__name__)

__all__ = [
    "DaemonConfig",
    "DaemonStats",
    "KhazanaDaemon",
    "LOOKUP_POLICY",
    "NodeKernel",
    "OpLatency",
    "ProtocolGen",
    "SYSTEM_RID",
]


class KhazanaDaemon(NodeKernel):
    """One Khazana peer: the paper's client API over the node services."""

    # --- Region location (paper Section 3.2) ---------------------------

    def locate_region(self, address: int,
                      skip_directory: bool = False) -> ProtocolGen:
        return self.location.locate_region(address,
                                           skip_directory=skip_directory)

    # --- Region lifecycle (paper Section 2's API) ----------------------

    def op_reserve(
        self,
        size: int,
        attrs: RegionAttributes,
        principal: str = SYSTEM_PRINCIPAL,
    ) -> ProtocolGen:
        return self.space.op_reserve(size, attrs, principal=principal)

    def op_unreserve(self, rid: int) -> ProtocolGen:
        return self.space.op_unreserve(rid)

    def op_allocate(self, rid: int,
                    subrange: Optional[AddressRange] = None) -> ProtocolGen:
        return self.space.op_allocate(rid, subrange)

    def op_free(self, rid: int, subrange: AddressRange) -> ProtocolGen:
        return self.space.op_free(rid, subrange)

    def op_resize_region(self, rid: int, new_size: int) -> ProtocolGen:
        return self.space.op_resize_region(rid, new_size)

    def op_migrate_region(self, rid: int, new_primary: int) -> ProtocolGen:
        return self.space.op_migrate_region(rid, new_primary)

    def migrate_region_local(self, desc: RegionDescriptor,
                             new_primary: int) -> ProtocolGen:
        return self.space.migrate_region_local(desc, new_primary)

    def push_region_to(self, desc: RegionDescriptor,
                       target: int) -> ProtocolGen:
        return self.space.push_region_to(desc, target)

    def op_get_attributes(self, rid: int) -> ProtocolGen:
        return self.space.op_get_attributes(rid)

    def op_set_attributes(self, rid: int, attrs: RegionAttributes,
                          principal: str = SYSTEM_PRINCIPAL) -> ProtocolGen:
        return self.space.op_set_attributes(rid, attrs, principal=principal)

    # --- Data plane (lock / read / write) ------------------------------

    def op_lock(
        self,
        target: AddressRange,
        mode: LockMode,
        principal: str = SYSTEM_PRINCIPAL,
    ) -> ProtocolGen:
        return self.data.op_lock(target, mode, principal=principal)

    def op_unlock(self, ctx: LockContext) -> ProtocolGen:
        return self.data.op_unlock(ctx)

    def op_read(self, ctx: LockContext, target: AddressRange) -> ProtocolGen:
        return self.data.op_read(ctx, target)

    def read_fast(self, ctx: LockContext, address: int, length: int) -> Any:
        """Synchronous read when every page is RAM-resident, else None."""
        return self.data.try_read_fast(ctx, address, length)

    def write_fast(self, ctx: LockContext, address: int, data: bytes) -> bool:
        """Synchronous write fast path; False means submit op_write."""
        return self.data.try_write_fast(ctx, address, data)

    def op_write(self, ctx: LockContext, target: AddressRange,
                 data: bytes) -> ProtocolGen:
        return self.data.op_write(ctx, target, data)
