"""SpaceService: address-space and region lifecycle (Sections 2, 3.1).

Owns the client-visible region lifecycle — reserve / unreserve /
allocate / free / resize / migrate — plus the supporting machinery:
the local space-pool refill protocol ("nodes request chunks of
address space from their cluster manager"), home-node selection, and
the home-side wire handlers for descriptor fetch/update, allocation,
free, unreserve, migration, and replica creation.
"""

from __future__ import annotations

import logging

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.core.addressing import AddressRange
from repro.core.allocator import DEFAULT_CHUNK_SIZE
from repro.core.attributes import RegionAttributes
from repro.core.errors import (
    AccessDenied,
    InvalidRange,
    KhazanaError,
    KhazanaTimeout,
    NodeUnavailable,
    RegionInUse,
    error_from_code,
)
from repro.core.placement.base import LOOKUP_POLICY
from repro.core.region import RegionDescriptor
from repro.core.security import Right, SYSTEM_PRINCIPAL
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout
from repro.net.tasks import Future

if TYPE_CHECKING:
    from repro.core.kernel import NodeKernel

ProtocolGen = Generator[Future, Any, Any]

logger = logging.getLogger(__name__)


class SpaceService:
    """Region lifecycle operations and their home-side handlers."""

    def __init__(self, kernel: "NodeKernel") -> None:
        self.kernel = kernel

    # ------------------------------------------------------------------
    # Client operations (paper Section 2's API)
    # ------------------------------------------------------------------

    def op_reserve(
        self,
        size: int,
        attrs: RegionAttributes,
        principal: str = SYSTEM_PRINCIPAL,
    ) -> ProtocolGen:
        """Reserve a contiguous range of global address space."""
        kernel = self.kernel
        kernel.stats.bump("reserve")
        if size <= 0:
            raise InvalidRange(f"reserve size must be positive, got {size}")
        page_size = attrs.page_size
        size = -(-size // page_size) * page_size

        carved = kernel.space_pool.carve(size, alignment=page_size)
        if carved is None:
            yield from self._refill_pool(max(size, DEFAULT_CHUNK_SIZE))
            carved = kernel.space_pool.carve(size, alignment=page_size)
            if carved is None:
                raise KhazanaError(
                    "space pool empty immediately after a chunk grant"
                )

        homes = kernel.placement.choose_homes(carved, attrs.min_replicas)
        desc = RegionDescriptor(
            range=carved, attrs=attrs, home_nodes=homes, allocated=False
        )
        yield from kernel.address_map.reserve(carved, homes)
        kernel.adopt_descriptor(desc)
        for home in homes:
            if home == kernel.node_id:
                continue
            kernel.rpc.send(
                Message(
                    msg_type=MessageType.DESCRIPTOR_UPDATE,
                    src=kernel.node_id,
                    dst=home,
                    payload={"descriptor": desc.to_wire()},
                )
            )
        kernel.location.advertise_caching(desc)
        return desc

    def _refill_pool(self, size: int) -> ProtocolGen:
        """Obtain a chunk of unreserved space (Section 3.1)."""
        kernel = self.kernel
        manager = kernel.cluster_manager_node
        if kernel.cluster_role is not None:
            chunk = yield from kernel.cluster_role.delegate_chunk(
                kernel.node_id, max(size, DEFAULT_CHUNK_SIZE)
            )
            kernel.space_pool.add(chunk)
            return
        try:
            reply = yield kernel.rpc.request(
                manager, MessageType.SPACE_REQUEST, {"size": size},
                # Generous retransmission: losing address space grants
                # to a lossy link would fail reserves spuriously (3.5:
                # "tried ... until they succeed or timeout").
                policy=RetryPolicy(timeout=2.0, retries=6, backoff=1.5),
            )
        except RpcTimeout as error:
            raise KhazanaTimeout(
                f"cluster manager {manager} unreachable for a space "
                f"grant: {error}"
            ) from error
        except RemoteError as error:
            raise error_from_code(error.code, error.detail) from error
        chunk = AddressRange(
            int(reply.payload["start"]), int(reply.payload["length"])
        )
        kernel.space_pool.add(chunk)

    def op_unreserve(self, rid: int) -> ProtocolGen:
        """Release a region and reclaim its storage (release-type)."""
        kernel = self.kernel
        kernel.stats.bump("unreserve")
        desc = yield from kernel.location.locate_region(rid)
        if desc.rid != rid:
            raise InvalidRange(
                f"{rid:#x} is inside region {desc.rid:#x}, not its start"
            )
        live_ctx = kernel.data.region_in_use(rid)
        if live_ctx is not None:
            raise RegionInUse(
                f"region {rid:#x} has live lock context {live_ctx}"
            )
        # Address-map release and per-home teardown are release-type:
        # failures retry in the background, never surface (3.5).
        kernel.retry_queue.enqueue(
            lambda: kernel.address_map.release(desc.range),
            label=f"unreserve-map:{rid:#x}",
        )
        for home in desc.home_nodes:
            if home == kernel.node_id:
                self.teardown_region(rid)
                continue
            payload = {"rid": rid}
            kernel.retry_queue.enqueue(
                lambda home=home, payload=payload: self._request_once(
                    home, MessageType.REGION_UNRESERVE, payload
                ),
                label=f"unreserve:{rid:#x}@{home}",
            )
        kernel.region_directory.invalidate(rid)
        kernel.homed_regions.pop(rid, None)
        kernel.placement.note_unreserved(desc)
        return None

    def _request_once(self, dst: int, msg_type: MessageType,
                      payload: Dict[str, Any]) -> ProtocolGen:
        yield self.kernel.rpc.request(dst, msg_type, payload,
                                      policy=LOOKUP_POLICY)

    def op_allocate(self, rid: int,
                    subrange: Optional[AddressRange] = None) -> ProtocolGen:
        """Allocate physical storage for a region (or part of one)."""
        kernel = self.kernel
        kernel.stats.bump("allocate")
        desc = yield from kernel.location.locate_region(rid)
        target = subrange if subrange is not None else desc.range
        if not desc.range.contains_range(target):
            raise InvalidRange(f"{target} not inside region {desc.range}")
        pages = desc.pages_covering(target)
        for home in desc.home_nodes:
            if home == kernel.node_id:
                self._allocate_local(desc, pages)
                continue
            try:
                yield kernel.rpc.request(
                    home, MessageType.ALLOC_REQUEST,
                    {"rid": desc.rid, "start": target.start,
                     "length": target.length,
                     # The descriptor rides along: a newly chosen home
                     # may not have processed its DESCRIPTOR_UPDATE yet.
                     "descriptor": desc.to_wire()},
                    policy=RetryPolicy(timeout=2.0, retries=2, backoff=2.0),
                )
            except RpcTimeout as error:
                raise error_from_code(
                    "allocation_failed",
                    f"home {home} unreachable: {error}",
                ) from error
            except RemoteError as error:
                raise error_from_code(error.code, error.detail) from error
        if not desc.allocated:
            new_desc = desc.with_allocated(True)
            kernel.adopt_descriptor(new_desc)
            for home in desc.home_nodes:
                if home == kernel.node_id:
                    continue
                kernel.rpc.send(
                    Message(
                        msg_type=MessageType.DESCRIPTOR_UPDATE,
                        src=kernel.node_id,
                        dst=home,
                        payload={"descriptor": new_desc.to_wire()},
                    )
                )
            # Refresh the cluster manager's hint so later lookups from
            # other nodes see the allocated descriptor.
            kernel.location.readvertise(new_desc)
        return None

    def _allocate_local(self, desc: RegionDescriptor,
                        pages: List[int]) -> None:
        kernel = self.kernel
        primary = desc.primary_home
        for page_addr in pages:
            entry = kernel.page_directory.ensure(page_addr, desc.rid,
                                                 homed=True)
            entry.allocated = True
            if entry.owner is None and kernel.node_id == primary:
                entry.owner = primary
                entry.record_sharer(primary)

    def op_free(self, rid: int, subrange: AddressRange) -> ProtocolGen:
        """Release physical storage for part of a region (release-type)."""
        kernel = self.kernel
        kernel.stats.bump("free")
        desc = yield from kernel.location.locate_region(rid)
        if not desc.range.contains_range(subrange):
            raise InvalidRange(f"{subrange} not inside region {desc.range}")
        payload = {"rid": rid, "start": subrange.start,
                   "length": subrange.length}
        for home in desc.home_nodes:
            if home == kernel.node_id:
                self._free_local(desc, subrange)
                continue
            kernel.retry_queue.enqueue(
                lambda home=home: self._request_once(
                    home, MessageType.FREE_REQUEST, payload
                ),
                label=f"free:{rid:#x}@{home}",
            )
        return None

    def _free_local(self, desc: RegionDescriptor,
                    subrange: AddressRange) -> None:
        kernel = self.kernel
        for page_addr in desc.pages_covering(subrange):
            kernel.storage.drop(page_addr)
            kernel.page_directory.drop(page_addr)
        if not kernel.page_directory.entries_for_region(desc.rid):
            # Freed the region's last local page: stop advertising it.
            kernel.placement.retract(desc)

    def op_resize_region(self, rid: int, new_size: int) -> ProtocolGen:
        """Grow or shrink a region in place.

        Implements Section 4.1's alternative layout need ("resize the
        region whenever the file size changes").  Growth claims the
        free address space directly after the region (raising
        ``AddressSpaceExhausted`` when it is taken); shrinking frees
        the tail pages.  Returns the new descriptor.
        """
        kernel = self.kernel
        kernel.stats.bump("resize")
        desc = yield from kernel.location.locate_region(rid)
        if desc.rid != rid:
            raise InvalidRange(
                f"{rid:#x} is inside region {desc.rid:#x}, not its start"
            )
        page_size = desc.attrs.page_size
        if new_size <= 0:
            raise InvalidRange(f"size must be positive, got {new_size}")
        new_size = -(-new_size // page_size) * page_size
        if new_size == desc.range.length:
            return desc
        live_ctx = kernel.data.region_in_use(rid)
        if live_ctx is not None:
            raise RegionInUse(
                f"region {rid:#x} has live lock context {live_ctx}"
            )

        old_range = desc.range
        new_range = AddressRange(old_range.start, new_size)
        if new_size > old_range.length:
            yield from kernel.address_map.extend(
                old_range, new_size, requester=kernel.node_id
            )
            # The growth may have consumed part of this node's own
            # delegated pool; stop offering those addresses.
            kernel.space_pool.remove_overlap(
                AddressRange.from_bounds(old_range.end, new_range.end)
            )
        else:
            tail = AddressRange.from_bounds(new_range.end, old_range.end)
            yield from kernel.address_map.release(tail)

        new_desc = desc.with_range(new_range)
        kernel.adopt_descriptor(new_desc)

        if new_size > old_range.length:
            grown = AddressRange.from_bounds(old_range.end, new_range.end)
            yield from self.op_allocate(rid, grown)
        else:
            tail = AddressRange.from_bounds(new_range.end, old_range.end)
            for home in desc.home_nodes:
                if home == kernel.node_id:
                    self._free_local(desc, tail)
                    continue
                payload = {"rid": rid, "start": tail.start,
                           "length": tail.length}
                kernel.retry_queue.enqueue(
                    lambda home=home, payload=payload: self._request_once(
                        home, MessageType.FREE_REQUEST, payload
                    ),
                    label=f"shrink:{rid:#x}@{home}",
                )
        for home in new_desc.home_nodes:
            if home == kernel.node_id:
                continue
            kernel.rpc.send(
                Message(
                    msg_type=MessageType.DESCRIPTOR_UPDATE,
                    src=kernel.node_id,
                    dst=home,
                    payload={"descriptor": new_desc.to_wire()},
                )
            )
        kernel.location.readvertise(new_desc)
        final = kernel.homed_regions.get(rid, new_desc)
        return final

    def op_migrate_region(self, rid: int, new_primary: int) -> ProtocolGen:
        """Move a region's primary home to ``new_primary``.

        The actual transfer runs at the current primary (it holds the
        authoritative pages and directory); other nodes forward the
        request there.  Returns the new descriptor.
        """
        kernel = self.kernel
        kernel.stats.bump("migrate")
        desc = yield from kernel.location.locate_region(rid)
        if desc.rid != rid:
            raise InvalidRange(
                f"{rid:#x} is inside region {desc.rid:#x}, not its start"
            )
        if desc.primary_home == new_primary:
            return desc
        if desc.primary_home == kernel.node_id:
            new_desc = yield from self.migrate_region_local(desc, new_primary)
            return new_desc
        try:
            reply = yield kernel.rpc.request(
                desc.primary_home, MessageType.REGION_MIGRATE,
                {"rid": rid, "new_primary": new_primary},
                policy=RetryPolicy(timeout=5.0, retries=1, backoff=2.0),
            )
        except RpcTimeout as error:
            raise NodeUnavailable(
                f"primary home {desc.primary_home} unreachable: {error}"
            ) from error
        except RemoteError as error:
            raise error_from_code(error.code, error.detail) from error
        new_desc = RegionDescriptor.from_wire(reply.payload["descriptor"])
        kernel.adopt_descriptor(new_desc)
        return new_desc

    def migrate_region_local(self, desc: RegionDescriptor,
                             new_primary: int) -> ProtocolGen:
        """Primary-side migration: push pages, republish the descriptor."""
        kernel = self.kernel
        new_homes = (new_primary,) + tuple(
            h for h in desc.home_nodes if h != new_primary
        )
        # Keep the home count stable: with min_replicas satisfied, the
        # old primary drops off the end; otherwise it stays as a
        # secondary replica.
        keep = max(desc.attrs.min_replicas, 1)
        new_homes = new_homes[:max(keep, 1)]
        new_desc = desc.with_homes(new_homes)
        if new_primary not in desc.home_nodes:
            # The pushes carry the *new* descriptor, so the receiver
            # has adopted its home role by the time they are acked.
            yield from self.push_region_to(new_desc, new_primary)
        kernel.adopt_descriptor(new_desc)
        for node in set(new_homes) | set(desc.home_nodes):
            if node == kernel.node_id:
                continue
            kernel.rpc.send(
                Message(
                    msg_type=MessageType.DESCRIPTOR_UPDATE,
                    src=kernel.node_id,
                    dst=node,
                    payload={"descriptor": new_desc.to_wire()},
                )
            )
        kernel.placement.note_migrated(new_desc)
        kernel.retry_queue.enqueue(
            lambda: kernel.address_map.update_homes(new_desc.range,
                                                    new_homes),
            label=f"map-migrate:{desc.rid:#x}",
        )
        kernel.migration_advisor.forget_region(desc.rid)
        return new_desc

    def push_region_to(self, desc: RegionDescriptor,
                       target: int) -> ProtocolGen:
        """Copy every allocated page of a homed region to ``target``."""
        from repro.net.tasks import gather_settled

        kernel = self.kernel
        pushes = []
        for entry in kernel.page_directory.entries_for_region(desc.rid):
            if not entry.allocated:
                continue
            data = yield from kernel.data.local_page_bytes(desc,
                                                           entry.address)
            if data is None:
                # Allocated but never written: the page is still
                # logically all-zeroes; hand the target a real page so
                # its 'allocated' marker transfers.
                data = b"\x00" * desc.page_size
            pushes.append(
                kernel.rpc.request(
                    target,
                    MessageType.REPLICA_CREATE,
                    {"rid": desc.rid, "page": entry.address, "data": data,
                     "descriptor": desc.to_wire(),
                     # Hand over the coherence directory too, so the
                     # receiving home knows the true owner and copyset.
                     "owner": entry.owner,
                     "sharers": sorted(entry.sharers)},
                    policy=RetryPolicy(timeout=2.0, retries=1, backoff=2.0),
                )
            )
        if pushes:
            outcomes = yield gather_settled(pushes, label="migrate-push")
            failures = [exc for ok, exc in outcomes if not ok]
            if failures:
                raise NodeUnavailable(
                    f"could not push region {desc.rid:#x} to node "
                    f"{target}: {failures[0]}"
                )

    def op_get_attributes(self, rid: int) -> ProtocolGen:
        """Fetch a region's current attributes (get-attributes op)."""
        kernel = self.kernel
        kernel.stats.bump("get_attrs")
        desc = yield from kernel.location.locate_region(
            rid, skip_directory=True
        )
        return desc.attrs

    def op_set_attributes(self, rid: int, attrs: RegionAttributes,
                          principal: str = SYSTEM_PRINCIPAL) -> ProtocolGen:
        """Update a region's attributes (set-attributes op)."""
        kernel = self.kernel
        kernel.stats.bump("set_attrs")
        desc = yield from kernel.location.locate_region(rid)
        if not desc.attrs.acl.allows(principal, Right.ADMIN):
            raise AccessDenied(
                f"principal {principal!r} lacks admin rights on region "
                f"{rid:#x}"
            )
        if attrs.page_size != desc.attrs.page_size:
            raise InvalidRange(
                "page size is fixed at reserve time and cannot change"
            )
        new_desc = desc.with_attrs(attrs)
        kernel.adopt_descriptor(new_desc)
        for home in new_desc.home_nodes:
            if home == kernel.node_id:
                continue
            kernel.rpc.send(
                Message(
                    msg_type=MessageType.DESCRIPTOR_UPDATE,
                    src=kernel.node_id,
                    dst=home,
                    payload={"descriptor": new_desc.to_wire()},
                )
            )
        return new_desc

    # ------------------------------------------------------------------
    # Home-side wire handlers
    # ------------------------------------------------------------------

    def handle_descriptor_fetch(self, msg: Message) -> None:
        kernel = self.kernel
        rid = int(msg.payload["rid"])
        desc = kernel.homed_regions.get(rid)
        if desc is None:
            kernel.reply_error(msg, "not_responsible",
                               f"node {kernel.node_id} is not a home of "
                               f"region {rid:#x}")
            return
        kernel.reply_request(
            msg, MessageType.DESCRIPTOR_REPLY, {"descriptor": desc.to_wire()}
        )

    def handle_descriptor_update(self, msg: Message) -> None:
        desc = RegionDescriptor.from_wire(msg.payload["descriptor"])
        self.kernel.adopt_descriptor(desc)

    def handle_region_unreserve(self, msg: Message) -> None:
        rid = int(msg.payload["rid"])
        self.teardown_region(rid)
        self.kernel.reply_request(msg, MessageType.FREE_REPLY, {})

    def teardown_region(self, rid: int) -> None:
        kernel = self.kernel
        for entry in kernel.page_directory.entries_for_region(rid):
            kernel.storage.drop(entry.address)
        kernel.page_directory.drop_region(rid)
        kernel.homed_regions.pop(rid, None)
        kernel.region_directory.invalidate(rid)

    def handle_alloc_request(self, msg: Message) -> None:
        kernel = self.kernel
        rid = int(msg.payload["rid"])
        desc = kernel.homed_regions.get(rid)
        if desc is None and "descriptor" in msg.payload:
            kernel.adopt_descriptor(
                RegionDescriptor.from_wire(msg.payload["descriptor"])
            )
            desc = kernel.homed_regions.get(rid)
        if desc is None:
            kernel.reply_error(msg, "not_responsible",
                               f"node {kernel.node_id} is not a home of "
                               f"region {rid:#x}")
            return
        target = AddressRange(int(msg.payload["start"]),
                              int(msg.payload["length"]))
        self._allocate_local(desc, desc.pages_covering(target))
        if not desc.allocated:
            kernel.adopt_descriptor(desc.with_allocated(True))
        kernel.reply_request(msg, MessageType.ALLOC_REPLY, {})

    def handle_free_request(self, msg: Message) -> None:
        kernel = self.kernel
        rid = int(msg.payload["rid"])
        desc = kernel.homed_regions.get(rid)
        if desc is not None:
            target = AddressRange(int(msg.payload["start"]),
                                  int(msg.payload["length"]))
            self._free_local(desc, target)
        kernel.reply_request(msg, MessageType.FREE_REPLY, {})

    def handle_region_migrate(self, msg: Message) -> None:
        kernel = self.kernel
        rid = int(msg.payload["rid"])
        new_primary = int(msg.payload["new_primary"])
        desc = kernel.homed_regions.get(rid)
        if desc is None or desc.primary_home != kernel.node_id:
            kernel.reply_error(msg, "not_responsible",
                               f"node {kernel.node_id} is not the primary "
                               f"home of region {rid:#x}")
            return

        def serve() -> ProtocolGen:
            new_desc = yield from self.migrate_region_local(desc, new_primary)
            kernel.reply_request(
                msg, MessageType.DESCRIPTOR_REPLY,
                {"descriptor": new_desc.to_wire()},
            )

        kernel.spawn_handler(msg, serve(), label="migrate")

    def handle_replica_create(self, msg: Message) -> None:
        kernel = self.kernel
        desc = RegionDescriptor.from_wire(msg.payload["descriptor"])
        kernel.adopt_descriptor(desc)
        page_addr = int(msg.payload["page"])
        data = msg.payload["data"]

        def store() -> ProtocolGen:
            yield from kernel.data.store_local_page(desc, page_addr, data,
                                                    dirty=False)
            entry = kernel.page_directory.ensure(page_addr, desc.rid,
                                                 homed=True)
            entry.allocated = True
            if msg.payload.get("owner") is not None:
                entry.owner = int(msg.payload["owner"])
            for sharer in msg.payload.get("sharers", ()):
                entry.record_sharer(int(sharer))
            kernel.reply_request(msg, MessageType.REPLICA_ACK, {})

        kernel.spawn_handler(msg, store(), label="replica-create")
