"""Lock modes, lock contexts, and the per-node lock table.

Paper Section 2: clients "lock and unlock parts of regions in a
specified mode (e.g., read-only, read-write etc).  The lock operation
returns a lock context, which must be used during subsequent read and
write operations to the region.  Lock operations indicate the caller's
intention to access a portion of a region.  These operations do not
themselves enforce any concurrency control policy ... The consistency
protocol ultimately decides the concurrency control policy based on
these stated intentions."

Accordingly, :class:`LockTable` only *records* which contexts exist on
which pages; whether a new lock may be granted, delayed, or refused is
decided by the region's consistency manager, which consults the table.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.core.addressing import AddressRange
from repro.core.errors import InvalidLockContext

_context_counter = itertools.count(1)


class LockMode(str, enum.Enum):
    """The caller's declared intention for a locked range."""

    READ = "read"                  # read-only access
    WRITE = "write"                # read-write, exclusive intention
    WRITE_SHARED = "write_shared"  # concurrent writers, merged at release
                                   # (meaningful under release consistency)

    @property
    def is_write(self) -> bool:
        return self in (LockMode.WRITE, LockMode.WRITE_SHARED)

    def conflicts_with(self, other: "LockMode") -> bool:
        """Default (CREW-style) conflict relation between two intentions.

        Individual consistency managers may override this — e.g. the
        eventual protocol never treats intentions as conflicting, and
        release consistency lets WRITE_SHARED contexts coexist.
        """
        if self is LockMode.READ and other is LockMode.READ:
            return False
        if self is LockMode.WRITE_SHARED and other is LockMode.WRITE_SHARED:
            return False
        return True


@dataclass
class LockContext:
    """Handle returned by ``lock`` and presented to ``read``/``write``.

    A context covers a specific sub-range of one region in one mode on
    one node.  It is single-use in the sense that after ``unlock`` any
    further use raises :class:`InvalidLockContext`.
    """

    rid: int
    range: AddressRange
    mode: LockMode
    node_id: int
    principal: str
    ctx_id: int = field(default_factory=lambda: next(_context_counter))
    closed: bool = False
    #: Pages this context dirtied; consulted by release-style protocols
    #: to know what to propagate at unlock time.
    dirty_pages: Set[int] = field(default_factory=set)

    def check_open(self) -> None:
        if self.closed:
            raise InvalidLockContext(
                f"lock context {self.ctx_id} was already unlocked"
            )

    def check_covers(self, subrange: AddressRange, for_write: bool) -> None:
        """Validate a read/write against this context."""
        self.check_open()
        if not self.range.contains_range(subrange):
            raise InvalidLockContext(
                f"context {self.ctx_id} covers {self.range}, "
                f"not {subrange}"
            )
        if for_write and not self.mode.is_write:
            raise InvalidLockContext(
                f"context {self.ctx_id} holds {self.mode.value}; "
                "write requires a write-capable mode"
            )

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"<LockContext {self.ctx_id} {self.mode.value} {self.range} "
            f"node={self.node_id} {state}>"
        )


class LockTable:
    """Per-daemon registry of live lock contexts, indexed by page.

    The table answers the consistency manager's two questions: "which
    contexts currently cover page P?" and "does a new intention on P
    conflict with any of them?".  It also tracks contexts by id so
    read/write calls can validate the context they present.
    """

    def __init__(self) -> None:
        self._by_page: Dict[int, List[LockContext]] = {}
        self._by_id: Dict[int, LockContext] = {}
        #: Optional race-detector probe (repro.analysis.races); set by
        #: the owning daemon when detection is on, never imported here.
        self.probe = None

    def register(self, ctx: LockContext, pages: List[int]) -> None:
        """Record a newly granted context covering ``pages``."""
        self._by_id[ctx.ctx_id] = ctx
        for page in pages:
            self._by_page.setdefault(page, []).append(ctx)
        if self.probe is not None:
            self.probe.lock_registered(ctx, pages)

    def release(self, ctx: LockContext, pages: List[int]) -> None:
        """Remove a context; marks it closed."""
        if ctx.ctx_id not in self._by_id:
            raise InvalidLockContext(
                f"lock context {ctx.ctx_id} is not registered on this node"
            )
        del self._by_id[ctx.ctx_id]
        ctx.closed = True
        for page in pages:
            holders = self._by_page.get(page)
            if holders is None:
                continue
            holders[:] = [c for c in holders if c.ctx_id != ctx.ctx_id]
            if not holders:
                del self._by_page[page]
        if self.probe is not None:
            self.probe.lock_released(ctx, pages)

    def lookup(self, ctx_id: int) -> LockContext:
        ctx = self._by_id.get(ctx_id)
        if ctx is None:
            raise InvalidLockContext(
                f"unknown or closed lock context {ctx_id}"
            )
        return ctx

    def holders(self, page: int) -> List[LockContext]:
        """Live contexts covering ``page`` (copy; safe to iterate)."""
        return list(self._by_page.get(page, ()))

    def conflicts(
        self, page: int, mode: LockMode, ignore: Optional[LockContext] = None
    ) -> bool:
        """Would an intention of ``mode`` on ``page`` conflict locally?"""
        for holder in self._by_page.get(page, ()):
            if ignore is not None and holder.ctx_id == ignore.ctx_id:
                continue
            if mode.conflicts_with(holder.mode):
                return True
        return False

    def page_locked(self, page: int) -> bool:
        """True when any live context covers ``page``; such pages are
        pinned and may not be victimized by local storage."""
        return bool(self._by_page.get(page))

    def live_contexts(self) -> Iterator[LockContext]:
        return iter(list(self._by_id.values()))

    def __len__(self) -> int:
        return len(self._by_id)
