"""NodeKernel: the slim composition root of one Khazana peer.

"The Khazana service is implemented by a dynamically changing set of
cooperating daemon processes ... all Khazana nodes are peers"
(paper Section 2).  Each peer is built from four cohesive services
composed by this kernel:

- :class:`~repro.core.location.LocationService` — the region-location
  chain of Section 3.2,
- :class:`~repro.core.space.SpaceService` — address-space and region
  lifecycle (reserve/allocate/resize/migrate, pool refill, Section 3.1),
- :class:`~repro.core.dataplane.DataPlane` — lock/read/write, lock
  contexts, local page residency (Sections 3.3-3.4),
- :class:`~repro.core.router.MessageRouter` — wire dispatch as an
  interceptor chain (dedup, latency stats, trace, probes).

The kernel itself keeps only what the services share: identity,
config, the task runner, the directories and storage hierarchy, the
consistency-manager registry, and the failure-handling machinery.  It
implements the :class:`~repro.core.cmhost.CMHost` protocol — the
narrow surface consistency managers program against.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.address_map import (
    ROOT_PAGE,
    SYSTEM_REGION,
    SYSTEM_RID,
    AddressMap,
    MapIO,
    initial_root_node,
)
from repro.core.addressing import AddressRange, DEFAULT_PAGE_SIZE
from repro.core.allocator import LocalSpacePool
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.cluster import ClusterManagerRole
from repro.core.dataplane import DataPlane
from repro.core.errors import KhazanaError
from repro.core.locks import LockMode, LockTable
from repro.core.page_directory import PageDirectory
from repro.core.placement import create_placement
from repro.core.region import RegionDescriptor
from repro.core.region_directory import RegionDirectory
from repro.core.router import MessageRouter
from repro.core.security import SYSTEM_PRINCIPAL, AccessControlList
from repro.core.space import SpaceService
from repro.failure.detector import FailureDetector
from repro.failure.replicas import ReplicaMaintainer
from repro.failure.retry import RetryQueue
from repro.net.message import Message, MessageType
from repro.net.rpc import RpcEndpoint
from repro.net.runtime import Runtime
from repro.net.tasks import Future, TaskRunner
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.memory import MemoryStore
from repro.storage.disk import DiskStore
from repro.storage.store import StoredPage

ProtocolGen = Generator[Future, Any, Any]

logger = logging.getLogger(__name__)


@dataclass
class DaemonConfig:
    """Tunables for one daemon."""

    memory_bytes: int = 256 * DEFAULT_PAGE_SIZE
    disk_bytes: int = 16384 * DEFAULT_PAGE_SIZE
    #: Node hosting the cluster-manager role for this daemon's cluster.
    cluster_manager_node: int = 0
    #: Which cluster this daemon belongs to (paper 3.1: nodes are
    #: "organized into a hierarchy" of clusters).
    cluster_id: int = 0
    #: Manager nodes of the *other* clusters, for inter-cluster
    #: location queries ("representing the local cluster during
    #: inter-cluster communication").
    peer_managers: Tuple[int, ...] = ()
    #: Node that bootstrapped the system region (home of the map).
    bootstrap_node: int = 0
    #: Give up waiting for a lock after this many virtual seconds.
    lock_wait_timeout: float = 60.0
    #: Housekeeping period (CM ticks, free-space reports).
    housekeeping_period: float = 1.0
    #: Run the failure detector / replica maintainer.
    enable_failure_handling: bool = True
    #: Coalesce multi-page lock/unlock traffic into one RPC per home
    #: node (PAGE_FETCH_BATCH / TOKEN_ACQUIRE_BATCH / UPDATE_PUSH_BATCH).
    #: Off forces the per-page protocol path everywhere.
    enable_batching: bool = True
    #: Max independent per-page requests a daemon keeps in flight when
    #: a multi-page operation cannot batch (READ acquires, releases).
    #: 1 restores the fully serial request-reply-request pattern.
    #: Order-dependent traffic (WRITE-token acquisition, which takes
    #: tokens in ascending page order to stay deadlock-free) is never
    #: pipelined regardless of this setting.
    pipeline_window: int = 8
    #: Region-directory capacity (ablation A1 shrinks this to 1).
    region_directory_capacity: int = 1024
    #: Disable the cluster-manager hint tier (ablation A1).
    use_cluster_hints: bool = True
    #: When set, the daemon's disk level is file-backed under
    #: ``{spill_dir}/node{id}`` and homed-region metadata is journaled
    #: there, so the daemon can be restarted with its state intact.
    spill_dir: Optional[str] = None
    #: Automatically migrate a region's home toward a node that
    #: dominates its access traffic (future-work policy; see
    #: repro/core/migration.py).
    enable_auto_migration: bool = False
    #: Run the dynamic race/invariant detector (repro.analysis.races)
    #: against this daemon.  Within a Cluster all daemons share one
    #: detector so cross-node races are visible.
    detect_races: bool = False
    #: Placement backend: "tiered" (the paper's four-tier chain) or
    #: "ring" (rendezvous-hashed location over a live member set).
    #: See repro/core/placement/.
    placement: str = "tiered"


@dataclass
class OpLatency:
    """Virtual-clock service-time aggregate for one wire op."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class DaemonStats:
    """Per-daemon operation counters used by benchmarks."""

    ops: Dict[str, int] = field(default_factory=dict)
    #: How each successful region location was resolved:
    #: "directory" | "cluster" | "intercluster" | "map" | "walk"
    #: (tiered chain) or "directory" | "ring" | "map" | "walk"
    #: (hash-ring placement).
    lookup_tiers: Dict[str, int] = field(default_factory=dict)
    lock_waits: int = 0
    lock_timeouts: int = 0
    #: Virtual-clock request service time per wire op, recorded by the
    #: MessageRouter's latency middleware (request arrival -> reply).
    op_latency: Dict[str, OpLatency] = field(default_factory=dict)

    def bump(self, op: str) -> None:
        self.ops[op] = self.ops.get(op, 0) + 1

    def tier(self, name: str) -> None:
        self.lookup_tiers[name] = self.lookup_tiers.get(name, 0) + 1

    def note_latency(self, op: str, seconds: float) -> None:
        latency = self.op_latency.get(op)
        if latency is None:
            latency = self.op_latency[op] = OpLatency()
        latency.record(seconds)


class _KernelMapIO(MapIO):
    """Adapter giving the address map access to system-region pages
    through this node's ordinary lock/read/write path."""

    def __init__(self, kernel: "NodeKernel") -> None:
        self.kernel = kernel
        self.page_size = DEFAULT_PAGE_SIZE

    def lock_page(self, page_addr: int, mode: LockMode) -> ProtocolGen:
        ctx = yield from self.kernel.data.op_lock(
            AddressRange(page_addr, self.page_size),
            mode,
            principal=SYSTEM_PRINCIPAL,
        )
        return ctx

    def read_page(self, ctx: Any, page_addr: int) -> ProtocolGen:
        data = yield from self.kernel.data.op_read(
            ctx, AddressRange(page_addr, self.page_size)
        )
        return data

    def write_page(self, ctx: Any, page_addr: int, data: bytes) -> ProtocolGen:
        yield from self.kernel.data.op_write(
            ctx, AddressRange(page_addr, self.page_size), data
        )

    def unlock_page(self, ctx: Any) -> ProtocolGen:
        yield from self.kernel.data.op_unlock(ctx)


class NodeKernel:
    """Composition root of one Khazana peer; implements CMHost."""

    def __init__(
        self,
        node_id: int,
        runtime: Runtime,
        config: Optional[DaemonConfig] = None,
        probe: Optional["Any"] = None,
    ) -> None:
        self.node_id = node_id
        #: The backend seam: clock + timers + transport.  Everything
        #: time- or wire-shaped the kernel does goes through it, so
        #: the same node runs over the simulator or over real sockets.
        self.runtime = runtime
        #: The runtime's transport, under its historical name — the
        #: location service, fsck, and the message trace all address
        #: the messaging backend as ``kernel.network``.
        self.network = runtime.transport
        self.config = config if config is not None else DaemonConfig()

        from repro.analysis.races import NULL_PROBE, RaceDetector

        if probe is None and self.config.detect_races:
            # Standalone daemon with detection on: private detector.
            # Clusters pass one shared detector instead.
            probe = RaceDetector()
        self.probe = probe if probe is not None else NULL_PROBE
        if self.probe.enabled:
            self.probe.attach_daemon(self)

        self.rpc = RpcEndpoint(node_id, self.network, runtime)
        self.runner = TaskRunner()
        self.stats = DaemonStats()

        self.lock_table = LockTable()
        if self.probe.enabled:
            self.lock_table.probe = self.probe
        self.region_directory = RegionDirectory(
            capacity=self.config.region_directory_capacity
        )
        self.page_directory = PageDirectory(node_id)
        self.journal = None
        if self.config.spill_dir is not None:
            import os

            from repro.storage.disk import FileBackedDiskStore
            from repro.storage.persistence import MetadataJournal

            node_dir = os.path.join(self.config.spill_dir, f"node{node_id}")
            disk = FileBackedDiskStore(node_dir, self.config.disk_bytes)
            self.journal = MetadataJournal(node_dir)
        else:
            disk = DiskStore(self.config.disk_bytes)
        #: The data plane exists before the storage hierarchy: eviction
        #: consults its consistency hook.
        self.data = DataPlane(self)
        self.storage = StorageHierarchy(
            memory=MemoryStore(self.config.memory_bytes),
            disk=disk,
            is_pinned=self.lock_table.page_locked,
            on_disk_evict=self.data.on_disk_evict,
        )
        self.space_pool = LocalSpacePool()
        self.homed_regions: Dict[int, RegionDescriptor] = {}
        self._cms: Dict[str, Any] = {}
        self._alive = True

        self.retry_queue = RetryQueue(runtime, self.spawn)
        self.detector = FailureDetector(
            self.rpc, runtime, peers=[]
        )
        self.detector.on_death(self._on_peer_death)
        from repro.core.migration import MigrationAdvisor

        self.migration_advisor = MigrationAdvisor(self)
        #: The placement seam: how this node resolves and places
        #: regions (repro/core/placement/).  Built after the detector
        #: and migration advisor — ring placement wires membership
        #: into the former and re-homing through the latter.
        self.placement = create_placement(self)
        #: Historical name for the placement strategy's lookup surface
        #: (the pre-seam LocationService).
        self.location = self.placement
        #: The live-member view (None under tiered placement).
        self.membership = self.placement.membership
        self.space = SpaceService(self)
        self.address_map = AddressMap(_KernelMapIO(self))
        self.replica_maintainer = ReplicaMaintainer(self)
        self.cluster_role: Optional[ClusterManagerRole] = None
        if self.placement.hosts_cluster_manager():
            self.cluster_role = ClusterManagerRole(self)

        self.router = MessageRouter(self)
        self.router.wire()
        self._schedule_housekeeping()

    # ------------------------------------------------------------------
    # Lifecycle / bootstrap
    # ------------------------------------------------------------------

    def bootstrap_system_region(self, peers: List[int]) -> None:
        """Install the well-known address-map region (Section 3.1).

        Every daemon pins the system descriptor; the bootstrap node
        additionally homes the region and writes the initial root tree
        node.  Must run before any client operation.
        """
        attrs = RegionAttributes(
            consistency_level=ConsistencyLevel.RELEASE,
            min_replicas=1,
            page_size=DEFAULT_PAGE_SIZE,
            acl=AccessControlList.private(SYSTEM_PRINCIPAL),
        )
        desc = RegionDescriptor(
            range=SYSTEM_REGION,
            attrs=attrs,
            home_nodes=(self.config.bootstrap_node,),
            allocated=True,
            version=1,
        )
        self.region_directory.pin(desc)
        for peer in peers:
            self.detector.add_peer(peer)
        if self.membership is not None:
            self.membership.seed(peers)
        if self.node_id == self.config.bootstrap_node:
            self.homed_regions[SYSTEM_RID] = desc
            if not self.storage.contains(ROOT_PAGE):
                # A restarted bootstrap node already has the map on
                # disk; only a truly fresh deployment initialises it.
                root = initial_root_node()
                self.storage.write_through(
                    StoredPage(ROOT_PAGE, root.encode(DEFAULT_PAGE_SIZE),
                               dirty=False)
                )
            entry = self.page_directory.ensure(ROOT_PAGE, SYSTEM_RID,
                                               homed=True)
            entry.allocated = True
            entry.owner = self.node_id
            entry.record_sharer(self.node_id)
        self._recover_from_journal()
        if self.config.enable_failure_handling:
            self.detector.start()
            self.replica_maintainer.start()

    def _recover_from_journal(self) -> None:
        """Reload homed regions and page metadata after a restart."""
        if self.journal is None:
            return
        for desc in self.journal.load_regions():
            if desc.rid == SYSTEM_RID:
                continue
            self.region_directory.insert(desc)
            if self.node_id in desc.home_nodes:
                self.homed_regions[desc.rid] = desc
        for entry in self.journal.load_page_entries(self.node_id):
            if entry.rid == SYSTEM_RID:
                continue
            existing = self.page_directory.ensure(
                entry.address, entry.rid, homed=True
            )
            existing.allocated = entry.allocated
            existing.owner = entry.owner
            existing.record_sharer(self.node_id)
            existing.version = entry.version

    def checkpoint(self) -> None:
        """Flush homed-region metadata to the journal (no-op without
        a spill directory)."""
        if self.journal is None:
            return
        self.journal.save_regions(self.homed_regions)
        self.journal.save_page_entries(self.page_directory)

    def stop(self) -> None:
        """Shut the daemon down (simulating a crash or clean exit)."""
        self._alive = False
        self.detector.stop()
        self.replica_maintainer.stop()
        self.rpc.shutdown()

    @property
    def alive(self) -> bool:
        """False once :meth:`stop` has run."""
        return self._alive

    @property
    def now(self) -> float:
        """This node's clock: virtual seconds on the sim backend,
        monotonic wall seconds on the asyncio backend."""
        return self.runtime.now

    @property
    def scheduler(self):
        """The runtime's raw timer backend (compatibility alias).

        On the sim backend this is the deployment's
        :class:`~repro.net.clock.EventScheduler`; on the asyncio
        backend, the runtime itself (same timer surface).  New code
        should schedule through :attr:`runtime` and read the clock via
        :attr:`now`.
        """
        return self.runtime.timers

    @property
    def cluster_manager_node(self) -> Optional[int]:
        return self.placement.manager_node

    def home_order(self, desc: RegionDescriptor) -> List[int]:
        """Candidate order for ordered home failover (CMHost surface):
        the placement strategy may reorder or extend the descriptor's
        own home list (e.g. ring placement tries the current bucket
        director first, and last-ditch even when the caller's stale
        descriptor does not name it)."""
        return self.placement.home_order(desc)

    # ------------------------------------------------------------------
    # Task plumbing
    # ------------------------------------------------------------------

    def spawn(self, task: ProtocolGen, label: str = "task") -> Future:
        """Run a protocol generator under this daemon's task runner."""
        return self.runner.spawn(task, label=f"n{self.node_id}:{label}")

    def spawn_handler(self, msg: Message, task: ProtocolGen,
                      label: str = "handler") -> None:
        """Run a message-handler task; failures NAK the request."""
        outcome = self.spawn(task, label=label)

        def on_done(future: Future) -> None:
            exc = future.exception()
            if exc is None:
                return
            if msg.request_id is None:
                return
            if isinstance(exc, KhazanaError):
                self.reply_error(msg, exc.code, str(exc))
            else:
                self.reply_error(msg, "khazana_error", repr(exc))

        outcome.add_callback(on_done)

    def sleep(self, seconds: float) -> Future:
        """A future resolving after ``seconds`` of virtual time."""
        future = Future(label=f"sleep:{seconds}")
        if seconds <= 0:
            future.set_result(None)
        else:
            self.runtime.call_later(seconds,
                                    lambda: future.set_result(None),
                                    label=f"n{self.node_id}:sleep")
        return future

    def with_timeout(self, inner: Future, seconds: float,
                     error: KhazanaError) -> Future:
        """Wrap ``inner`` so it fails with ``error`` after ``seconds``."""
        wrapper = Future(label=f"timeout:{inner.label}")
        timer = self.runtime.call_later(
            seconds,
            lambda: None if wrapper.done else wrapper.set_exception(error),
            label=f"n{self.node_id}:timeout:{inner.label}",
        )

        def forward(future: Future) -> None:
            timer.cancel()
            if wrapper.done:
                return
            exc = future.exception()
            if exc is not None:
                wrapper.set_exception(exc)
            else:
                wrapper.set_result(future.result())

        inner.add_callback(forward)
        return wrapper

    # ------------------------------------------------------------------
    # Shared services
    # ------------------------------------------------------------------

    def consistency_manager(self, protocol: str):
        from repro.consistency import create_manager

        cm = self._cms.get(protocol)
        if cm is None:
            cm = create_manager(protocol, self)
            self._cms[protocol] = cm
        return cm

    def consistency_managers(self) -> Dict[str, Any]:
        """The CMs instantiated on this node so far, keyed by protocol
        name (inspection surface; does not instantiate anything)."""
        return dict(self._cms)

    def adopt_descriptor(self, desc: RegionDescriptor) -> None:
        """Install a (possibly newer) descriptor locally."""
        if self.probe.enabled:
            self.probe.region_seen(self.node_id, desc)
        self.region_directory.insert(desc)
        if self.node_id in desc.home_nodes:
            known = self.homed_regions.get(desc.rid)
            if known is None or desc.version >= known.version:
                self.homed_regions[desc.rid] = desc
        else:
            was_home = self.homed_regions.pop(desc.rid, None) is not None
            if was_home:
                # Demoted (e.g. after a migration): our page entries
                # become hints.  Owner/copyset values stay — the new
                # primary received the same directory state with the
                # pushed pages, so coherence authority moved intact.
                for entry in self.page_directory.entries_for_region(desc.rid):
                    entry.homed = False
                self.migration_advisor.forget_region(desc.rid)

    # ------------------------------------------------------------------
    # CMHost facade (delegates into the services)
    # ------------------------------------------------------------------

    def reply_request(self, msg: Message, msg_type: MessageType,
                      payload: Optional[Dict[str, Any]] = None) -> None:
        self.router.reply_request(msg, msg_type, payload)

    def reply_error(self, msg: Message, code: str, detail: str = "") -> None:
        self.router.reply_error(msg, code, detail)

    def local_page_bytes(self, desc: RegionDescriptor,
                         page_addr: int) -> ProtocolGen:
        return self.data.local_page_bytes(desc, page_addr)

    def store_local_page(self, desc: RegionDescriptor, page_addr: int,
                         data: bytes, dirty: bool) -> ProtocolGen:
        return self.data.store_local_page(desc, page_addr, data, dirty)

    def drop_local_page(self, page_addr: int) -> None:
        self.data.drop_local_page(page_addr)

    def wait_local_conflicts(self, page_addr: int,
                             mode: LockMode) -> ProtocolGen:
        return self.data.wait_local_conflicts(page_addr, mode)

    def open_context_ids(self) -> List[int]:
        """Ids of lock contexts currently open on this node."""
        return self.data.open_context_ids()

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def _schedule_housekeeping(self) -> None:
        if not self._alive:
            return
        self.runtime.call_later(
            self.config.housekeeping_period, self._housekeeping,
            label=f"n{self.node_id}:housekeeping",
        )

    def _housekeeping(self) -> None:
        if not self._alive:
            return
        for cm in self._cms.values():
            cm.tick()
        if self.config.enable_auto_migration:
            self.migration_advisor.tick()
        self.checkpoint()
        if (
            self.cluster_role is None
            and self.config.use_cluster_hints
            and self.space_pool.total_free() > 0
        ):
            self.rpc.send(
                Message(
                    msg_type=MessageType.FREE_SPACE_REPORT,
                    src=self.node_id,
                    dst=self.cluster_manager_node,
                    payload={
                        "total_free": self.space_pool.total_free(),
                        "max_contiguous": self.space_pool.max_contiguous(),
                    },
                )
            )
        self._schedule_housekeeping()

    def _on_peer_death(self, node_id: int) -> None:
        for cm in self._cms.values():
            cm.on_node_failure(node_id)
        if self.cluster_role is not None:
            self.cluster_role.forget_node(node_id)
