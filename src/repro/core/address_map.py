"""The distributed address map tree.

Paper Section 3.1: "Khazana maintains a globally distributed data
structure called the address map ... used to keep track of reserved
and free regions within the global address space [and] to locate the
home nodes of regions ... The address map is implemented as a
distributed tree where each subtree describes a range of global
address space in finer detail.  Each tree node is of fixed size and
contains a set of entries describing disjoint global memory regions,
each of which contains either a non-exhaustive list of home nodes for
a reserved region or points to the root node of a subtree describing
the region in finer detail.  The address map itself resides in
Khazana.  A well-known region beginning at address 0 stores the root
node of the address map tree."

This module is faithful to that design: tree nodes are fixed-size
pages inside the *system region* at address 0, read and written
through the ordinary Khazana lock/read/write path (so the map is
replicated and kept release-consistent like any other region).  The
tree logic is written as generators over the narrow :class:`MapIO`
protocol; the daemon supplies the I/O.
"""

from __future__ import annotations

import abc
import enum
import json
from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from repro.core.addressing import (
    DEFAULT_PAGE_SIZE,
    MAX_ADDRESS,
    AddressRange,
)
from repro.core.errors import (
    AddressSpaceExhausted,
    AlreadyReserved,
    InvalidRange,
    KhazanaError,
    NotReserved,
)
from repro.core.locks import LockMode

#: The well-known system region holding the address-map tree: the
#: first 16 MiB of the global address space (4096 tree pages).
SYSTEM_REGION_START = 0
SYSTEM_REGION_SIZE = 16 * 1024 * 1024
SYSTEM_REGION = AddressRange(SYSTEM_REGION_START, SYSTEM_REGION_SIZE)

#: The region id of the well-known address-map region.
SYSTEM_RID = SYSTEM_REGION.start

#: The root tree node lives in the very first page.
ROOT_PAGE = 0

#: Fixed tree-node fanout.  With JSON encoding, 32 entries fit a
#: 4 KiB page with room to spare.
MAX_ENTRIES = 32

ProtocolGen = Generator[Any, Any, Any]


class EntryState(str, enum.Enum):
    """What an address-map entry says about its range."""

    FREE = "free"              # unreserved global address space
    RESERVED = "reserved"      # a live region; data = home node list
    DELEGATED = "delegated"    # chunk handed to a node to manage locally
    SUBTREE = "subtree"        # described in finer detail by a child page


@dataclass(frozen=True)
class MapEntry:
    """One entry of a tree node, covering a disjoint address range.

    ``data`` is state-dependent: the (non-exhaustive) home-node list
    for RESERVED, the managing node id for DELEGATED, the child page
    address for SUBTREE, and empty for FREE.
    """

    range: AddressRange
    state: EntryState
    data: Tuple[int, ...] = ()

    @property
    def home_nodes(self) -> Tuple[int, ...]:
        if self.state is not EntryState.RESERVED:
            raise ValueError(f"{self.state.value} entry has no home nodes")
        return self.data

    @property
    def manager_node(self) -> int:
        if self.state is not EntryState.DELEGATED:
            raise ValueError(f"{self.state.value} entry has no manager")
        return self.data[0]

    @property
    def child_page(self) -> int:
        if self.state is not EntryState.SUBTREE:
            raise ValueError(f"{self.state.value} entry has no child page")
        return self.data[0]

    def to_wire(self) -> List[Any]:
        return [self.range.start, self.range.length, self.state.value,
                list(self.data)]

    @classmethod
    def from_wire(cls, raw: List[Any]) -> "MapEntry":
        return cls(
            range=AddressRange(int(raw[0]), int(raw[1])),
            state=EntryState(raw[2]),
            data=tuple(int(x) for x in raw[3]),
        )


class MapNode:
    """In-memory form of one fixed-size tree page."""

    def __init__(self, entries: List[MapEntry],
                 next_free_page: Optional[int] = None) -> None:
        #: Entries sorted by range start, jointly partitioning the
        #: node's covered range.
        self.entries = sorted(entries, key=lambda e: e.range.start)
        #: Only meaningful on the root node: bump allocator for new
        #: tree pages within the system region.
        self.next_free_page = next_free_page

    def encode(self, page_size: int) -> bytes:
        doc = {"entries": [e.to_wire() for e in self.entries]}
        if self.next_free_page is not None:
            doc["next_free_page"] = self.next_free_page
        blob = json.dumps(doc, separators=(",", ":")).encode("ascii")
        if len(blob) > page_size:
            raise KhazanaError(
                f"address-map node overflow: {len(blob)} > {page_size} bytes"
            )
        return blob + b"\x00" * (page_size - len(blob))

    @classmethod
    def decode(cls, data: bytes) -> "MapNode":
        blob = data.rstrip(b"\x00")
        if not blob:
            return cls(entries=[])
        doc = json.loads(blob.decode("ascii"))
        return cls(
            entries=[MapEntry.from_wire(raw) for raw in doc.get("entries", [])],
            next_free_page=doc.get("next_free_page"),
        )

    def entry_covering(self, address: int) -> Optional[MapEntry]:
        for entry in self.entries:
            if entry.range.contains(address):
                return entry
        return None

    def replace_entry(self, old: MapEntry, new: List[MapEntry]) -> None:
        self.entries.remove(old)
        self.entries.extend(new)
        self.entries.sort(key=lambda e: e.range.start)

    def coalesce_free(self) -> None:
        """Merge adjacent FREE entries (within this node only; the
        paper explicitly skips cross-node defragmentation)."""
        merged: List[MapEntry] = []
        for entry in self.entries:
            if (
                merged
                and merged[-1].state is EntryState.FREE
                and entry.state is EntryState.FREE
                and merged[-1].range.end == entry.range.start
            ):
                merged[-1] = MapEntry(
                    range=merged[-1].range.union(entry.range),
                    state=EntryState.FREE,
                )
            else:
                merged.append(entry)
        self.entries = merged


class MapIO(abc.ABC):
    """Page access the address map needs from its host daemon.

    All methods are protocol generators (they may yield Futures); the
    address map composes them with ``yield from``.
    """

    page_size: int = DEFAULT_PAGE_SIZE

    @abc.abstractmethod
    def lock_page(self, page_addr: int, mode: LockMode) -> ProtocolGen:
        """Acquire a lock context on one system-region page."""

    @abc.abstractmethod
    def read_page(self, ctx: Any, page_addr: int) -> ProtocolGen:
        """Read the page's bytes under ``ctx``."""

    @abc.abstractmethod
    def write_page(self, ctx: Any, page_addr: int, data: bytes) -> ProtocolGen:
        """Write the page's bytes under ``ctx``."""

    @abc.abstractmethod
    def unlock_page(self, ctx: Any) -> ProtocolGen:
        """Release a context (release-type: must not raise to caller)."""


def initial_root_node() -> MapNode:
    """Tree contents at cluster bootstrap.

    The system region itself is the first reservation (homed at the
    bootstrap node, node 0); everything else is one huge FREE entry.
    """
    free_start = SYSTEM_REGION.end
    return MapNode(
        entries=[
            MapEntry(SYSTEM_REGION, EntryState.RESERVED, (0,)),
            MapEntry(
                AddressRange.from_bounds(free_start, MAX_ADDRESS + 1),
                EntryState.FREE,
            ),
        ],
        next_free_page=ROOT_PAGE + DEFAULT_PAGE_SIZE,
    )


class AddressMap:
    """Generator-based operations on the distributed tree.

    Mutating operations take a write lock on the root page first; the
    root write token therefore serialises all map mutations, while
    lookups run against (possibly stale) local replicas under read
    locks — exactly the relaxed-consistency posture of Section 3.1.
    """

    def __init__(self, io: MapIO) -> None:
        self.io = io

    # --- Read path --------------------------------------------------------

    def lookup(self, address: int) -> ProtocolGen:
        """Find the entry covering ``address``.

        Returns the :class:`MapEntry` (never a SUBTREE entry; descends
        through them).  The result may be stale; callers fall back to
        the cluster walk when acting on it fails (Section 3.1).
        """
        page_addr = ROOT_PAGE
        for _depth in range(64):   # tree depth bound; guards cycles
            node = yield from self._read_node(page_addr, LockMode.READ)
            entry = node.entry_covering(address)
            if entry is None:
                raise NotReserved(
                    f"address {address:#x} not described by the address map"
                )
            if entry.state is not EntryState.SUBTREE:
                return entry
            page_addr = entry.child_page
        raise KhazanaError("address-map descent exceeded depth bound")

    def enumerate_reserved(self) -> ProtocolGen:
        """All RESERVED entries (for diagnostics and fsck-style tools)."""
        found: List[MapEntry] = []
        yield from self._collect(ROOT_PAGE, EntryState.RESERVED, found)
        return found

    def _collect(self, page_addr: int, state: EntryState,
                 out: List[MapEntry]) -> ProtocolGen:
        node = yield from self._read_node(page_addr, LockMode.READ)
        for entry in node.entries:
            if entry.state is EntryState.SUBTREE:
                yield from self._collect(entry.child_page, state, out)
            elif entry.state is state:
                out.append(entry)

    # --- Mutations -----------------------------------------------------------

    def find_free(self, size: int, alignment: int) -> ProtocolGen:
        """First-fit search for a FREE range of at least ``size`` bytes
        aligned to ``alignment``.  Read-only; the caller then calls a
        mutation with the returned range."""
        result = yield from self._find_free_in(ROOT_PAGE, size, alignment)
        if result is None:
            raise AddressSpaceExhausted(
                f"no free extent of {size} bytes found"
            )
        return result

    def _find_free_in(self, page_addr: int, size: int,
                      alignment: int) -> ProtocolGen:
        node = yield from self._read_node(page_addr, LockMode.READ)
        for entry in node.entries:
            if entry.state is EntryState.SUBTREE:
                found = yield from self._find_free_in(
                    entry.child_page, size, alignment
                )
                if found is not None:
                    return found
            elif entry.state is EntryState.FREE:
                start = -(-entry.range.start // alignment) * alignment
                if start + size <= entry.range.end:
                    return AddressRange(start, size)
        return None

    def reserve(self, target: AddressRange,
                home_nodes: Tuple[int, ...]) -> ProtocolGen:
        """Mark ``target`` RESERVED with the given home nodes.

        The range must lie entirely within a single FREE or DELEGATED
        entry (reservations are carved from free space or from a chunk
        delegated to the reserving node)."""
        yield from self._carve(
            target,
            acceptable=(EntryState.FREE, EntryState.DELEGATED),
            new_state=EntryState.RESERVED,
            new_data=tuple(home_nodes),
        )

    def delegate(self, target: AddressRange, node_id: int) -> ProtocolGen:
        """Hand a chunk of FREE space to ``node_id`` to manage locally
        (the cluster manager calls this to satisfy SPACE_REQUESTs)."""
        yield from self._carve(
            target,
            acceptable=(EntryState.FREE,),
            new_state=EntryState.DELEGATED,
            new_data=(node_id,),
        )

    def release(self, target: AddressRange) -> ProtocolGen:
        """Return a RESERVED range to FREE (unreserve)."""
        yield from self._carve(
            target,
            acceptable=(EntryState.RESERVED,),
            new_state=EntryState.FREE,
            new_data=(),
        )

    def extend(self, target: AddressRange, new_length: int,
               requester: Optional[int] = None) -> ProtocolGen:
        """Grow a RESERVED range in place to ``new_length`` bytes.

        Supports Section 4.1's alternative file layout ("resize the
        region whenever the file size changes").  The extension space
        immediately following the region must be FREE or DELEGATED and
        described by the same tree node — growing across map-node
        boundaries raises ``AddressSpaceExhausted`` and the caller
        falls back to copying into a fresh reservation.
        """
        if new_length <= target.length:
            raise InvalidRange(
                f"extend needs a larger size, got {new_length} <= "
                f"{target.length}"
            )
        grown = AddressRange(target.start, new_length)
        root_ctx = yield from self.io.lock_page(ROOT_PAGE, LockMode.WRITE)
        try:
            raw = yield from self.io.read_page(root_ctx, ROOT_PAGE)
            root = MapNode.decode(raw)
            yield from self._extend_in(ROOT_PAGE, root, target, grown,
                                       requester)
            yield from self.io.write_page(
                root_ctx, ROOT_PAGE, root.encode(self.io.page_size)
            )
        finally:
            yield from self.io.unlock_page(root_ctx)

    def _extend_in(self, page_addr: int, node: MapNode,
                   target: AddressRange, grown: AddressRange,
                   requester: Optional[int]) -> ProtocolGen:
        entry = node.entry_covering(target.start)
        if entry is None:
            raise NotReserved(f"range {target} not in the address map")
        if entry.state is EntryState.SUBTREE:
            child_addr = entry.child_page
            child_ctx = yield from self.io.lock_page(
                child_addr, LockMode.WRITE
            )
            try:
                raw = yield from self.io.read_page(child_ctx, child_addr)
                child_node = MapNode.decode(raw)
                yield from self._extend_in(
                    child_addr, child_node, target, grown, requester
                )
                yield from self.io.write_page(
                    child_ctx, child_addr,
                    child_node.encode(self.io.page_size),
                )
            finally:
                yield from self.io.unlock_page(child_ctx)
            return
        if entry.state is not EntryState.RESERVED or entry.range != target:
            raise NotReserved(
                f"extend target {target} does not match map entry "
                f"{entry.range} ({entry.state.value})"
            )
        # Collect the run of FREE/DELEGATED entries after the region
        # until the grown range is covered.
        consumed: List[MapEntry] = []
        position = target.end
        while position < grown.end:
            tail = node.entry_covering(position)
            if tail is None or tail.state not in (
                EntryState.FREE, EntryState.DELEGATED
            ):
                raise AddressSpaceExhausted(
                    f"space after {target} is not free at {position:#x} "
                    f"(found {tail.state.value if tail else 'a map-node boundary'})"
                )
            if (
                tail.state is EntryState.DELEGATED
                and requester is not None
                and tail.manager_node != requester
            ):
                # Never steal space from another node's local pool —
                # its daemon would later hand out the same addresses.
                raise AddressSpaceExhausted(
                    f"space after {target} is delegated to node "
                    f"{tail.manager_node}, not the requester"
                )
            consumed.append(tail)
            position = tail.range.end

        node.replace_entry(
            entry, [MapEntry(grown, EntryState.RESERVED, entry.data)]
        )
        for tail in consumed:
            remainder = tail.range.subtract(
                AddressRange.from_bounds(target.end, grown.end)
            )
            node.replace_entry(
                tail,
                [MapEntry(r, tail.state, tail.data) for r in remainder],
            )
        node.coalesce_free()

    def update_homes(self, target: AddressRange,
                     home_nodes: Tuple[int, ...]) -> ProtocolGen:
        """Refresh the home-node list of an existing reservation."""
        yield from self._carve(
            target,
            acceptable=(EntryState.RESERVED,),
            new_state=EntryState.RESERVED,
            new_data=tuple(home_nodes),
        )

    # --- Internals ------------------------------------------------------------

    def _read_node(self, page_addr: int, mode: LockMode) -> ProtocolGen:
        ctx = yield from self.io.lock_page(page_addr, mode)
        try:
            raw = yield from self.io.read_page(ctx, page_addr)
        finally:
            yield from self.io.unlock_page(ctx)
        return MapNode.decode(raw)

    def _carve(
        self,
        target: AddressRange,
        acceptable: Tuple[EntryState, ...],
        new_state: EntryState,
        new_data: Tuple[int, ...],
    ) -> ProtocolGen:
        """Rewrite the entry containing ``target``, splitting as needed.

        Holds a write lock on the root page for the duration (the map
        mutation mutex) plus a write lock on the leaf node touched.
        """
        root_ctx = yield from self.io.lock_page(ROOT_PAGE, LockMode.WRITE)
        try:
            raw = yield from self.io.read_page(root_ctx, ROOT_PAGE)
            root = MapNode.decode(raw)
            yield from self._carve_in(
                ROOT_PAGE, root, root, target,
                acceptable, new_state, new_data,
            )
            # Persist the root: its entries may have changed, and tree
            # splits anywhere below bump its next_free_page counter.
            yield from self.io.write_page(
                root_ctx, ROOT_PAGE, root.encode(self.io.page_size)
            )
        finally:
            yield from self.io.unlock_page(root_ctx)

    def _carve_in(
        self,
        page_addr: int,
        node: MapNode,
        root: MapNode,
        target: AddressRange,
        acceptable: Tuple[EntryState, ...],
        new_state: EntryState,
        new_data: Tuple[int, ...],
    ) -> ProtocolGen:
        entry = node.entry_covering(target.start)
        if entry is None:
            raise NotReserved(
                f"range {target} not described by the address map"
            )
        if entry.state is EntryState.SUBTREE:
            child_addr = entry.child_page
            child_ctx = yield from self.io.lock_page(
                child_addr, LockMode.WRITE
            )
            try:
                raw = yield from self.io.read_page(child_ctx, child_addr)
                child_node = MapNode.decode(raw)
                yield from self._carve_in(
                    child_addr, child_node, root, target,
                    acceptable, new_state, new_data,
                )
                yield from self.io.write_page(
                    child_ctx, child_addr, child_node.encode(self.io.page_size)
                )
            finally:
                yield from self.io.unlock_page(child_ctx)
            return

        if not entry.range.contains_range(target):
            raise InvalidRange(
                f"range {target} straddles address-map entries "
                f"(entry is {entry.range})"
            )
        if entry.state not in acceptable:
            if new_state is EntryState.RESERVED:
                raise AlreadyReserved(
                    f"range {target} is {entry.state.value}, not free"
                )
            raise NotReserved(
                f"range {target} is {entry.state.value}; expected one of "
                f"{[s.value for s in acceptable]}"
            )

        pieces: List[MapEntry] = []
        if entry.range.start < target.start:
            pieces.append(
                MapEntry(
                    AddressRange.from_bounds(entry.range.start, target.start),
                    entry.state, entry.data,
                )
            )
        pieces.append(MapEntry(target, new_state, new_data))
        if target.end < entry.range.end:
            pieces.append(
                MapEntry(
                    AddressRange.from_bounds(target.end, entry.range.end),
                    entry.state, entry.data,
                )
            )
        node.replace_entry(entry, pieces)
        node.coalesce_free()

        if len(node.entries) > MAX_ENTRIES:
            yield from self._split(page_addr, node, root)
        # The caller persists this node (the root in _carve, a child in
        # the SUBTREE branch above).

    def _split(self, page_addr: int, node: MapNode, root: MapNode) -> ProtocolGen:
        """Replace an overflowing node's entries with two SUBTREE
        children, allocating child pages from the root's bump counter."""
        mid = len(node.entries) // 2
        left_entries = node.entries[:mid]
        right_entries = node.entries[mid:]
        left_addr = self._alloc_tree_page(root)
        right_addr = self._alloc_tree_page(root)

        for child_addr, child_entries in (
            (left_addr, left_entries),
            (right_addr, right_entries),
        ):
            child = MapNode(entries=child_entries)
            ctx = yield from self.io.lock_page(child_addr, LockMode.WRITE)
            try:
                yield from self.io.write_page(
                    ctx, child_addr, child.encode(self.io.page_size)
                )
            finally:
                yield from self.io.unlock_page(ctx)

        left_range = AddressRange.from_bounds(
            left_entries[0].range.start, left_entries[-1].range.end
        )
        right_range = AddressRange.from_bounds(
            right_entries[0].range.start, right_entries[-1].range.end
        )
        node.entries = [
            MapEntry(left_range, EntryState.SUBTREE, (left_addr,)),
            MapEntry(right_range, EntryState.SUBTREE, (right_addr,)),
        ]

    def _alloc_tree_page(self, root: MapNode) -> int:
        if root.next_free_page is None:
            raise KhazanaError("root node lost its tree-page allocator")
        page_addr = root.next_free_page
        if page_addr + self.io.page_size > SYSTEM_REGION.end:
            raise AddressSpaceExhausted(
                "system region out of address-map tree pages"
            )
        root.next_free_page = page_addr + self.io.page_size
        return page_addr
