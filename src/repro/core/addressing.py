"""The 128-bit global address space.

Khazana regions are "addressed using 128-bit identifiers, and there is
no direct correspondence between Khazana addresses and an application's
virtual addresses" (paper Section 2).  Addresses are modelled as plain
Python integers in ``[0, 2**128)``; :class:`AddressRange` provides the
interval arithmetic every other subsystem builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

ADDRESS_BITS = 128
MAX_ADDRESS = (1 << ADDRESS_BITS) - 1

#: Default page size: "By default, regions are made up of 4-kilobyte
#: pages to match the most common machine virtual memory page size."
DEFAULT_PAGE_SIZE = 4096

#: Larger page sizes clients may request at reserve time (powers of two).
VALID_PAGE_SIZES = tuple(DEFAULT_PAGE_SIZE << i for i in range(8))


def check_address(address: int) -> int:
    """Validate that ``address`` lies within the global address space."""
    if not isinstance(address, int) or isinstance(address, bool):
        raise TypeError(f"address must be int, got {type(address).__name__}")
    if address < 0 or address > MAX_ADDRESS:
        raise ValueError(f"address {address:#x} outside 128-bit space")
    return address


def format_address(address: int) -> str:
    """Render a 128-bit address as grouped hex, e.g. ``0000:...:1000``.

    Only used for human-facing messages; Khazana itself never parses
    these strings.
    """
    check_address(address)
    digits = f"{address:032x}"
    return ":".join(digits[i : i + 8] for i in range(0, 32, 8))


def is_valid_page_size(page_size: int) -> bool:
    """True when ``page_size`` is 4 KiB or a larger supported power of two."""
    return page_size in VALID_PAGE_SIZES


@dataclass(frozen=True, order=True)
class AddressRange:
    """A half-open interval ``[start, start + length)`` of global space."""

    start: int
    length: int

    def __post_init__(self) -> None:
        check_address(self.start)
        if self.length <= 0:
            raise ValueError(f"range length must be positive, got {self.length}")
        if self.start + self.length - 1 > MAX_ADDRESS:
            raise ValueError("range extends beyond the 128-bit address space")

    @classmethod
    def from_bounds(cls, start: int, end: int) -> "AddressRange":
        """Range covering ``[start, end)``."""
        return cls(start, end - start)

    @property
    def end(self) -> int:
        """One past the last address in the range."""
        return self.start + self.length

    @property
    def last(self) -> int:
        """The last address contained in the range."""
        return self.start + self.length - 1

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def contains_range(self, other: "AddressRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "AddressRange") -> Optional["AddressRange"]:
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return AddressRange.from_bounds(start, end)

    def adjacent_to(self, other: "AddressRange") -> bool:
        """True when the two ranges abut without overlapping."""
        return self.end == other.start or other.end == self.start

    def union(self, other: "AddressRange") -> "AddressRange":
        """Union of overlapping or adjacent ranges."""
        if not (self.overlaps(other) or self.adjacent_to(other)):
            raise ValueError(f"{self} and {other} are disjoint; cannot union")
        start = min(self.start, other.start)
        end = max(self.end, other.end)
        return AddressRange.from_bounds(start, end)

    def subtract(self, other: "AddressRange") -> List["AddressRange"]:
        """Pieces of ``self`` not covered by ``other`` (0, 1 or 2 ranges)."""
        if not self.overlaps(other):
            return [self]
        pieces: List[AddressRange] = []
        if self.start < other.start:
            pieces.append(AddressRange.from_bounds(self.start, other.start))
        if other.end < self.end:
            pieces.append(AddressRange.from_bounds(other.end, self.end))
        return pieces

    def split_at(self, address: int) -> Tuple["AddressRange", "AddressRange"]:
        """Split into ``[start, address)`` and ``[address, end)``."""
        if not (self.start < address < self.end):
            raise ValueError(
                f"split point {address:#x} not strictly inside {self}"
            )
        return (
            AddressRange.from_bounds(self.start, address),
            AddressRange.from_bounds(address, self.end),
        )

    # --- Page arithmetic ---------------------------------------------------

    def page_aligned(self, page_size: int) -> bool:
        return self.start % page_size == 0 and self.length % page_size == 0

    def align_to_pages(self, page_size: int) -> "AddressRange":
        """Smallest page-aligned range covering ``self``."""
        start = (self.start // page_size) * page_size
        end = -(-self.end // page_size) * page_size
        return AddressRange.from_bounds(start, end)

    def pages(self, page_size: int) -> Iterator[int]:
        """Base addresses of every page overlapping this range."""
        aligned = self.align_to_pages(page_size)
        for base in range(aligned.start, aligned.end, page_size):
            yield base

    def page_count(self, page_size: int) -> int:
        aligned = self.align_to_pages(page_size)
        return aligned.length // page_size

    def __str__(self) -> str:
        return f"[{format_address(self.start)} +{self.length:#x})"
