"""Client library: sessions, synchronous wrappers, mapped views.

"Typically an application process (client) interacts with Khazana
through library routines" (paper Section 2).  A
:class:`KhazanaSession` binds an application principal to one daemon
and exposes the paper's operation set — reserve/unreserve,
allocate/free, lock/unlock, read/write, get/set attributes — as plain
synchronous calls (each call drives the simulation until its protocol
task completes).

:class:`MappedRange` approximates the paper's memory-mapped access
style: a locked window of global memory addressed by offsets.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.addressing import AddressRange
from repro.core.attributes import RegionAttributes
from repro.core.errors import KhazanaError, KhazanaTimeout
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor
from repro.net.clock import EventScheduler
from repro.net.tasks import Future

#: Backstop against runaway protocols when driving the simulator from
#: a synchronous client call.
MAX_STEPS_PER_CALL = 5_000_000


class SyncDriver:
    """Runs protocol tasks to completion by stepping the scheduler."""

    def __init__(self, scheduler: EventScheduler) -> None:
        self.scheduler = scheduler

    def wait(self, future: Future) -> Any:
        steps = 0
        while not future.done:
            if not self.scheduler.step():
                raise KhazanaError(
                    f"deadlock: {future.label!r} cannot complete and the "
                    "event queue is empty"
                )
            steps += 1
            if steps > MAX_STEPS_PER_CALL:
                raise KhazanaTimeout(
                    f"operation {future.label!r} did not complete within "
                    f"{MAX_STEPS_PER_CALL} simulation events"
                )
        return future.result()


class MappedRange:
    """A locked window of global memory with offset-based access.

    Mimics "mapping parts of global memory to their virtual memory
    space and reading and writing to this mapped section" (Section 2).
    Usable as a context manager; exiting unlocks.
    """

    def __init__(self, session: "KhazanaSession", ctx: LockContext) -> None:
        self._session = session
        self.ctx = ctx

    @property
    def base(self) -> int:
        return self.ctx.range.start

    @property
    def length(self) -> int:
        return self.ctx.range.length

    def read(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        if length is None:
            length = self.length - offset
        return self._session.read(self.ctx, self.base + offset, length)

    def write(self, offset: int, data: bytes) -> None:
        self._session.write(self.ctx, self.base + offset, data)

    def unlock(self) -> None:
        self._session.unlock(self.ctx)

    def __enter__(self) -> "MappedRange":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.unlock()


class KhazanaSession:
    """A client's connection to Khazana through one local daemon."""

    def __init__(self, daemon: Any, driver: SyncDriver,
                 principal: str = "user") -> None:
        self.daemon = daemon
        self.driver = driver
        self.principal = principal

    @property
    def node_id(self) -> int:
        return self.daemon.node_id

    # --- Asynchronous (future-returning) API ------------------------------

    def submit(self, task: Generator, label: str) -> Future:
        """Run a raw protocol generator on this session's daemon."""
        return self.daemon.spawn(task, label=label)

    def reserve_async(self, size: int,
                      attrs: Optional[RegionAttributes] = None) -> Future:
        attrs = attrs if attrs is not None else RegionAttributes()
        return self.submit(
            self.daemon.op_reserve(size, attrs, self.principal), "reserve"
        )

    def lock_async(self, address: int, length: int, mode: LockMode) -> Future:
        return self.submit(
            self.daemon.op_lock(
                AddressRange(address, length), mode, self.principal
            ),
            "lock",
        )

    # --- Synchronous API (the paper's operation set) -----------------------

    def reserve(self, size: int,
                attrs: Optional[RegionAttributes] = None) -> RegionDescriptor:
        """Reserve a region of global address space."""
        return self.driver.wait(self.reserve_async(size, attrs))

    def unreserve(self, rid: int) -> None:
        """Unreserve a region (storage reclaim happens in background)."""
        self.driver.wait(
            self.submit(self.daemon.op_unreserve(rid), "unreserve")
        )

    def allocate(self, rid: int, offset: Optional[int] = None,
                 length: Optional[int] = None) -> None:
        """Allocate physical storage for a region or a subrange of it."""
        subrange = None
        if offset is not None or length is not None:
            if offset is None or length is None:
                raise ValueError("allocate needs both offset and length")
            subrange = AddressRange(rid + offset, length)
        self.driver.wait(
            self.submit(self.daemon.op_allocate(rid, subrange), "allocate")
        )

    def free(self, rid: int, offset: int, length: int) -> None:
        """Free physical storage backing part of a region."""
        self.driver.wait(
            self.submit(
                self.daemon.op_free(rid, AddressRange(rid + offset, length)),
                "free",
            )
        )

    def lock(self, address: int, length: int, mode: LockMode) -> LockContext:
        """Lock a range; returns the lock context for read/write calls."""
        return self.driver.wait(self.lock_async(address, length, mode))

    def unlock(self, ctx: LockContext) -> None:
        """Release a lock context."""
        self.driver.wait(self.submit(self.daemon.op_unlock(ctx), "unlock"))

    def read(self, ctx: LockContext, address: int, length: int) -> bytes:
        """Read bytes under a lock context.

        RAM-resident reads complete synchronously on the daemon's fast
        path; anything else (cold page, probe active, odd arguments)
        submits the full protocol task.
        """
        fast = self.daemon.read_fast(ctx, address, length)
        if fast is not None:
            return fast
        return self.driver.wait(
            self.submit(
                self.daemon.op_read(ctx, AddressRange(address, length)),
                "read",
            )
        )

    def write(self, ctx: LockContext, address: int, data: bytes) -> None:
        """Write bytes under a lock context.

        Mirrors :meth:`read`: writes that only touch RAM-resident (or
        fully overwritten) pages run synchronously, others take the
        protocol path.
        """
        if self.daemon.write_fast(ctx, address, data):
            return
        self.driver.wait(
            self.submit(
                self.daemon.op_write(
                    ctx, AddressRange(address, len(data)), data
                ),
                "write",
            )
        )

    def resize(self, rid: int, new_size: int) -> RegionDescriptor:
        """Grow or shrink a region in place (Section 4.1's alternative
        layout: "resize the region whenever the file size changes")."""
        return self.driver.wait(
            self.submit(
                self.daemon.op_resize_region(rid, new_size), "resize"
            )
        )

    def migrate(self, rid: int, new_home: int) -> RegionDescriptor:
        """Move a region's primary home to another node."""
        return self.driver.wait(
            self.submit(
                self.daemon.op_migrate_region(rid, new_home), "migrate"
            )
        )

    def get_attributes(self, rid: int) -> RegionAttributes:
        """Fetch a region's attributes."""
        return self.driver.wait(
            self.submit(self.daemon.op_get_attributes(rid), "get_attrs")
        )

    def set_attributes(self, rid: int, attrs: RegionAttributes) -> RegionDescriptor:
        """Replace a region's attributes (requires admin rights)."""
        return self.driver.wait(
            self.submit(
                self.daemon.op_set_attributes(rid, attrs, self.principal),
                "set_attrs",
            )
        )

    # --- Convenience ---------------------------------------------------------

    def map(self, address: int, length: int, mode: LockMode) -> MappedRange:
        """Lock a range and return an offset-addressed view of it."""
        return MappedRange(self, self.lock(address, length, mode))

    def read_at(self, address: int, length: int) -> bytes:
        """One-shot locked read of a range."""
        ctx = self.lock(address, length, LockMode.READ)
        try:
            return self.read(ctx, address, length)
        finally:
            self.unlock(ctx)

    def write_at(self, address: int, data: bytes) -> None:
        """One-shot locked write of a range."""
        ctx = self.lock(address, len(data), LockMode.WRITE)
        try:
            self.write(ctx, address, data)
        finally:
            self.unlock(ctx)
