"""Region descriptors.

"Khazana maintains a global region descriptor associated with each
region that stores various region attributes such as its security
attributes, page size, and desired consistency protocol.  In addition,
each region has a home node that maintains a copy of the region's
descriptor and keeps track of all the nodes maintaining copies of the
region's data." (paper Section 3.1)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.core.addressing import AddressRange
from repro.core.attributes import RegionAttributes

_version_counter = itertools.count(1)


@dataclass(frozen=True)
class RegionDescriptor:
    """Authoritative metadata for one region.

    The region is identified by the start of its address range (its
    *region id*).  ``home_nodes`` is the ordered list of nodes that
    hold authoritative descriptor copies and page-location directories;
    the first reachable home node services lookups.  ``version``
    increases on every attribute change so stale cached descriptors can
    be detected and refreshed.
    """

    range: AddressRange
    attrs: RegionAttributes
    home_nodes: Tuple[int, ...]
    allocated: bool = False
    version: int = field(default_factory=lambda: next(_version_counter))

    def __post_init__(self) -> None:
        if not self.home_nodes:
            raise ValueError("a region must have at least one home node")
        if self.range.start % self.attrs.page_size != 0:
            raise ValueError(
                f"region start {self.range.start:#x} not aligned to "
                f"page size {self.attrs.page_size}"
            )
        if self.range.length % self.attrs.page_size != 0:
            raise ValueError(
                f"region length {self.range.length:#x} not a multiple of "
                f"page size {self.attrs.page_size}"
            )

    @property
    def rid(self) -> int:
        """Region id: the first global address of the region."""
        return self.range.start

    @property
    def page_size(self) -> int:
        return self.attrs.page_size

    @property
    def primary_home(self) -> int:
        return self.home_nodes[0]

    def pages(self) -> List[int]:
        """Base addresses of every page in the region."""
        return list(self.range.pages(self.page_size))

    def page_base(self, address: int) -> int:
        """Base address of the page containing ``address``."""
        if not self.range.contains(address):
            raise ValueError(
                f"address {address:#x} outside region {self.range}"
            )
        offset = address - self.range.start
        return self.range.start + (offset // self.page_size) * self.page_size

    def pages_covering(self, subrange: AddressRange) -> List[int]:
        """Pages of this region that overlap ``subrange``."""
        clipped = self.range.intersection(subrange)
        if clipped is None:
            return []
        return [
            base
            for base in clipped.align_to_pages(self.page_size).pages(self.page_size)
            if self.range.contains(base)
        ]

    def with_attrs(self, attrs: RegionAttributes) -> "RegionDescriptor":
        """New descriptor version carrying updated attributes."""
        return replace(self, attrs=attrs, version=next(_version_counter))

    def with_homes(self, home_nodes: Tuple[int, ...]) -> "RegionDescriptor":
        return replace(
            self, home_nodes=tuple(home_nodes), version=next(_version_counter)
        )

    def with_allocated(self, allocated: bool) -> "RegionDescriptor":
        return replace(
            self, allocated=allocated, version=next(_version_counter)
        )

    def with_range(self, new_range: AddressRange) -> "RegionDescriptor":
        """New descriptor version for a resized region (same start)."""
        if new_range.start != self.range.start:
            raise ValueError("a region's start address is immutable")
        return replace(
            self, range=new_range, version=next(_version_counter)
        )

    # --- Wire form -----------------------------------------------------------

    def to_wire(self) -> Dict[str, object]:
        return {
            "start": self.range.start,
            "length": self.range.length,
            "attrs": self.attrs.to_wire(),
            "home_nodes": list(self.home_nodes),
            "allocated": self.allocated,
            "version": self.version,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "RegionDescriptor":
        return cls(
            range=AddressRange(int(data["start"]), int(data["length"])),
            attrs=RegionAttributes.from_wire(data["attrs"]),
            home_nodes=tuple(int(n) for n in data["home_nodes"]),
            allocated=bool(data.get("allocated", False)),
            version=int(data.get("version", 0)),
        )

    def __str__(self) -> str:
        return (
            f"region {self.range} homes={list(self.home_nodes)} "
            f"proto={self.attrs.protocol} v{self.version}"
        )
