"""MessageRouter: wire dispatch as an interceptor chain.

Replaces the old monolithic ``_wire_handlers`` table.  Every inbound
message runs through a small middleware stack before its handler:

1. :class:`DedupInterceptor` — duplicate suppression for request
   routes (retransmits of an in-progress request are dropped;
   answered ones get the cached reply resent),
2. :class:`LatencyInterceptor` — starts the per-op virtual-clock
   latency timer that :meth:`MessageRouter.reply_request` /
   :meth:`MessageRouter.reply_error` stop,
3. :class:`TraceInterceptor` — debug-logs the dispatch with the same
   batch-aware label the message trace tool renders,
4. :class:`ProbeInterceptor` — tells the race-detector probe a
   message is about to be handled (before any handler side-effect),
5. :class:`AccessNoteInterceptor` — feeds consistency traffic on
   homed regions to the migration advisor.

The chain is a plain list (:attr:`MessageRouter.interceptors`); tests
insert recorders to observe ordering.  Handlers come from the node
services (LocationService, SpaceService, the cluster-manager role) or
from :meth:`MessageRouter.cm_dispatch`, which routes a consistency
message to the owning region's CM exactly as the paper's Section 3.3
plug-in model requires.
"""

from __future__ import annotations

import logging

from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Optional,
    Tuple,
)

from repro.net.message import Message, MessageType, wire_label
from repro.core.region import RegionDescriptor

if TYPE_CHECKING:
    from repro.core.kernel import NodeKernel

logger = logging.getLogger(__name__)

#: Cached replies kept for duplicate suppression.
REPLY_CACHE_LIMIT = 2048
#: In-flight latency timers kept before the oldest is abandoned.
INFLIGHT_LIMIT = 4096


@dataclass(frozen=True)
class Route:
    """One wire registration: a handler plus its dispatch policy."""

    msg_type: Optional[MessageType]
    handler: Callable[[Message], None]
    #: Suppress retransmitted duplicates of this request type.
    dedup: bool = False
    #: This route carries consistency-protocol traffic for a region.
    cm: bool = False


class Interceptor:
    """One middleware stage.  ``handle`` either calls ``proceed()`` to
    pass the message down the chain or returns to drop it."""

    def __init__(self, router: "MessageRouter") -> None:
        self.router = router

    def handle(self, msg: Message, route: Route,
               proceed: Callable[[], None]) -> None:
        proceed()


class DedupInterceptor(Interceptor):
    """Duplicate suppression for request routes.

    Retransmitted requests must not start a second transaction:
    in-progress duplicates are dropped (the eventual reply matches
    either transmission); completed ones get the cached reply.
    """

    def handle(self, msg: Message, route: Route,
               proceed: Callable[[], None]) -> None:
        if not route.dedup or msg.request_id is None:
            proceed()
            return
        router = self.router
        key = (msg.src, msg.request_id)
        cache = router.reply_cache
        if key in cache:
            cached = cache[key]
            if cached is not None:
                router.kernel.rpc.send(cached)
            return   # in progress or already answered
        cache[key] = None
        while len(cache) > REPLY_CACHE_LIMIT:
            cache.popitem(last=False)
        proceed()


class LatencyInterceptor(Interceptor):
    """Start the virtual-clock service timer for a request.

    The matching :meth:`MessageRouter.reply_request` /
    :meth:`MessageRouter.reply_error` stops it and records the latency
    under the request's message type in ``DaemonStats.op_latency``.
    """

    def handle(self, msg: Message, route: Route,
               proceed: Callable[[], None]) -> None:
        if msg.request_id is not None:
            router = self.router
            inflight = router.inflight
            inflight[(msg.src, msg.request_id)] = (
                msg.msg_type.value, router.kernel.now
            )
            while len(inflight) > INFLIGHT_LIMIT:
                inflight.popitem(last=False)
        proceed()


class TraceInterceptor(Interceptor):
    """Debug-log each dispatch with the batch-aware wire label."""

    def handle(self, msg: Message, route: Route,
               proceed: Callable[[], None]) -> None:
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "node %d: dispatch %s from %d",
                self.router.kernel.node_id, wire_label(msg), msg.src,
            )
        proceed()


class ProbeInterceptor(Interceptor):
    """Hand the message to the race-detector probe before the handler
    runs, so detector bookkeeping precedes every handler side-effect."""

    def handle(self, msg: Message, route: Route,
               proceed: Callable[[], None]) -> None:
        kernel = self.router.kernel
        if kernel.probe.enabled:
            kernel.probe.message_dispatched(kernel.node_id, msg)
        proceed()


class AccessNoteInterceptor(Interceptor):
    """Feed the load-aware migration policy: consistency traffic on a
    homed region reveals who actually uses it."""

    def handle(self, msg: Message, route: Route,
               proceed: Callable[[], None]) -> None:
        if route.cm:
            kernel = self.router.kernel
            rid = msg.payload.get("rid")
            if rid is not None and rid in kernel.homed_regions:
                kernel.migration_advisor.note_access(rid, msg.src)
        proceed()


class MessageRouter:
    """Registers wire routes and runs the interceptor chain."""

    def __init__(self, kernel: "NodeKernel") -> None:
        self.kernel = kernel
        self.routes: Dict[MessageType, Route] = {}
        #: (src, request_id) -> cached reply (None while in progress).
        self.reply_cache: "OrderedDict[Tuple[int, int], Optional[Message]]" = (
            OrderedDict()
        )
        #: (src, request_id) -> (op name, virtual start time).
        self.inflight: "OrderedDict[Tuple[int, int], Tuple[str, float]]" = (
            OrderedDict()
        )
        self.interceptors = [
            DedupInterceptor(self),
            LatencyInterceptor(self),
            TraceInterceptor(self),
            ProbeInterceptor(self),
            AccessNoteInterceptor(self),
        ]

    # ------------------------------------------------------------------
    # Registration and dispatch
    # ------------------------------------------------------------------

    def register(self, msg_type: MessageType,
                 handler: Callable[[Message], None],
                 dedup: bool = False, cm: bool = False) -> Route:
        route = Route(msg_type=msg_type, handler=handler, dedup=dedup, cm=cm)
        self.routes[msg_type] = route
        self.kernel.rpc.on(
            msg_type, lambda msg, route=route: self.dispatch(route, msg)
        )
        return route

    def dispatch(self, route: Route, msg: Message) -> None:
        """Walk the interceptor chain, then the handler.

        The chain list is read live so tests (and future middleware)
        can insert stages after construction.
        """
        interceptors = self.interceptors

        def run(index: int) -> None:
            if index >= len(interceptors):
                route.handler(msg)
                return
            interceptors[index].handle(msg, route, lambda: run(index + 1))

        run(0)

    def dedup(self, handler: Callable[[Message], None]):
        """Wrap a bare handler with the full dispatch chain including
        duplicate suppression (for ad-hoc ``rpc.on`` registrations)."""
        route = Route(msg_type=None, handler=handler, dedup=True)
        return lambda msg: self.dispatch(route, msg)

    # ------------------------------------------------------------------
    # Replies (cached for dedup, timed for latency stats)
    # ------------------------------------------------------------------

    def reply_request(self, msg: Message, msg_type: MessageType,
                      payload: Optional[Dict[str, Any]] = None) -> None:
        """Send (and cache) the reply to a request."""
        self._finish(msg, msg.reply(msg_type, payload or {}))

    def reply_error(self, msg: Message, code: str, detail: str = "") -> None:
        self._finish(msg, msg.error_reply(code, detail))

    def _finish(self, msg: Message, reply: Message) -> None:
        if msg.request_id is not None:
            self.reply_cache[(msg.src, msg.request_id)] = reply
            timer = self.inflight.pop((msg.src, msg.request_id), None)
            if timer is not None:
                op, started = timer
                self.kernel.stats.note_latency(
                    op, self.kernel.now - started
                )
        self.kernel.rpc.send(reply)

    # ------------------------------------------------------------------
    # The consistency-manager route factory (paper Section 3.3)
    # ------------------------------------------------------------------

    def cm_dispatch(self, method_name: str) -> Callable[[Message], None]:
        """Route a consistency message to the region's CM."""
        kernel = self.kernel

        def handler(msg: Message) -> None:
            rid = msg.payload.get("rid")
            desc = kernel.homed_regions.get(rid)
            if desc is None:
                desc = kernel.region_directory.get(rid)
            if desc is None and "descriptor" in msg.payload:
                desc = RegionDescriptor.from_wire(msg.payload["descriptor"])
                kernel.adopt_descriptor(desc)
            if desc is None:
                if msg.request_id is not None:
                    self.reply_error(msg, "region_not_found",
                                     f"node {kernel.node_id} does not know "
                                     f"region {rid:#x}")
                return
            cm = kernel.consistency_manager(desc.attrs.protocol)
            getattr(cm, method_name)(desc, msg)

        return handler

    # ------------------------------------------------------------------
    # The standard route table
    # ------------------------------------------------------------------

    def wire(self) -> None:
        """Register every wire route of a Khazana node."""
        kernel = self.kernel
        reg = self.register
        reg(MessageType.REGION_LOOKUP,
            kernel.location.handle_region_lookup, dedup=True)
        reg(MessageType.DESCRIPTOR_FETCH,
            kernel.space.handle_descriptor_fetch, dedup=True)
        reg(MessageType.DESCRIPTOR_UPDATE,
            kernel.space.handle_descriptor_update)
        reg(MessageType.REGION_UNRESERVE,
            kernel.space.handle_region_unreserve, dedup=True)
        reg(MessageType.ALLOC_REQUEST,
            kernel.space.handle_alloc_request, dedup=True)
        reg(MessageType.FREE_REQUEST,
            kernel.space.handle_free_request, dedup=True)
        reg(MessageType.LOCK_REQUEST,
            self.cm_dispatch("handle_lock_request"), dedup=True, cm=True)
        reg(MessageType.PAGE_FETCH,
            self.cm_dispatch("handle_page_fetch"), dedup=True, cm=True)
        reg(MessageType.INVALIDATE,
            self.cm_dispatch("handle_invalidate"), dedup=True, cm=True)
        reg(MessageType.UPDATE_PUSH,
            self.cm_dispatch("handle_update"), dedup=True, cm=True)
        reg(MessageType.PAGE_FETCH_BATCH,
            self.cm_dispatch("handle_page_fetch_batch"), dedup=True, cm=True)
        reg(MessageType.TOKEN_ACQUIRE_BATCH,
            self.cm_dispatch("handle_lock_request_batch"), dedup=True,
            cm=True)
        reg(MessageType.UPDATE_PUSH_BATCH,
            self.cm_dispatch("handle_update_batch"), dedup=True, cm=True)
        reg(MessageType.SHARER_REGISTER,
            self.cm_dispatch("handle_sharer_register"), cm=True)
        reg(MessageType.SHARER_UNREGISTER,
            self.cm_dispatch("handle_sharer_unregister"), cm=True)
        reg(MessageType.REPLICA_CREATE,
            kernel.space.handle_replica_create, dedup=True)
        reg(MessageType.REGION_MIGRATE,
            kernel.space.handle_region_migrate, dedup=True)
        if kernel.cluster_role is not None:
            reg(MessageType.SPACE_REQUEST,
                kernel.cluster_role.handle_space_request, dedup=True)
            reg(MessageType.CM_HINT_QUERY,
                kernel.cluster_role.handle_hint_query, dedup=True)
            reg(MessageType.CM_HINT_UPDATE,
                kernel.cluster_role.handle_hint_update)
            reg(MessageType.FREE_SPACE_REPORT,
                kernel.cluster_role.handle_free_space_report)
        # Strategy-specific routes (e.g. ring placement's RING_QUERY /
        # RING_PUBLISH and the membership join/update protocol).
        kernel.placement.wire_routes(self)
