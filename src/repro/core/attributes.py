"""Per-region attributes.

Paper Section 2: "Currently, a region's attributes include: desired
consistency level, consistency protocol, access control information,
minimum number of replicas."  Page size is fixed at reserve time.
Applications tune these per region — e.g. a clustered file server asks
for N replicas and strong consistency, while a web cache accepts a
weaker, faster protocol (Section 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.core.addressing import DEFAULT_PAGE_SIZE, is_valid_page_size
from repro.core.errors import BadPageSize
from repro.core.security import AccessControlList


class ConsistencyLevel(str, enum.Enum):
    """Client-facing statement of how fresh reads must be.

    The *level* expresses intent; the *protocol* (a string naming a
    registered consistency manager) is the mechanism.  ``default_protocol``
    maps each level to the protocol the prototype would pick.
    """

    STRICT = "strict"        # sequentially consistent (Lamport); CREW
    RELEASE = "release"      # updates visible at lock release boundaries
    EVENTUAL = "eventual"    # bounded staleness, "one or two versions old"

    def default_protocol(self) -> str:
        return _LEVEL_TO_PROTOCOL[self]


_LEVEL_TO_PROTOCOL = {
    ConsistencyLevel.STRICT: "crew",
    ConsistencyLevel.RELEASE: "release",
    ConsistencyLevel.EVENTUAL: "eventual",
}


@dataclass(frozen=True)
class RegionAttributes:
    """Attributes attached to a region at reserve time.

    ``consistency_protocol`` of ``None`` means "use the default for the
    consistency level".  ``min_replicas`` of N asks Khazana to keep at
    least N physical copies of every allocated page, for N-1 redundancy
    (paper Sections 1 and 3.5).
    """

    consistency_level: ConsistencyLevel = ConsistencyLevel.STRICT
    consistency_protocol: Optional[str] = None
    min_replicas: int = 1
    page_size: int = DEFAULT_PAGE_SIZE
    acl: AccessControlList = field(default_factory=AccessControlList.open_access)

    def __post_init__(self) -> None:
        if not is_valid_page_size(self.page_size):
            raise BadPageSize(
                f"page size {self.page_size} is not 4 KiB or a supported "
                "larger power of two"
            )
        if self.min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )

    @property
    def protocol(self) -> str:
        """The effective consistency protocol name."""
        if self.consistency_protocol is not None:
            return self.consistency_protocol
        return self.consistency_level.default_protocol()

    def with_acl(self, acl: AccessControlList) -> "RegionAttributes":
        return replace(self, acl=acl)

    def with_replicas(self, min_replicas: int) -> "RegionAttributes":
        return replace(self, min_replicas=min_replicas)

    # --- Wire form -----------------------------------------------------------

    def to_wire(self) -> Dict[str, object]:
        return {
            "consistency_level": self.consistency_level.value,
            "consistency_protocol": self.consistency_protocol,
            "min_replicas": self.min_replicas,
            "page_size": self.page_size,
            "acl": self.acl.to_wire(),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "RegionAttributes":
        return cls(
            consistency_level=ConsistencyLevel(
                data.get("consistency_level", ConsistencyLevel.STRICT.value)
            ),
            consistency_protocol=data.get("consistency_protocol"),
            min_replicas=int(data.get("min_replicas", 1)),
            page_size=int(data.get("page_size", DEFAULT_PAGE_SIZE)),
            acl=AccessControlList.from_wire(data.get("acl", {})),
        )
