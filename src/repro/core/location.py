"""LocationService: the region-location chain of paper Section 3.2.

"To locate a region, a Khazana node consults, in order: its local
region directory, its cluster manager, and the global address map" —
with the cluster walk of Section 3.1 as the failure fallback.  The
four tiers are visible in :attr:`DaemonStats.lookup_tiers` as
``directory`` / ``cluster`` / ``intercluster`` / ``map`` / ``walk``.

The service also owns the *hint advertising* side of the chain: a
node lazily tells its cluster manager which regions it caches, so
later lookups from other nodes resolve at tier 2 instead of walking
the map.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.core.address_map import SYSTEM_RID, EntryState
from repro.core.errors import KhazanaError, RegionNotFound
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout
from repro.net.tasks import Future

if TYPE_CHECKING:
    from repro.core.kernel import NodeKernel

ProtocolGen = Generator[Future, Any, Any]

#: Lookup RPCs fail over to the next tier quickly rather than
#: retransmitting for long: stale hints are normal (Section 3.2).
LOOKUP_POLICY = RetryPolicy(timeout=1.0, retries=1, backoff=2.0)


class LocationService:
    """Resolves addresses to region descriptors (Section 3.2)."""

    def __init__(self, kernel: "NodeKernel") -> None:
        self.kernel = kernel
        #: Regions this node has already advertised to its manager.
        self._hinted_rids: set = set()

    # ------------------------------------------------------------------
    # The four-tier lookup chain
    # ------------------------------------------------------------------

    def locate_region(self, address: int,
                      skip_directory: bool = False) -> ProtocolGen:
        """Resolve the region descriptor covering ``address``.

        Tier 1: the local region directory.  Tier 2: the cluster
        manager's hint cache.  Tier 3: the address-map tree walk plus a
        descriptor fetch from a home node.  Tier 4 (failure fallback,
        Section 3.1): the cluster walk, asking every known peer.
        """
        kernel = self.kernel
        if not skip_directory:
            cached = kernel.region_directory.find_covering(address)
            if cached is not None:
                kernel.stats.tier("directory")
                return cached

        if kernel.config.use_cluster_hints:
            found = yield from self._locate_via_cluster_manager(address)
            if found is not None:
                desc, via = found
                kernel.stats.tier(
                    "intercluster" if via == "intercluster" else "cluster"
                )
                kernel.region_directory.insert(desc)
                return desc

        desc = yield from self._locate_via_address_map(address)
        if desc is not None:
            kernel.stats.tier("map")
            kernel.region_directory.insert(desc)
            self.advertise_caching(desc)
            return desc

        desc = yield from self._cluster_walk(address)
        if desc is not None:
            kernel.stats.tier("walk")
            kernel.region_directory.insert(desc)
            return desc

        raise RegionNotFound(
            f"no reserved region covers address {address:#x}"
        )

    def _locate_via_cluster_manager(self, address: int) -> ProtocolGen:
        """Tiers 2-3: local cluster manager, then peer clusters.

        Returns ``(descriptor, via)`` or None; ``via`` distinguishes a
        local-cluster hint from an inter-cluster answer for the stats.
        """
        kernel = self.kernel
        if kernel.cluster_role is not None:
            hint = kernel.cluster_role.lookup_hint(address)
            if hint is not None:
                return hint[0], "local"
            # This node IS the manager: ask peer-cluster managers.
            for manager in kernel.config.peer_managers:
                try:
                    reply = yield kernel.rpc.request(
                        manager, MessageType.CM_HINT_QUERY,
                        {"address": address, "no_forward": True},
                        policy=LOOKUP_POLICY,
                    )
                except (RpcTimeout, RemoteError):
                    continue
                desc = RegionDescriptor.from_wire(reply.payload["descriptor"])
                for node in reply.payload.get("nodes", []):
                    kernel.cluster_role.note_region_cached(desc, int(node))
                return desc, "intercluster"
            return None
        manager = kernel.config.cluster_manager_node
        try:
            reply = yield kernel.rpc.request(
                manager, MessageType.CM_HINT_QUERY, {"address": address},
                policy=LOOKUP_POLICY,
            )
        except (RpcTimeout, RemoteError):
            return None
        return (
            RegionDescriptor.from_wire(reply.payload["descriptor"]),
            reply.payload.get("via", "local"),
        )

    def _locate_via_address_map(self, address: int) -> ProtocolGen:
        kernel = self.kernel
        try:
            entry = yield from kernel.address_map.lookup(address)
        except KhazanaError:
            return None
        if entry.state is not EntryState.RESERVED:
            return None
        for home in entry.home_nodes:
            if home == kernel.node_id:
                desc = kernel.homed_regions.get(entry.range.start)
                if desc is not None:
                    return desc
                continue
            try:
                reply = yield kernel.rpc.request(
                    home, MessageType.DESCRIPTOR_FETCH,
                    {"rid": entry.range.start},
                    policy=LOOKUP_POLICY,
                )
                return RegionDescriptor.from_wire(reply.payload["descriptor"])
            except (RpcTimeout, RemoteError):
                continue
        return None

    def _cluster_walk(self, address: int) -> ProtocolGen:
        """Ask every known peer whether it can name the region."""
        kernel = self.kernel
        peers = [n for n in kernel.network.node_ids() if n != kernel.node_id]
        for peer in peers:
            try:
                reply = yield kernel.rpc.request(
                    peer, MessageType.REGION_LOOKUP, {"address": address},
                    policy=LOOKUP_POLICY,
                )
            except (RpcTimeout, RemoteError):
                continue
            return RegionDescriptor.from_wire(reply.payload["descriptor"])
        return None

    def refresh_descriptor(self, desc: RegionDescriptor) -> ProtocolGen:
        """Fetch the authoritative descriptor from a home node."""
        kernel = self.kernel
        for home in desc.home_nodes:
            if home == kernel.node_id:
                return kernel.homed_regions.get(desc.rid, desc)
            try:
                reply = yield kernel.rpc.request(
                    home, MessageType.DESCRIPTOR_FETCH, {"rid": desc.rid},
                    policy=LOOKUP_POLICY,
                )
            except (RpcTimeout, RemoteError):
                continue
            fresh = RegionDescriptor.from_wire(reply.payload["descriptor"])
            kernel.adopt_descriptor(fresh)
            return fresh
        return desc

    # ------------------------------------------------------------------
    # Hint advertising (feeding tier 2)
    # ------------------------------------------------------------------

    def advertise_caching(self, desc: RegionDescriptor) -> None:
        """Lazily tell the cluster manager we now cache this region."""
        kernel = self.kernel
        if not kernel.config.use_cluster_hints:
            return
        if desc.rid in self._hinted_rids:
            return
        self._hinted_rids.add(desc.rid)
        if kernel.cluster_role is not None:
            kernel.cluster_role.note_region_cached(desc, kernel.node_id)
            return
        kernel.rpc.send(
            Message(
                msg_type=MessageType.CM_HINT_UPDATE,
                src=kernel.node_id,
                dst=kernel.config.cluster_manager_node,
                payload={"descriptor": desc.to_wire()},
            )
        )

    def readvertise(self, desc: RegionDescriptor) -> None:
        """Refresh the manager's hint after the descriptor changed
        (allocation, resize, migration) so later lookups from other
        nodes see the new one."""
        self._hinted_rids.discard(desc.rid)
        self.advertise_caching(desc)

    def retract(self, desc: RegionDescriptor) -> None:
        """Withdraw this node's caching hint for a gone region."""
        kernel = self.kernel
        if desc.rid not in self._hinted_rids:
            return
        self._hinted_rids.discard(desc.rid)
        if kernel.cluster_role is not None:
            kernel.cluster_role.note_region_dropped(desc.rid, kernel.node_id)
        else:
            kernel.rpc.send(
                Message(
                    msg_type=MessageType.CM_HINT_UPDATE,
                    src=kernel.node_id,
                    dst=kernel.config.cluster_manager_node,
                    payload={"descriptor": desc.to_wire(), "dropped": True},
                )
            )

    # ------------------------------------------------------------------
    # Serving the chain for peers
    # ------------------------------------------------------------------

    def handle_region_lookup(self, msg: Message) -> None:
        """Answer a tier-4 cluster-walk query from a peer."""
        kernel = self.kernel
        address = int(msg.payload["address"])
        desc = kernel.homed_regions.get(address)
        if desc is None:
            for candidate in kernel.homed_regions.values():
                if candidate.range.contains(address):
                    desc = candidate
                    break
        if desc is None:
            cached = kernel.region_directory.find_covering(address)
            if cached is not None and cached.rid != SYSTEM_RID:
                desc = cached
        if desc is None:
            kernel.reply_error(msg, "region_not_found",
                               f"node {kernel.node_id} cannot resolve "
                               f"{address:#x}")
            return
        kernel.reply_request(
            msg, MessageType.REGION_LOOKUP_REPLY,
            {"descriptor": desc.to_wire()},
        )
