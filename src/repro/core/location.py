"""Compatibility shim: region location moved behind the placement seam.

The four-tier chain of paper Section 3.2 now lives in
:mod:`repro.core.placement` as
:class:`~repro.core.placement.tiered.TieredPlacement`, one of the
pluggable :class:`~repro.core.placement.base.PlacementStrategy`
backends (``DaemonConfig.placement`` selects it; a rendezvous-hashed
ring is the other).  ``LocationService`` remains as the historical
name — the kernel's ``.location`` attribute now points at whichever
strategy the config selects.
"""

from __future__ import annotations

from repro.core.placement.base import LOOKUP_POLICY
from repro.core.placement.tiered import TieredPlacement

#: Historical alias: the pre-seam LocationService *is* the tiered chain.
LocationService = TieredPlacement

__all__ = ["LOOKUP_POLICY", "LocationService"]
