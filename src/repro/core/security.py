"""Access control for regions.

The paper lists "access control information" among the per-region
attributes (Section 2) and access-permission checks in the lookup path
(Section 3.2: "Khazana checks the region's access permissions").  This
module provides the principal/ACL model those checks use.  It is
deliberately simple — the paper defers "flexible security and
authentication mechanisms" to future work — but it is enforced on
every lock acquisition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Tuple

#: The distinguished principal that always passes ACL checks; used by
#: Khazana's own metadata traffic (address-map maintenance, replica
#: repair) and by single-user deployments.
SYSTEM_PRINCIPAL = "_khazana"

#: Wildcard principal granting rights to everyone.
ANYONE = "*"


class Right(enum.Flag):
    """Access rights a principal may hold on a region."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    ADMIN = enum.auto()   # change attributes / ACL, unreserve

    @classmethod
    def all_rights(cls) -> "Right":
        return cls.READ | cls.WRITE | cls.ADMIN


@dataclass(frozen=True)
class AccessControlList:
    """Immutable mapping of principal -> rights.

    The region creator receives full rights implicitly; additional
    grants are listed explicitly.  ACLs travel inside region
    descriptors and are enforced by the home node and by every CM
    before granting a lock.
    """

    owner: str = SYSTEM_PRINCIPAL
    grants: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)

    @classmethod
    def open_access(cls, owner: str = SYSTEM_PRINCIPAL) -> "AccessControlList":
        """World-readable/writable ACL — the default for new regions."""
        return cls(owner=owner, grants=((ANYONE, Right.all_rights().value),))

    @classmethod
    def private(cls, owner: str) -> "AccessControlList":
        """Only the owner (and the system principal) may touch the region."""
        return cls(owner=owner, grants=())

    @classmethod
    def build(
        cls, owner: str, grants: Dict[str, Right]
    ) -> "AccessControlList":
        return cls(
            owner=owner,
            grants=tuple(sorted((p, r.value) for p, r in grants.items())),
        )

    def rights_for(self, principal: str) -> Right:
        if principal == SYSTEM_PRINCIPAL or principal == self.owner:
            return Right.all_rights()
        rights = Right.NONE
        for granted_to, value in self.grants:
            if granted_to == principal or granted_to == ANYONE:
                rights |= Right(value)
        return rights

    def allows(self, principal: str, needed: Right) -> bool:
        return (self.rights_for(principal) & needed) == needed

    def granting(self, principal: str, rights: Right) -> "AccessControlList":
        """A new ACL with ``rights`` added for ``principal``."""
        merged: Dict[str, int] = dict(self.grants)
        merged[principal] = merged.get(principal, 0) | rights.value
        return AccessControlList(
            owner=self.owner, grants=tuple(sorted(merged.items()))
        )

    def revoking(self, principal: str) -> "AccessControlList":
        """A new ACL with every explicit grant to ``principal`` removed."""
        remaining = tuple(
            (p, r) for p, r in self.grants if p != principal
        )
        return AccessControlList(owner=self.owner, grants=remaining)

    def principals(self) -> FrozenSet[str]:
        return frozenset({self.owner, *(p for p, _ in self.grants)})

    # --- Wire form -----------------------------------------------------------

    def to_wire(self) -> Dict[str, object]:
        return {"owner": self.owner, "grants": list(self.grants)}

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "AccessControlList":
        grants: Iterable = data.get("grants", ())
        return cls(
            owner=str(data.get("owner", SYSTEM_PRINCIPAL)),
            grants=tuple((str(p), int(r)) for p, r in grants),
        )
