"""The per-node page directory.

Paper Section 3.4: "The local storage subsystem on each node maintains
a page directory, indexed by global addresses, that contains
information about individual pages of global regions including the
list of nodes sharing this page.  If a region's pages are locally
cached, the page directory lists the local node as a sharer.  The page
directory maintains persistent information about pages homed locally,
and for performance reasons it also maintains a cache of information
about pages with remote homes."

For pages *homed* at this node the entry is authoritative: it records
the current owner (for ownership-based protocols like CREW) and the
full copyset.  For remote pages the entry is a hint cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set


@dataclass
class PageEntry:
    """Location and consistency information for one page."""

    address: int              # global base address of the page
    rid: int                  # region the page belongs to
    homed: bool               # True when this node is the page's home
    owner: Optional[int] = None     # node holding the master copy
    sharers: Set[int] = field(default_factory=set)
    version: int = 0          # update-protocol version counter
    allocated: bool = False   # physical storage exists somewhere

    def record_sharer(self, node_id: int) -> None:
        self.sharers.add(node_id)

    def forget_sharer(self, node_id: int) -> None:
        self.sharers.discard(node_id)
        if self.owner == node_id:
            self.owner = None

    def copyset_excluding(self, node_id: int) -> List[int]:
        """Sharers other than ``node_id`` (sorted for determinism)."""
        return sorted(n for n in self.sharers if n != node_id)


class PageDirectory:
    """Per-node index of page metadata, keyed by global address."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._entries: Dict[int, PageEntry] = {}

    def get(self, address: int) -> Optional[PageEntry]:
        return self._entries.get(address)

    def ensure(
        self, address: int, rid: int, homed: bool
    ) -> PageEntry:
        """Fetch or create the entry for a page.

        An existing hint entry is upgraded to authoritative when the
        page's home moves to this node.
        """
        entry = self._entries.get(address)
        if entry is None:
            entry = PageEntry(address=address, rid=rid, homed=homed)
            self._entries[address] = entry
        elif homed and not entry.homed:
            entry.homed = True
        return entry

    def drop(self, address: int) -> Optional[PageEntry]:
        return self._entries.pop(address, None)

    def drop_region(self, rid: int) -> int:
        """Remove every entry belonging to region ``rid`` (unreserve)."""
        doomed = [a for a, e in self._entries.items() if e.rid == rid]
        for address in doomed:
            del self._entries[address]
        return len(doomed)

    def entries_for_region(self, rid: int) -> List[PageEntry]:
        return sorted(
            (e for e in self._entries.values() if e.rid == rid),
            key=lambda e: e.address,
        )

    def homed_entries(self) -> List[PageEntry]:
        """Authoritative entries for pages homed at this node.

        These are the persistent part of the directory: a restarting
        daemon rebuilds exactly this set from its disk store.
        """
        return sorted(
            (e for e in self._entries.values() if e.homed),
            key=lambda e: e.address,
        )

    def hint_entries(self) -> List[PageEntry]:
        """Cached entries about remotely homed pages."""
        return sorted(
            (e for e in self._entries.values() if not e.homed),
            key=lambda e: e.address,
        )

    def forget_node(self, node_id: int) -> List[PageEntry]:
        """Erase a crashed node from all copysets; returns the touched
        entries so replica repair can inspect them."""
        touched = []
        for entry in self._entries.values():
            if node_id in entry.sharers or entry.owner == node_id:
                entry.forget_sharer(node_id)
                touched.append(entry)
        return touched

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PageEntry]:
        return iter(sorted(self._entries.values(), key=lambda e: e.address))
