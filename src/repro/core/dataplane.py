"""DataPlane: lock/read/write operations and local page residency.

The data path of Sections 2 and 3.3-3.4: clients lock a range (which
drives the region's consistency manager), then read and write bytes
against locally cached pages.  The service owns the live lock-context
table, the per-page waiter gates that wake blocked lockers, and the
local page store/evict path shared with the consistency managers
through the :class:`~repro.core.cmhost.CMHost` surface.
"""

from __future__ import annotations

import logging

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, Generator, List, Tuple

from repro.core.address_map import SYSTEM_RID
from repro.core.addressing import AddressRange
from repro.core.errors import (
    AccessDenied,
    InvalidLockContext,
    InvalidRange,
    KhazanaError,
    LockDenied,
    NotAllocated,
    error_from_code,
)
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor
from repro.core.security import Right, SYSTEM_PRINCIPAL
from repro.net.tasks import Future
from repro.net.rpc import RemoteError
from repro.storage.store import StoredPage

if TYPE_CHECKING:
    from repro.consistency.manager import ConsistencyManager
    from repro.core.kernel import NodeKernel

ProtocolGen = Generator[Future, Any, Any]

logger = logging.getLogger(__name__)


class DataPlane:
    """Lock contexts, page I/O, and the local residency paths."""

    def __init__(self, kernel: "NodeKernel") -> None:
        self.kernel = kernel
        #: Live lock contexts: ctx_id -> (descriptor, page list).
        self._ctx_pages: Dict[int, Tuple[RegionDescriptor, List[int]]] = {}
        #: Futures parked on a page until its conflicting lock drops.
        self._page_waiters: Dict[int, Deque[Future]] = {}

    # ------------------------------------------------------------------
    # Introspection for tools and invariant checks
    # ------------------------------------------------------------------

    def open_context_ids(self) -> List[int]:
        """Ids of lock contexts currently open on this node."""
        return list(self._ctx_pages)

    def region_in_use(self, rid: int) -> Any:
        """The id of a live lock context on ``rid``, or None."""
        for ctx_id, (ctx_desc, _pages) in self._ctx_pages.items():
            if ctx_desc.rid == rid:
                return ctx_id
        return None

    # ------------------------------------------------------------------
    # Client operations (paper Section 2's API)
    # ------------------------------------------------------------------

    def op_lock(
        self,
        target: AddressRange,
        mode: LockMode,
        principal: str = SYSTEM_PRINCIPAL,
    ) -> ProtocolGen:
        """Lock part of a region; returns a :class:`LockContext`."""
        kernel = self.kernel
        kernel.stats.bump("lock")
        desc = yield from kernel.location.locate_region(target.start)
        if not desc.range.contains_range(target):
            raise InvalidRange(
                f"lock range {target} crosses the boundary of region "
                f"{desc.range}; lock each region separately"
            )
        if not desc.allocated:
            # The cached descriptor may predate allocation; confirm
            # with a home node before failing (stale hints are normal,
            # Section 3.2).
            desc = yield from kernel.location.refresh_descriptor(desc)
            if not desc.allocated:
                raise NotAllocated(
                    f"region {desc.rid:#x} has no allocated storage"
                )
        needed = Right.WRITE if mode.is_write else Right.READ
        if not desc.attrs.acl.allows(principal, needed):
            raise AccessDenied(
                f"principal {principal!r} lacks {needed} on region "
                f"{desc.rid:#x}"
            )

        ctx = LockContext(
            rid=desc.rid, range=target, mode=mode,
            node_id=kernel.node_id, principal=principal,
        )
        if kernel.probe.enabled:
            kernel.probe.region_seen(kernel.node_id, desc)
        pages = desc.pages_covering(target)
        cm = kernel.consistency_manager(desc.attrs.protocol)
        acquired: List[int] = []

        def note_acquired(page_addr: int) -> None:
            # Pin the page the moment its acquisition is final so a
            # later failure in the same range rolls back exactly the
            # pages we hold.
            kernel.lock_table.register(ctx, [page_addr])
            acquired.append(page_addr)

        try:
            try:
                yield from cm.acquire_many(desc, pages, mode, ctx,
                                           note_acquired)
            except RemoteError as error:
                raise error_from_code(error.code, error.detail) from error
        except BaseException:
            # Roll back partial acquisition so no page stays pinned.
            if acquired:
                engine = getattr(cm, "engine", None)
                if engine is not None:
                    engine.counters.rollbacks += 1
                kernel.lock_table.release(ctx, acquired)
                for page_addr in acquired:
                    self._wake_page(page_addr, cm)
            raise
        self._ctx_pages[ctx.ctx_id] = (desc, pages)
        return ctx

    def wait_local_conflicts(self, page_addr: int,
                             mode: LockMode) -> ProtocolGen:
        """Block until no live local context conflicts with ``mode``."""
        kernel = self.kernel
        deadline_exc = LockDenied(
            f"timed out waiting {kernel.config.lock_wait_timeout}s for a "
            f"conflicting local lock on page {page_addr:#x}"
        )
        while kernel.lock_table.conflicts(page_addr, mode):
            kernel.stats.lock_waits += 1
            gate = Future(label=f"lockwait:{page_addr:#x}")
            self._page_waiters.setdefault(page_addr, deque()).append(gate)
            try:
                yield kernel.with_timeout(
                    gate, kernel.config.lock_wait_timeout, deadline_exc
                )
            except LockDenied:
                kernel.stats.lock_timeouts += 1
                raise

    def op_unlock(self, ctx: LockContext) -> ProtocolGen:
        """Release a lock context.

        The *network* side is release-type and never raises (push
        failures go to the background retry queue, paper 3.5) — but
        presenting an already-unlocked or foreign context is a client
        bug, surfaced as ``InvalidLockContext`` like any other misuse
        of a closed context.
        """
        kernel = self.kernel
        kernel.stats.bump("unlock")
        mapping = self._ctx_pages.pop(ctx.ctx_id, None)
        if mapping is None:
            ctx.check_open()   # raises InvalidLockContext when closed
            raise InvalidLockContext(
                f"lock context {ctx.ctx_id} unknown to node {kernel.node_id}"
            )
        desc, pages = mapping
        cm = kernel.consistency_manager(desc.attrs.protocol)
        try:
            yield from cm.release_many(desc, pages, ctx)
        except Exception:
            # Backstop: release_many already routes per-page failures
            # to the retry queue, but unlock itself must never raise.
            logger.warning(
                "node %d: release_many for context %d failed; retrying "
                "per page in the background", kernel.node_id, ctx.ctx_id,
                exc_info=True,
            )
            for page_addr in pages:
                kernel.retry_queue.enqueue(
                    lambda cm=cm, page_addr=page_addr: cm.release(
                        desc, page_addr, ctx
                    ),
                    label=f"cm-release:{page_addr:#x}",
                )
        kernel.lock_table.release(ctx, pages)
        for page_addr in pages:
            self._wake_page(page_addr, cm)
        return None

    def _wake_page(self, page_addr: int, cm: "ConsistencyManager") -> None:
        cm.notify_unlocked(page_addr)
        waiters = self._page_waiters.pop(page_addr, None)
        if waiters:
            for gate in waiters:
                if not gate.done:
                    gate.set_result(None)

    def try_read_fast(self, ctx: LockContext, address: int,
                      length: int) -> Any:
        """Synchronous read fast path: bytes, or None to take the
        generator path.

        Serves the hot case — every covered page RAM-resident, probes
        off — without a generator, a Future, or a scheduler step.  Any
        validation failure returns None so :meth:`op_read` raises the
        identical error; storage counters are bumped exactly as the
        slow path would.
        """
        kernel = self.kernel
        if kernel.probe.enabled or length <= 0 or ctx.closed:
            return None
        ctx_range = ctx.range
        if address < ctx_range.start or address + length > ctx_range.end:
            return None
        mapping = self._ctx_pages.get(ctx.ctx_id)
        if mapping is None:
            return None
        desc = mapping[0]
        page_size = desc.page_size
        first = (address // page_size) * page_size
        storage = kernel.storage
        memory = storage.memory
        end = address + length
        if end <= first + page_size:
            # Single-page read: slice straight out of the stored buffer.
            page = storage.load_resident(first)
            if page is None:
                return None
            data = page.data
            kernel.stats.bump("read")
            if length == page_size and type(data) is bytes:
                return data   # whole page, immutable: no copy at all
            lo = address - first
            return bytes(memoryview(data)[lo : lo + length])  # khz: allow-copy(client-facing partial read owns its bytes)
        # Multi-page: confirm full residency before charging any hit
        # counters, then assemble through borrowed views (one copy, in
        # the final join).
        last = ((end - 1) // page_size) * page_size
        page_addrs = range(first, last + page_size, page_size)
        for page_addr in page_addrs:
            if memory.peek(page_addr) is None:
                return None
        chunks: List[Any] = []
        for page_addr in page_addrs:
            page = storage.load_resident(page_addr)
            if page is None:   # pragma: no cover - peeked above
                return None
            lo = max(address, page_addr) - page_addr
            hi = min(end, page_addr + page_size) - page_addr
            chunks.append(memoryview(page.data)[lo:hi])
        kernel.stats.bump("read")
        return b"".join(chunks)

    def op_read(self, ctx: LockContext, target: AddressRange) -> ProtocolGen:
        """Read bytes under a lock context."""
        fast = self.try_read_fast(ctx, target.start, target.length)
        if fast is not None:
            return fast
        kernel = self.kernel
        kernel.stats.bump("read")
        ctx.check_covers(target, for_write=False)
        desc, _pages = self._require_ctx(ctx)
        if kernel.probe.enabled:
            kernel.probe.page_read(kernel.node_id, ctx,
                                   desc.pages_covering(target),
                                   desc.attrs.protocol)
        chunks: List[Any] = []
        for page_addr in desc.pages_covering(target):
            data = yield from self.local_page_bytes(desc, page_addr)
            if data is None:
                raise KhazanaError(
                    f"page {page_addr:#x} vanished under lock context "
                    f"{ctx.ctx_id}"
                )
            page_range = AddressRange(page_addr, desc.page_size)
            overlap = page_range.intersection(target)
            assert overlap is not None
            if overlap.length == len(data) and type(data) is bytes:
                chunks.append(data)   # whole page served without a copy
            else:
                lo = overlap.start - page_addr
                chunks.append(memoryview(data)[lo : lo + overlap.length])
        if len(chunks) == 1 and type(chunks[0]) is bytes:
            return chunks[0]
        return b"".join(chunks)

    def try_write_fast(self, ctx: LockContext, address: int,
                       data: Any) -> bool:
        """Synchronous write fast path; False means take op_write.

        Covers RAM-resident (or fully overwritten) pages on nodes
        whose stores do not write through to disk.  Stored buffers are
        *replaced*, never patched in place, so aliased twins and wire
        payloads stay stable snapshots (docs/performance.md).
        """
        kernel = self.kernel
        length = len(data)
        if kernel.probe.enabled or length <= 0 or ctx.closed:
            return False
        if not ctx.mode.is_write:
            return False
        if type(data) is not bytes:
            # The full-page branches below alias the source buffer; a
            # caller-owned mutable buffer must be snapshotted first.
            data = bytes(data)  # khz: allow-copy(snapshot caller-owned mutable buffer)
        ctx_range = ctx.range
        if address < ctx_range.start or address + length > ctx_range.end:
            return False
        mapping = self._ctx_pages.get(ctx.ctx_id)
        if mapping is None:
            return False
        desc = mapping[0]
        is_home = kernel.node_id in desc.home_nodes
        if is_home and (desc.rid == SYSTEM_RID or kernel.journal is not None):
            return False   # write-through path charges disk time
        page_size = desc.page_size
        storage = kernel.storage
        memory = storage.memory
        end = address + length
        first = (address // page_size) * page_size
        last = ((end - 1) // page_size) * page_size
        page_addrs = range(first, last + page_size, page_size)
        # Validate everything up front: past this loop the write cannot
        # fall back, or pages would be stored twice.
        for page_addr in page_addrs:
            full = address <= page_addr and page_addr + page_size <= end
            if not full and memory.peek(page_addr) is None:
                return False
        src = memoryview(data) if len(page_addrs) > 1 else None
        for page_addr in page_addrs:
            lo = max(address, page_addr) - page_addr
            hi = min(end, page_addr + page_size) - page_addr
            src_lo = page_addr + lo - address
            if hi - lo == page_size:
                # Full-page overwrite: alias the (immutable or caller-
                # relinquished) source buffer instead of copying it.
                updated = data if src is None else src[src_lo : src_lo + page_size]
            else:
                page = storage.load_resident(page_addr)
                if page is None:   # pragma: no cover - peeked above
                    return False
                updated = bytearray(page.data)   # fresh buffer replaces the frozen one
                piece = data if src is None else src[src_lo : src_lo + (hi - lo)]
                updated[lo:hi] = piece
            if not storage.store_resident(
                StoredPage(page_addr, updated, dirty=True)
            ):
                return False   # RAM full: restart through the evicting path
            entry = kernel.page_directory.ensure(
                page_addr, desc.rid, homed=is_home
            )
            entry.record_sharer(kernel.node_id)
            ctx.dirty_pages.add(page_addr)
        kernel.stats.bump("write")
        return True

    def op_write(self, ctx: LockContext, target: AddressRange,
                 data: bytes) -> ProtocolGen:
        """Write bytes under a lock context."""
        kernel = self.kernel
        if len(data) == target.length and self.try_write_fast(
            ctx, target.start, data
        ):
            return None
        kernel.stats.bump("write")
        ctx.check_covers(target, for_write=True)
        if len(data) != target.length:
            raise InvalidRange(
                f"write of {len(data)} bytes into range of {target.length}"
            )
        desc, _pages = self._require_ctx(ctx)
        if kernel.probe.enabled:
            kernel.probe.page_write(kernel.node_id, ctx,
                                    desc.pages_covering(target),
                                    desc.attrs.protocol)
        if type(data) is not bytes:
            # Full-page stores below alias the source buffer; snapshot
            # mutable caller buffers so stored pages stay frozen.
            data = bytes(data)  # khz: allow-copy(snapshot caller-owned mutable buffer)
        src = memoryview(data)
        for page_addr in desc.pages_covering(target):
            page_range = AddressRange(page_addr, desc.page_size)
            overlap = page_range.intersection(target)
            assert overlap is not None
            lo = overlap.start - page_addr
            src_lo = overlap.start - target.start
            if overlap.length == desc.page_size:
                # Full-page write: every byte is replaced, so skip the
                # read-modify-write (which may fetch the stale page
                # over the network just to discard it) and alias the
                # source instead of copying it.
                if overlap.length == len(data) and type(data) is bytes:
                    updated: Any = data
                else:
                    updated = src[src_lo : src_lo + overlap.length]
            else:
                current = yield from self.local_page_bytes(desc, page_addr)
                if current is None:
                    current = b"\x00" * desc.page_size
                # Patch a fresh buffer and store it outright: stored
                # buffers are frozen, so the old one is replaced, not
                # mutated (twins aliasing it stay pristine).
                patched = bytearray(current)
                patched[lo : lo + overlap.length] = (
                    src[src_lo : src_lo + overlap.length]
                )
                updated = patched
            yield from self.store_local_page(desc, page_addr, updated,
                                             dirty=True)
            ctx.dirty_pages.add(page_addr)
        return None

    def _require_ctx(
        self, ctx: LockContext
    ) -> Tuple[RegionDescriptor, List[int]]:
        mapping = self._ctx_pages.get(ctx.ctx_id)
        if mapping is None:
            ctx.check_open()   # raises if closed
            raise KhazanaError(
                f"lock context {ctx.ctx_id} unknown to node "
                f"{self.kernel.node_id}"
            )
        return mapping

    # ------------------------------------------------------------------
    # Page residency (shared with consistency managers via CMHost)
    # ------------------------------------------------------------------

    def local_page_bytes(self, desc: RegionDescriptor,
                         page_addr: int) -> ProtocolGen:
        """Bytes of a locally stored page, charging simulated disk time.

        At a home node, an allocated-but-never-written page zero-fills
        on demand (backing store is materialised lazily).
        Returns None when the page is simply not here.
        """
        kernel = self.kernel
        page, cost = kernel.storage.load(page_addr)
        if cost > 0:
            yield kernel.sleep(cost)
        if page is not None:
            return page.data
        if kernel.node_id in desc.home_nodes:
            entry = kernel.page_directory.get(page_addr)
            implicitly_allocated = desc.rid == SYSTEM_RID
            if implicitly_allocated or (entry is not None and entry.allocated):
                data = b"\x00" * desc.page_size
                yield from self.store_local_page(desc, page_addr, data,
                                                 dirty=False)
                entry = kernel.page_directory.ensure(
                    page_addr, desc.rid, homed=True
                )
                entry.allocated = True
                return data
        return None

    def store_local_page(self, desc: RegionDescriptor, page_addr: int,
                         data: bytes, dirty: bool) -> ProtocolGen:
        """Cache page bytes locally, charging victimization I/O time.

        Address-map pages are written through to disk at their home:
        the paper (3.5) requires the metadata needed to access a region
        to be at least as available as the region itself, so a crashed
        bootstrap node must recover the map from its persistent store.
        """
        kernel = self.kernel
        page = StoredPage(page_addr, data, dirty=dirty)
        is_home = kernel.node_id in desc.home_nodes
        durable = kernel.journal is not None
        if is_home and (desc.rid == SYSTEM_RID or durable):
            # Home copies of the address map are always persistent;
            # on durable deployments every homed page writes through,
            # so a restarted daemon recovers its regions' contents.
            cost = kernel.storage.write_through(page)
        else:
            cost = kernel.storage.store(page)
        if cost > 0:
            yield kernel.sleep(cost)
        entry = kernel.page_directory.ensure(
            page_addr, desc.rid, homed=kernel.node_id in desc.home_nodes
        )
        entry.record_sharer(kernel.node_id)

    def drop_local_page(self, page_addr: int) -> None:
        self.kernel.storage.drop(page_addr)

    def on_disk_evict(self, page: StoredPage) -> bool:
        """Consistency hook before a page leaves this node (3.4)."""
        kernel = self.kernel
        entry = kernel.page_directory.get(page.address)
        if entry is None:
            return not page.dirty   # unknown dirty page: refuse to lose it
        if entry.homed:
            return False   # never evict authoritative home copies
        desc = kernel.region_directory.find_covering(page.address)
        if desc is None:
            return not page.dirty
        cm = kernel.consistency_manager(desc.attrs.protocol)
        kernel.spawn(
            cm.evict(desc, page.address, page.data, page.dirty),
            label=f"evict:{page.address:#x}",
        )
        kernel.page_directory.drop(page.address)
        cm.page_state.pop(page.address, None)
        if not kernel.page_directory.entries_for_region(desc.rid):
            # Last cached page gone: withdraw this node's caching
            # advertisement, or the manager keeps handing out a hint
            # that now costs every looker-up one failed RPC.
            kernel.placement.retract(desc)
        return True
