"""The cluster-manager role.

Paper Section 3.1: "Each cluster has one or more designated cluster
managers, nodes responsible for being aware of other cluster
locations, caching hint information about regions stored in the local
cluster, and representing the local cluster during inter-cluster
communication ... Each cluster manager maintains hints of the sizes of
free address space (total size, maximum free region size, etc) managed
by other nodes in its cluster."

The role runs inside a designated daemon.  It answers three kinds of
traffic:

- ``SPACE_REQUEST`` — delegate a large chunk of unreserved global
  address space to the requesting daemon (recorded in the address
  map, so the grant survives the manager).
- ``CM_HINT_QUERY`` — "is region X cached at some nearby node?", the
  middle tier of the Section 3.2 lookup chain.
- ``CM_HINT_UPDATE`` / ``FREE_SPACE_REPORT`` — lazy hint refreshes
  from cluster members.

Like every hint layer in Khazana, the caches here may be stale; users
fall back to the address-map tree walk when a hint misleads them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.core.allocator import DEFAULT_CHUNK_SIZE
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.tasks import Future

ProtocolGen = Generator[Future, Any, Any]

HINT_CAPACITY = 4096


@dataclass
class FreeSpaceHint:
    """What the manager believes about one member's local pool."""

    node_id: int
    total_free: int
    max_contiguous: int
    reported_at: float


class ClusterManagerRole:
    """Cluster-manager behaviour hosted by one daemon."""

    def __init__(self, daemon: Any) -> None:
        self.daemon = daemon
        #: rid -> (descriptor, nodes believed to cache the region)
        self._region_hints: "OrderedDict[int, Tuple[RegionDescriptor, Set[int]]]" = (
            OrderedDict()
        )
        self._free_space: Dict[int, FreeSpaceHint] = {}
        self.space_requests_served = 0
        self.hint_queries = 0
        self.hint_hits = 0
        # Serialises chunk delegations: two concurrent find_free calls
        # would otherwise pick the same extent and the second delegate
        # would fail.
        from repro.consistency.manager import KeyedMutex

        self._delegation_mutex = KeyedMutex()

    # ------------------------------------------------------------------
    # Message handlers (wired up by the daemon)
    # ------------------------------------------------------------------

    def handle_space_request(self, msg: Message) -> None:
        size = int(msg.payload.get("size", DEFAULT_CHUNK_SIZE))
        size = max(size, DEFAULT_CHUNK_SIZE)

        def grant() -> ProtocolGen:
            chunk = yield from self.delegate_chunk(msg.src, size)
            self.space_requests_served += 1
            self.daemon.reply_request(
                msg, MessageType.SPACE_GRANT,
                {"start": chunk.start, "length": chunk.length},
            )

        self.daemon.spawn_handler(msg, grant(), label="space-grant")

    def delegate_chunk(self, node_id: int, size: int) -> ProtocolGen:
        """Find free space in the address map and delegate it.

        find_free and delegate are two map operations; the mutex keeps
        concurrent grants from racing to the same extent.
        """
        yield self._delegation_mutex.acquire("chunks")
        try:
            free = yield from self.daemon.address_map.find_free(
                size, alignment=size
            )
            yield from self.daemon.address_map.delegate(free, node_id)
            return free
        finally:
            self._delegation_mutex.release("chunks")

    def handle_hint_query(self, msg: Message) -> None:
        self.hint_queries += 1
        address = int(msg.payload["address"])
        hint = self.lookup_hint(address)
        if hint is not None:
            descriptor, nodes = hint
            self.hint_hits += 1
            self.daemon.reply_request(
                msg, MessageType.CM_HINT_REPLY,
                {"descriptor": descriptor.to_wire(),
                 "nodes": sorted(nodes), "via": "local"},
            )
            return
        # Inter-cluster step of the hierarchy (paper 3.1): the local
        # manager represents its cluster and asks its peer managers.
        # ``no_forward`` stops the query after one hop.
        if msg.payload.get("no_forward") or not self.daemon.config.peer_managers:
            self.daemon.reply_error(msg, "region_not_found",
                                    "no cluster hint for this address")
            return
        self.daemon.spawn_handler(
            msg, self._forward_query(msg, address), label="cm-forward"
        )

    def _forward_query(self, msg: Message, address: int) -> ProtocolGen:
        from repro.net.rpc import RemoteError, RpcTimeout

        for manager in self.daemon.config.peer_managers:
            try:
                reply = yield self.daemon.rpc.request(
                    manager, MessageType.CM_HINT_QUERY,
                    {"address": address, "no_forward": True},
                )
            except (RemoteError, RpcTimeout):
                continue
            descriptor = RegionDescriptor.from_wire(
                reply.payload["descriptor"]
            )
            # Cache what the peer cluster told us, so the next local
            # query is answered without inter-cluster traffic.
            for node in reply.payload.get("nodes", []):
                self.note_region_cached(descriptor, int(node))
            self.daemon.reply_request(
                msg, MessageType.CM_HINT_REPLY,
                {"descriptor": descriptor.to_wire(),
                 "nodes": reply.payload.get("nodes", []),
                 "via": "intercluster"},
            )
            return
        self.daemon.reply_error(msg, "region_not_found",
                                "no cluster (or peer cluster) hint")

    def handle_hint_update(self, msg: Message) -> None:
        payload = msg.payload
        descriptor = RegionDescriptor.from_wire(payload["descriptor"])
        if payload.get("dropped"):
            self.note_region_dropped(descriptor.rid, msg.src)
        else:
            self.note_region_cached(descriptor, msg.src)

    def handle_free_space_report(self, msg: Message) -> None:
        self._free_space[msg.src] = FreeSpaceHint(
            node_id=msg.src,
            total_free=int(msg.payload.get("total_free", 0)),
            max_contiguous=int(msg.payload.get("max_contiguous", 0)),
            reported_at=self.daemon.now,
        )

    # ------------------------------------------------------------------
    # Hint cache
    # ------------------------------------------------------------------

    def note_region_cached(
        self, descriptor: RegionDescriptor, node_id: int
    ) -> None:
        existing = self._region_hints.get(descriptor.rid)
        if existing is not None:
            known, nodes = existing
            if descriptor.version >= known.version:
                known = descriptor
            nodes.add(node_id)
            self._region_hints[descriptor.rid] = (known, nodes)
        else:
            self._region_hints[descriptor.rid] = (descriptor, {node_id})
        self._region_hints.move_to_end(descriptor.rid)
        while len(self._region_hints) > HINT_CAPACITY:
            self._region_hints.popitem(last=False)

    def note_region_dropped(self, rid: int, node_id: int) -> None:
        entry = self._region_hints.get(rid)
        if entry is None:
            return
        descriptor, nodes = entry
        nodes.discard(node_id)
        if not nodes:
            del self._region_hints[rid]

    def lookup_hint(
        self, address: int
    ) -> Optional[Tuple[RegionDescriptor, Set[int]]]:
        for rid, (descriptor, nodes) in self._region_hints.items():
            if descriptor.range.contains(address) and nodes:
                return descriptor, set(nodes)
        return None

    def forget_node(self, node_id: int) -> None:
        """Drop a crashed member from every hint."""
        doomed: List[int] = []
        for rid, (descriptor, nodes) in self._region_hints.items():
            nodes.discard(node_id)
            if not nodes:
                doomed.append(rid)
        for rid in doomed:
            del self._region_hints[rid]
        self._free_space.pop(node_id, None)

    def free_space_hints(self) -> List[FreeSpaceHint]:
        return sorted(self._free_space.values(), key=lambda h: h.node_id)

    def hinted_regions(self) -> int:
        return len(self._region_hints)
