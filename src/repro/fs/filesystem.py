"""The KFS file system proper.

Design from paper Section 4.1, point for point:

- the whole Khazana space is the disk; a file system is identified by
  the Khazana address of its superblock ("Mounting this filesystem
  only requires the Khazana address of the superblock");
- each inode is a region of its own;
- each 4 KiB file block is a separate region;
- opening a file is "a recursive descent of the filesystem directory
  tree from the root", with the resolved inode address cached;
- per-file attributes (consistency level, replica count) are fixed at
  creation time and passed straight down to Khazana.

The file system is completely unaware of distribution: every instance
(one per client session) only calls the public Khazana API, and any
number of instances may mount the same superblock concurrently —
Khazana's locking and consistency management do the rest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.client import KhazanaSession
from repro.core.errors import KhazanaError
from repro.core.locks import LockMode
from repro.fs.file import KFile
from repro.fs.inode import FileType, Inode
from repro.fs.layout import (
    BLOCK_SIZE,
    INODE_PAGE_SIZE,
    SUPERBLOCK_MAGIC,
    LayoutError,
    decode_struct,
    encode_struct,
    validate_name,
)


class FileSystemError(Exception):
    """KFS-level errors (not-found, exists, not-a-directory, ...)."""


def _split_path(path: str) -> List[str]:
    if not path.startswith("/"):
        raise FileSystemError(f"path {path!r} must be absolute")
    return [part for part in path.split("/") if part]


class KhazanaFileSystem:
    """One mounted instance of a KFS file system."""

    def __init__(self, session: KhazanaSession, superblock_addr: int,
                 root_inode_addr: int,
                 default_consistency: ConsistencyLevel,
                 default_replicas: int) -> None:
        self.session = session
        self.superblock_addr = superblock_addr
        self.root_inode_addr = root_inode_addr
        self.default_consistency = default_consistency
        self.default_replicas = default_replicas
        #: path -> inode address cache ("finding the inode address ...
        #: and caching that address", Section 4.1).  May go stale under
        #: concurrent renames; lookups re-validate on miss.
        self._inode_cache: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Creation and mounting
    # ------------------------------------------------------------------

    @classmethod
    def format(
        cls,
        session: KhazanaSession,
        consistency: ConsistencyLevel = ConsistencyLevel.STRICT,
        replicas: int = 1,
    ) -> "KhazanaFileSystem":
        """Create a new file system; returns it mounted.

        Allocates the superblock and the root directory inode (paper:
        "the creator allocates a superblock and an inode for the root
        of the filesystem").
        """
        meta_attrs = RegionAttributes(
            consistency_level=consistency,
            min_replicas=replicas,
            page_size=INODE_PAGE_SIZE,
        )
        sb_attrs = RegionAttributes(
            consistency_level=consistency,
            min_replicas=replicas,
            page_size=BLOCK_SIZE,
        )
        superblock = session.reserve(BLOCK_SIZE, sb_attrs)
        session.allocate(superblock.rid)
        root_inode_region = session.reserve(INODE_PAGE_SIZE, meta_attrs)
        session.allocate(root_inode_region.rid)

        now = session.daemon.now
        root = Inode(
            address=root_inode_region.rid,
            file_type=FileType.DIRECTORY,
            created_at=now,
            modified_at=now,
            consistency=consistency.value,
            replicas=replicas,
        )
        fs = cls(session, superblock.rid, root.address,
                 consistency, replicas)
        fs._write_inode(root)
        fs._write_dir(root, {})
        session.write_at(
            superblock.rid,
            encode_struct(
                {
                    "magic": SUPERBLOCK_MAGIC,
                    "root_inode": root.address,
                    "block_size": BLOCK_SIZE,
                    "consistency": consistency.value,
                    "replicas": replicas,
                },
                BLOCK_SIZE,
            ),
        )
        return fs

    @classmethod
    def mount(cls, session: KhazanaSession,
              superblock_addr: int) -> "KhazanaFileSystem":
        """Mount an existing file system by its superblock address."""
        doc = decode_struct(session.read_at(superblock_addr, BLOCK_SIZE))
        if doc.get("magic") != SUPERBLOCK_MAGIC:
            raise FileSystemError(
                f"no KFS superblock at {superblock_addr:#x}"
            )
        return cls(
            session,
            superblock_addr,
            int(doc["root_inode"]),
            ConsistencyLevel(doc.get("consistency", "strict")),
            int(doc.get("replicas", 1)),
        )

    # ------------------------------------------------------------------
    # Inode and block primitives
    # ------------------------------------------------------------------

    def _read_inode(self, address: int) -> Inode:
        return Inode.decode(
            address, self.session.read_at(address, INODE_PAGE_SIZE)
        )

    def _tombstone_inode(self, inode: Inode) -> None:
        """Zero the inode page before releasing its region.

        Region teardown is release-type (asynchronous), so another
        instance's cached inode address could otherwise keep opening a
        deleted file during the teardown window.  The tombstone rides
        the inode region's own consistency protocol, so under STRICT
        consistency a deleted file is unopenable everywhere the moment
        unlink returns.
        """
        try:
            self.session.write_at(
                inode.address, b"\x00" * INODE_PAGE_SIZE
            )
        except KhazanaError:
            # Best effort: a failed tombstone only widens the window
            # back to what asynchronous teardown gives anyway.
            pass

    def _write_inode(self, inode: Inode) -> None:
        self.session.write_at(inode.address, inode.encode())

    def _alloc_inode(self, file_type: FileType,
                     consistency: Optional[ConsistencyLevel] = None,
                     replicas: Optional[int] = None,
                     name: str = "", parent: int = 0) -> Inode:
        consistency = consistency or self.default_consistency
        replicas = replicas if replicas is not None else self.default_replicas
        region = self.session.reserve(
            INODE_PAGE_SIZE,
            RegionAttributes(
                consistency_level=consistency,
                min_replicas=replicas,
                page_size=INODE_PAGE_SIZE,
            ),
        )
        self.session.allocate(region.rid)
        now = self.session.daemon.now
        return Inode(
            address=region.rid,
            file_type=file_type,
            created_at=now,
            modified_at=now,
            consistency=consistency.value,
            replicas=replicas,
            name=name,
            parent=parent,
        )

    def alloc_block(self, consistency: Optional[str] = None,
                    replicas: Optional[int] = None) -> int:
        """Reserve+allocate one 4 KiB data block region."""
        level = (
            ConsistencyLevel(consistency)
            if consistency is not None
            else self.default_consistency
        )
        region = self.session.reserve(
            BLOCK_SIZE,
            RegionAttributes(
                consistency_level=level,
                min_replicas=(
                    replicas if replicas is not None else self.default_replicas
                ),
                page_size=BLOCK_SIZE,
            ),
        )
        self.session.allocate(region.rid)
        return region.rid

    def free_block(self, address: int) -> None:
        """Return a block region to Khazana ("to truncate a file, the
        system deallocates regions no longer needed")."""
        self.session.unreserve(address)

    # ------------------------------------------------------------------
    # File data I/O (shared by files and directory bodies)
    # ------------------------------------------------------------------

    def read_data(self, inode: Inode, offset: int, length: int) -> bytes:
        """Read file bytes: lock, map, copy, unlock, per block."""
        if offset >= inode.size:
            return b""
        length = min(length, inode.size - offset)
        if inode.layout == "extent":
            return self._extent_read(inode, offset, length)
        chunks: List[bytes] = []
        remaining = length
        position = offset
        while remaining > 0:
            index = position // BLOCK_SIZE
            within = position % BLOCK_SIZE
            take = min(remaining, BLOCK_SIZE - within)
            if index >= len(inode.blocks):
                chunks.append(b"\x00" * take)   # sparse hole
            else:
                block_addr = inode.blocks[index]
                ctx = self.session.lock(block_addr, BLOCK_SIZE, LockMode.READ)
                try:
                    data = self.session.read(
                        ctx, block_addr + within, take
                    )
                finally:
                    self.session.unlock(ctx)
                chunks.append(data)
            position += take
            remaining -= take
        return b"".join(chunks)

    def write_data(self, inode: Inode, offset: int, data: bytes) -> Inode:
        """Write file bytes, growing the block list as needed.

        Returns the updated inode (already persisted).
        """
        if inode.layout == "extent":
            return self._extent_write(inode, offset, data)
        end = offset + len(data)
        inode.check_capacity(end)
        while len(inode.blocks) * BLOCK_SIZE < end:
            inode.blocks.append(
                self.alloc_block(inode.consistency, inode.replicas)
            )
        position = offset
        consumed = 0
        while consumed < len(data):
            index = position // BLOCK_SIZE
            within = position % BLOCK_SIZE
            take = min(len(data) - consumed, BLOCK_SIZE - within)
            block_addr = inode.blocks[index]
            ctx = self.session.lock(block_addr, BLOCK_SIZE, LockMode.WRITE)
            try:
                self.session.write(
                    ctx, block_addr + within, data[consumed : consumed + take]
                )
            finally:
                self.session.unlock(ctx)
            position += take
            consumed += take
        inode.size = max(inode.size, end)
        inode.modified_at = self.session.daemon.now
        self._write_inode(inode)
        return inode

    def truncate_data(self, inode: Inode, size: int) -> Inode:
        """Shrink (or sparsely grow) a file to ``size`` bytes."""
        if inode.layout == "extent":
            return self._extent_truncate(inode, size)
        inode.check_capacity(size)
        needed = inode.blocks_needed(size)
        doomed = inode.blocks[needed:]
        inode.blocks = inode.blocks[:needed]
        inode.size = size
        inode.modified_at = self.session.daemon.now
        self._write_inode(inode)
        for block_addr in doomed:
            self.free_block(block_addr)
        return inode

    # ------------------------------------------------------------------
    # Extent layout: one contiguous region per file (paper 4.1's
    # alternative — "resize the region whenever the file size changes")
    # ------------------------------------------------------------------

    def _extent_read(self, inode: Inode, offset: int, length: int) -> bytes:
        # Sparse files (truncate past the capacity) read the hole as
        # zeroes without any backing storage.
        if inode.extent == 0 or offset >= inode.extent_capacity:
            return b"\x00" * length
        readable = min(length, inode.extent_capacity - offset)
        ctx = self.session.lock(
            inode.extent + offset, readable, LockMode.READ
        )
        try:
            data = self.session.read(ctx, inode.extent + offset, readable)
        finally:
            self.session.unlock(ctx)
        return data + b"\x00" * (length - readable)

    def _extent_capacity_for(self, size: int) -> int:
        """Capacity policy: doubling, block-aligned, min one block."""
        capacity = BLOCK_SIZE
        while capacity < size:
            capacity *= 2
        return capacity

    def _extent_ensure_capacity(self, inode: Inode, size: int) -> Inode:
        from repro.core.errors import AddressSpaceExhausted

        if inode.extent == 0:
            capacity = self._extent_capacity_for(size)
            region = self.session.reserve(
                capacity,
                RegionAttributes(
                    consistency_level=ConsistencyLevel(inode.consistency),
                    min_replicas=inode.replicas,
                    page_size=BLOCK_SIZE,
                ),
            )
            self.session.allocate(region.rid)
            inode.extent = region.rid
            inode.extent_capacity = capacity
            return inode
        if size <= inode.extent_capacity:
            return inode
        capacity = self._extent_capacity_for(size)
        try:
            self.session.resize(inode.extent, capacity)
            inode.extent_capacity = capacity
        except AddressSpaceExhausted:
            # The neighbourhood is taken: relocate the extent (copy
            # into a fresh region, release the old one).
            old_extent, old_size = inode.extent, inode.size
            data = self._extent_read(inode, 0, old_size) if old_size else b""
            region = self.session.reserve(
                capacity,
                RegionAttributes(
                    consistency_level=ConsistencyLevel(inode.consistency),
                    min_replicas=inode.replicas,
                    page_size=BLOCK_SIZE,
                ),
            )
            self.session.allocate(region.rid)
            if data:
                self.session.write_at(region.rid, data)
            inode.extent = region.rid
            inode.extent_capacity = capacity
            self.session.unreserve(old_extent)
        return inode

    def _extent_write(self, inode: Inode, offset: int, data: bytes) -> Inode:
        end = offset + len(data)
        inode = self._extent_ensure_capacity(inode, end)
        ctx = self.session.lock(
            inode.extent + offset, len(data), LockMode.WRITE
        )
        try:
            self.session.write(ctx, inode.extent + offset, data)
        finally:
            self.session.unlock(ctx)
        inode.size = max(inode.size, end)
        inode.modified_at = self.session.daemon.now
        self._write_inode(inode)
        return inode

    def _extent_truncate(self, inode: Inode, size: int) -> Inode:
        if size < inode.size and inode.extent != 0:
            new_capacity = self._extent_capacity_for(max(size, 1))
            # Zero the surviving bytes above the new size so a later
            # sparse re-extension reads holes as zeroes.  The zeroed
            # range is clamped to backed storage: bytes beyond the
            # (old or new) capacity either never existed or are freed
            # by the resize below, and regrow zero-fills them.
            zero_start = size
            zero_end = min(inode.size, new_capacity, inode.extent_capacity)
            if zero_start < zero_end:
                length = zero_end - zero_start
                ctx = self.session.lock(
                    inode.extent + zero_start, length, LockMode.WRITE
                )
                try:
                    self.session.write(
                        ctx, inode.extent + zero_start, b"\x00" * length
                    )
                finally:
                    self.session.unlock(ctx)
            if new_capacity < inode.extent_capacity:
                self.session.resize(inode.extent, new_capacity)
                inode.extent_capacity = new_capacity
        inode.size = size
        inode.modified_at = self.session.daemon.now
        self._write_inode(inode)
        return inode

    def _release_file_storage(self, inode: Inode) -> None:
        """Free whatever data storage a file holds, layout-agnostic."""
        if inode.layout == "extent":
            if inode.extent != 0:
                self.session.unreserve(inode.extent)
            return
        for block_addr in inode.blocks:
            self.free_block(block_addr)

    # ------------------------------------------------------------------
    # Directories
    # ------------------------------------------------------------------

    def _read_dir(self, inode: Inode) -> Dict[str, int]:
        if not inode.is_dir:
            raise FileSystemError(
                f"inode {inode.address:#x} is not a directory"
            )
        raw = self.read_data(inode, 0, inode.size)
        doc = decode_struct(raw + b"\x00") if raw else {}
        return {str(k): int(v) for k, v in doc.items()}

    def _write_dir(self, inode: Inode, entries: Dict[str, int]) -> Inode:
        blob = encode_struct(entries, max(BLOCK_SIZE, _dir_size(entries)))
        inode = self.write_data(inode, 0, blob)
        if inode.size > len(blob):
            inode = self.truncate_data(inode, len(blob))
        return inode

    # ------------------------------------------------------------------
    # Path resolution
    # ------------------------------------------------------------------

    def _namei(self, path: str) -> Inode:
        """Resolve a path to its inode: recursive descent plus a
        validated inode-address cache.

        Cached addresses are hints ("Opening a file is as simple as
        finding the inode address ... and caching that address",
        Section 4.1).  A hint is trusted only when the inode's
        back-pointer (leaf name + parent inode address) still matches
        the path component being resolved, which makes concurrent
        renames and unlinks from other instances safe: a mismatch
        falls back to reading the parent directory.
        """
        inode = self._read_inode(self.root_inode_addr)
        walked = ""
        for part in _split_path(path):
            walked = f"{walked}/{part}"
            child_inode: Optional[Inode] = None
            cached = self._inode_cache.get(walked)
            if cached is not None:
                try:
                    candidate = self._read_inode(cached)
                    if (candidate.name == part
                            and candidate.parent == inode.address):
                        child_inode = candidate
                except (KhazanaError, LayoutError):
                    pass   # torn down or tombstoned: treat as stale
                if child_inode is None:
                    del self._inode_cache[walked]
            if child_inode is None:
                entries = self._read_dir(inode)
                child = entries.get(part)
                if child is None:
                    raise FileSystemError(
                        f"no such file or directory: {path!r}"
                    )
                child_inode = self._read_inode(child)
                self._inode_cache[walked] = child
            inode = child_inode
        return inode

    def _namei_parent(self, path: str) -> Tuple[Inode, str]:
        parts = _split_path(path)
        if not parts:
            raise FileSystemError("the root directory has no parent")
        name = validate_name(parts[-1])
        parent_path = "/" + "/".join(parts[:-1])
        return self._namei(parent_path), name

    # ------------------------------------------------------------------
    # Public file-system API
    # ------------------------------------------------------------------

    def create(self, path: str,
               consistency: Optional[ConsistencyLevel] = None,
               replicas: Optional[int] = None,
               layout: str = "blocks") -> KFile:
        """Create a regular file; fails if it already exists.

        ``layout`` picks the data placement: "blocks" (a 4 KiB region
        per block — the paper's current implementation) or "extent"
        (one contiguous region resized with the file — the paper's
        stated alternative).
        """
        if layout not in ("blocks", "extent"):
            raise FileSystemError(f"unknown layout {layout!r}")
        parent, name = self._namei_parent(path)
        entries = self._read_dir(parent)
        if name in entries:
            raise FileSystemError(f"file exists: {path!r}")
        inode = self._alloc_inode(FileType.FILE, consistency, replicas,
                                  name=name, parent=parent.address)
        inode.layout = layout
        self._write_inode(inode)
        entries[name] = inode.address
        self._write_dir(parent, entries)
        self._inode_cache[path.rstrip("/")] = inode.address
        return KFile(self, inode, writable=True)

    def open(self, path: str, mode: str = "r") -> KFile:
        """Open a file.  Modes: 'r', 'w' (truncate), 'a' (append)."""
        if mode not in ("r", "w", "a"):
            raise FileSystemError(f"unsupported open mode {mode!r}")
        try:
            inode = self._namei(path)
        except FileSystemError:
            if mode == "r":
                raise
            return self.create(path)
        if inode.is_dir:
            raise FileSystemError(f"is a directory: {path!r}")
        handle = KFile(self, inode, writable=mode != "r")
        if mode == "w" and inode.size > 0:
            handle.truncate(0)
        if mode == "a":
            handle.seek(inode.size)
        return handle

    def mkdir(self, path: str) -> None:
        parent, name = self._namei_parent(path)
        entries = self._read_dir(parent)
        if name in entries:
            raise FileSystemError(f"file exists: {path!r}")
        inode = self._alloc_inode(FileType.DIRECTORY,
                                  name=name, parent=parent.address)
        self._write_inode(inode)
        self._write_dir(inode, {})
        entries[name] = inode.address
        self._write_dir(parent, entries)

    def listdir(self, path: str) -> List[str]:
        return sorted(self._read_dir(self._namei(path)))

    def exists(self, path: str) -> bool:
        try:
            self._namei(path)
            return True
        except FileSystemError:
            return False

    def stat(self, path: str) -> Inode:
        """The file's inode (size, type, timestamps, attributes)."""
        return self._namei(path)

    def unlink(self, path: str) -> None:
        """Remove a file, releasing its inode and block regions."""
        parent, name = self._namei_parent(path)
        entries = self._read_dir(parent)
        child_addr = entries.get(name)
        if child_addr is None:
            raise FileSystemError(f"no such file: {path!r}")
        inode = self._read_inode(child_addr)
        if inode.is_dir:
            raise FileSystemError(f"is a directory: {path!r}")
        del entries[name]
        self._write_dir(parent, entries)
        self._inode_cache.pop(path.rstrip("/"), None)
        inode.nlink -= 1
        if inode.nlink <= 0:
            self._tombstone_inode(inode)
            self._release_file_storage(inode)
            self.session.unreserve(inode.address)
        else:
            self._write_inode(inode)

    def rmdir(self, path: str) -> None:
        parent, name = self._namei_parent(path)
        entries = self._read_dir(parent)
        child_addr = entries.get(name)
        if child_addr is None:
            raise FileSystemError(f"no such directory: {path!r}")
        inode = self._read_inode(child_addr)
        if not inode.is_dir:
            raise FileSystemError(f"not a directory: {path!r}")
        if self._read_dir(inode):
            raise FileSystemError(f"directory not empty: {path!r}")
        del entries[name]
        self._write_dir(parent, entries)
        self._inode_cache.pop(path.rstrip("/"), None)
        self._tombstone_inode(inode)
        for block_addr in inode.blocks:
            self.free_block(block_addr)
        self.session.unreserve(inode.address)

    def rename(self, src: str, dst: str) -> None:
        """Move a file or directory within the tree."""
        src_parent, src_name = self._namei_parent(src)
        src_entries = self._read_dir(src_parent)
        child = src_entries.get(src_name)
        if child is None:
            raise FileSystemError(f"no such file: {src!r}")
        dst_parent, dst_name = self._namei_parent(dst)
        if dst_parent.address == src_parent.address:
            del src_entries[src_name]
            src_entries[dst_name] = child
            self._write_dir(src_parent, src_entries)
        else:
            dst_entries = self._read_dir(dst_parent)
            if dst_name in dst_entries:
                raise FileSystemError(f"destination exists: {dst!r}")
            del src_entries[src_name]
            self._write_dir(src_parent, src_entries)
            dst_entries[dst_name] = child
            self._write_dir(dst_parent, dst_entries)
        # Refresh the moved inode's back-pointer so cached hints
        # elsewhere detect the rename and re-resolve.
        moved = self._read_inode(child)
        moved.name = dst_name
        moved.parent = dst_parent.address
        self._write_inode(moved)
        self._inode_cache.pop(src.rstrip("/"), None)
        self._inode_cache[dst.rstrip("/")] = child

    def tree(self, path: str = "/") -> Dict[str, object]:
        """Recursive listing (for examples and debugging)."""
        inode = self._namei(path) if path != "/" else self._read_inode(
            self.root_inode_addr
        )
        if not inode.is_dir:
            return {"type": "file", "size": inode.size}
        children = {}
        base = path.rstrip("/")
        for name in sorted(self._read_dir(inode)):
            children[name] = self.tree(f"{base}/{name}")
        return {"type": "dir", "children": children}


def _dir_size(entries: Dict[str, int]) -> int:
    """Bytes needed to serialize a directory, rounded up to blocks."""
    import json

    raw = len(json.dumps(entries, separators=(",", ":")).encode("utf-8"))
    return -(-max(raw, 2) // BLOCK_SIZE) * BLOCK_SIZE
