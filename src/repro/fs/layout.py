"""On-"disk" layout of KFS structures.

All metadata (superblock, inodes, directory bodies) is serialized as
JSON padded to its region's page size.  Khazana does not interpret any
of it — "Khazana does not interpret the shared data" (Section 2) —
so the choice of encoding is private to the file system.
"""

from __future__ import annotations

import json
from typing import Any, Dict

#: File data block size: "each block of the filesystem is allocated
#: into a separate 4-kilobyte region" (Section 4.1).
BLOCK_SIZE = 4096

#: Inodes get a region of one 16 KiB page, leaving room for a few
#: hundred direct block pointers in JSON.
INODE_PAGE_SIZE = 16384

#: Maximum direct blocks per inode; bounds file size at 1 MiB, which
#: the serialization check below enforces structurally.
MAX_BLOCKS = 256

MAX_FILE_SIZE = MAX_BLOCKS * BLOCK_SIZE

SUPERBLOCK_MAGIC = "KFS1"

#: Maximum length of one path component.
MAX_NAME = 255


class LayoutError(Exception):
    """A serialized structure does not fit or fails validation."""


def encode_struct(doc: Dict[str, Any], size: int) -> bytes:
    """JSON-encode ``doc`` padded with NULs to exactly ``size`` bytes."""
    blob = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(blob) > size:
        raise LayoutError(
            f"structure needs {len(blob)} bytes, page holds {size}"
        )
    return blob + b"\x00" * (size - len(blob))


def decode_struct(data: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_struct`; empty pages decode to {}."""
    blob = data.rstrip(b"\x00")
    if not blob:
        return {}
    try:
        return json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise LayoutError(f"corrupt KFS structure: {error}") from error


def validate_name(name: str) -> str:
    """Check a single path component."""
    if not name or name in (".", ".."):
        raise LayoutError(f"invalid file name {name!r}")
    if "/" in name or "\x00" in name:
        raise LayoutError(f"file name {name!r} contains '/' or NUL")
    if len(name) > MAX_NAME:
        raise LayoutError(f"file name longer than {MAX_NAME} bytes")
    return name
