"""File handles.

"Reads and writes to a file involve finding the Khazana address for
the page to be read or written, locking the page in the appropriate
mode, mapping it into local memory, and executing the actual
operation." (paper Section 4.1)

A :class:`KFile` is a positioned handle over an inode; each read/write
is delegated to the file system's block I/O, which performs the
lock-map-access-unlock sequence per 4 KiB block region.
"""

from __future__ import annotations

from typing import Optional

from repro.fs.inode import Inode


class KFile:
    """An open KFS file with a seek position."""

    def __init__(self, fs: "KhazanaFileSystem", inode: Inode,
                 writable: bool) -> None:
        self._fs = fs
        self._inode = inode
        self._writable = writable
        self._position = 0
        self._closed = False

    # --- Introspection -----------------------------------------------------

    @property
    def inode_address(self) -> int:
        return self._inode.address

    @property
    def size(self) -> int:
        return self._inode.size

    @property
    def position(self) -> int:
        return self._position

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("I/O operation on closed KFS file")

    def _refresh(self) -> None:
        """Re-read the inode so concurrent appends become visible."""
        self._inode = self._fs._read_inode(self._inode.address)

    # --- Positioning ----------------------------------------------------------

    def seek(self, offset: int, whence: int = 0) -> int:
        """Like ``io.IOBase.seek``: 0=set, 1=cur, 2=end."""
        self._check_open()
        if whence == 0:
            target = offset
        elif whence == 1:
            target = self._position + offset
        elif whence == 2:
            self._refresh()
            target = self._inode.size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        if target < 0:
            raise ValueError(f"negative seek position {target}")
        self._position = target
        return target

    def tell(self) -> int:
        return self._position

    # --- Data access -------------------------------------------------------------

    def read(self, length: Optional[int] = None) -> bytes:
        """Read up to ``length`` bytes (to EOF when omitted)."""
        self._check_open()
        self._refresh()
        if length is None:
            length = max(0, self._inode.size - self._position)
        data = self._fs.read_data(self._inode, self._position, length)
        self._position += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write ``data`` at the current position."""
        self._check_open()
        if not self._writable:
            raise PermissionError("file opened read-only")
        if not data:
            return 0
        self._refresh()
        self._inode = self._fs.write_data(self._inode, self._position, data)
        self._position += len(data)
        return len(data)

    def pread(self, offset: int, length: int) -> bytes:
        """Positioned read; does not move the handle position."""
        self._check_open()
        self._refresh()
        return self._fs.read_data(self._inode, offset, length)

    def pwrite(self, offset: int, data: bytes) -> int:
        """Positioned write; does not move the handle position."""
        self._check_open()
        if not self._writable:
            raise PermissionError("file opened read-only")
        self._refresh()
        self._inode = self._fs.write_data(self._inode, offset, data)
        return len(data)

    def truncate(self, size: int) -> None:
        """Shrink or sparsely grow the file."""
        self._check_open()
        if not self._writable:
            raise PermissionError("file opened read-only")
        self._refresh()
        self._inode = self._fs.truncate_data(self._inode, size)
        self._position = min(self._position, size)

    def close(self) -> None:
        """Release the handle ("closing a file releases the region
        containing the corresponding inode"); idempotent."""
        self._closed = True

    def __enter__(self) -> "KFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
