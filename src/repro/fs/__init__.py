"""KFS: the wide-area distributed file system of paper Section 4.1.

"The filesystem treats the entire Khazana space as a single disk ...
At the time of file system creation, the creator allocates a
superblock and an inode for the root of the filesystem.  Mounting this
filesystem only requires the Khazana address of the superblock.
Creating a file involves the creation of an inode and directory entry
for the file.  Each inode is allocated as a region of its own ...
In the current implementation, each block of the filesystem is
allocated into a separate 4-kilobyte region."

KFS is written **entirely against the public Khazana client API** —
it never touches daemons, networks, or consistency internals.  The
same code runs on a 1-node cluster or a 32-node one; that location
obliviousness is the claim experiment C6 measures.
"""

from repro.fs.filesystem import FileSystemError, KhazanaFileSystem
from repro.fs.file import KFile
from repro.fs.inode import FileType, Inode

__all__ = [
    "FileSystemError",
    "FileType",
    "Inode",
    "KFile",
    "KhazanaFileSystem",
]
