"""Inodes.

"Each inode is allocated as a region of its own.  Parameters specified
at file creation time may be used to specify the number of replicas
required, consistency level required, access modes permitted, and so
forth." (paper Section 4.1)

An inode occupies one 16 KiB page in its private region and holds the
file type, size, and the list of data-block region addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.fs.layout import (
    BLOCK_SIZE,
    INODE_PAGE_SIZE,
    LayoutError,
    MAX_BLOCKS,
    decode_struct,
    encode_struct,
)


class FileType(str, enum.Enum):
    FILE = "file"
    DIRECTORY = "dir"


@dataclass
class Inode:
    """In-memory form of one inode."""

    address: int              # region id of the inode's own region
    file_type: FileType
    size: int = 0             # file length in bytes
    blocks: List[int] = field(default_factory=list)   # block region ids
    nlink: int = 1
    created_at: float = 0.0
    modified_at: float = 0.0
    #: Attribute knobs recorded at creation (informational; the block
    #: regions were reserved with them).
    consistency: str = "strict"
    replicas: int = 1
    #: Back-pointer: the leaf name this inode is bound to and the
    #: inode address of its parent directory.  Lets cached
    #: path->inode-address hints be validated without re-reading the
    #: parent directory's blocks (renames update these fields).
    name: str = ""
    parent: int = 0
    #: Data layout: "blocks" (one 4 KiB region per block, the paper's
    #: current implementation) or "extent" (one contiguous region
    #: resized as the file grows — the paper's stated alternative).
    layout: str = "blocks"
    #: Extent layout only: the data region's id and current capacity.
    extent: int = 0
    extent_capacity: int = 0

    @property
    def is_dir(self) -> bool:
        return self.file_type is FileType.DIRECTORY

    def block_index_for(self, offset: int) -> int:
        return offset // BLOCK_SIZE

    def blocks_needed(self, size: int) -> int:
        return -(-size // BLOCK_SIZE)

    def check_capacity(self, size: int) -> None:
        if self.blocks_needed(size) > MAX_BLOCKS:
            raise LayoutError(
                f"file of {size} bytes needs "
                f"{self.blocks_needed(size)} blocks; inode holds at most "
                f"{MAX_BLOCKS}"
            )

    def encode(self) -> bytes:
        return encode_struct(self.to_doc(), INODE_PAGE_SIZE)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "type": self.file_type.value,
            "size": self.size,
            "blocks": self.blocks,
            "nlink": self.nlink,
            "created_at": self.created_at,
            "modified_at": self.modified_at,
            "consistency": self.consistency,
            "replicas": self.replicas,
            "name": self.name,
            "parent": self.parent,
            "layout": self.layout,
            "extent": self.extent,
            "extent_capacity": self.extent_capacity,
        }

    @classmethod
    def decode(cls, address: int, data: bytes) -> "Inode":
        doc = decode_struct(data)
        if not doc:
            raise LayoutError(f"inode region {address:#x} is empty")
        return cls(
            address=address,
            file_type=FileType(doc["type"]),
            size=int(doc["size"]),
            blocks=[int(b) for b in doc["blocks"]],
            nlink=int(doc.get("nlink", 1)),
            created_at=float(doc.get("created_at", 0.0)),
            modified_at=float(doc.get("modified_at", 0.0)),
            consistency=str(doc.get("consistency", "strict")),
            replicas=int(doc.get("replicas", 1)),
            name=str(doc.get("name", "")),
            parent=int(doc.get("parent", 0)),
            layout=str(doc.get("layout", "blocks")),
            extent=int(doc.get("extent", 0)),
            extent_capacity=int(doc.get("extent_capacity", 0)),
        )
