"""KHZ012 placement-seam: placement decisions have exactly one owner.

PR 9 moved every "where does this region live / who answers this
lookup" decision behind :class:`repro.core.placement.PlacementStrategy`
(the tiered chain and the hash ring are interchangeable backends).
The seam only stays a seam if the rest of the tree cannot quietly grow
new placement logic, so outside ``repro/core/placement/`` this rule
flags:

- **config-manager reads** — reading ``.cluster_manager_node`` off a
  config object (``config.cluster_manager_node``,
  ``kernel.config.cluster_manager_node``, ...).  Which node plays
  cluster manager is a *tiered-strategy* concept; under the ring there
  may be no meaningful manager at all.  Go through
  ``kernel.cluster_manager_node`` (the kernel property that delegates
  to the strategy) or ``placement.manager_node`` instead.  Writing the
  field (dataclass defaults, ``replace(..., cluster_manager_node=...)``
  keywords) stays legal — deployments still *configure* the role.
- **ring-math imports/calls** — importing or calling the rendezvous
  primitives (``mix64``, ``rendezvous_weight``, ``rank_members``,
  ``director_of``) from :mod:`repro.core.placement.ring`.  Any second
  call site computing homes can drift from the strategy's answer; ask
  the strategy (``choose_homes`` / ``home_order``) instead.  The
  :class:`~repro.core.placement.ring.DirectorTable` abstraction and the
  ``bucket_of``/``BUCKET_BYTES`` address geometry remain importable —
  the churn benchmark measures the table itself.

Scope: files under ``repro/`` (the shipped package) only; tests and
examples exercise internals by design.  Suppress a deliberate
exception with ``# khz: allow-placement-seam(reason)``.

This rule lives outside :mod:`repro.analysis.lint` purely for size:
that module sits just under the structure guard's per-module line
ceiling.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING

from repro.analysis.sources import SourceFile

if TYPE_CHECKING:   # the reporter duck type lives in lint.py
    from repro.analysis.lint import _Reporter

#: The only package allowed to make placement decisions.
PLACEMENT_SCOPE = "repro/core/placement/"

#: KHZ012 applies to the shipped package, not tests/examples.
PACKAGE_SCOPE = "repro/"

#: Rendezvous primitives fenced inside the placement package.
RING_MATH = ("mix64", "rendezvous_weight", "rank_members", "director_of")

#: Module whose math is fenced.
RING_MODULE = "repro.core.placement.ring"

#: Attribute bases that look like a config object.
CONFIGISH_NAME_RE = re.compile(r"^(?:config|cfg|conf)\w*$")


def _configish_base(node: ast.expr) -> bool:
    """Does this expression look like it holds a DaemonConfig?"""
    if isinstance(node, ast.Name):
        return CONFIGISH_NAME_RE.match(node.id) is not None
    if isinstance(node, ast.Attribute):
        return CONFIGISH_NAME_RE.match(node.attr) is not None
    return False


def check_placement_seam(sf: SourceFile, reporter: "_Reporter") -> None:
    """KHZ012: no placement decisions outside repro/core/placement/."""
    if PACKAGE_SCOPE not in sf.path or PLACEMENT_SCOPE in sf.path:
        return
    # Local import: lint.py imports this module from its driver.
    from repro.analysis.lint import _dotted_call_name, _import_map

    origins = _import_map(sf.tree)
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Call):
            dotted = _dotted_call_name(node.func, origins)
            if dotted is not None and any(
                dotted == f"{RING_MODULE}.{name}" for name in RING_MATH
            ):
                reporter.flag(
                    sf, node.lineno, "KHZ012", "placement-seam",
                    f"calling ring math ({dotted.rsplit('.', 1)[1]}) "
                    "outside repro/core/placement/; ask the strategy "
                    "(choose_homes/home_order) instead of recomputing "
                    "homes",
                )
                continue
        if isinstance(node, ast.Attribute):
            if (node.attr == "cluster_manager_node"
                    and isinstance(node.ctx, ast.Load)
                    and _configish_base(node.value)):
                reporter.flag(
                    sf, node.lineno, "KHZ012", "placement-seam",
                    "reading config.cluster_manager_node outside "
                    "repro/core/placement/; go through "
                    "kernel.cluster_manager_node or "
                    "placement.manager_node so the strategy owns the "
                    "answer",
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module != RING_MODULE:
                continue
            for alias in node.names:
                if alias.name in RING_MATH:
                    reporter.flag(
                        sf, node.lineno, "KHZ012", "placement-seam",
                        f"importing ring math ({alias.name}) outside "
                        "repro/core/placement/; ask the strategy "
                        "(choose_homes/home_order) instead of "
                        "recomputing homes",
                    )
