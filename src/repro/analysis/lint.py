"""Project-specific static lint for the Khazana reproduction.

Run as ``python -m repro.analysis.lint src/ tests/ examples/``.

The rules encode invariants of *this* codebase that generic linters
cannot know:

- **KHZ001 blocking-call** — protocol code (``repro/core``,
  ``repro/consistency``, ``repro/net``, ``repro/failure``) runs inside
  a discrete-event simulation; real ``time.sleep``, socket, file, or
  subprocess I/O would block the single simulation thread and desync
  virtual time.  Everything must go through the sim clock/transport.
- **KHZ002 unhandled-message / missing-fallback / reply-class** —
  every non-reply :class:`~repro.net.message.MessageType` member must
  have a handler registered somewhere (``on(MessageType.X, ...)``);
  every consistency manager defining a ``handle_*_batch`` method must
  also define the per-page ``handle_*`` fallback; every type sent as
  a reply must be classified in ``REPLY_TYPES``.
- **KHZ003 broad-except** — ``except Exception:`` (or bare
  ``except:``) in protocol code may not silently swallow errors: the
  body must log what happened, or the line carries a suppression.
- **KHZ004 stale-context** — within one function, a lock context
  variable may not be passed to ``read``/``write`` after being passed
  to ``unlock`` (lexical, intra-function dataflow; reassignment
  clears the mark).
- **KHZ005 foreign-exception** — exceptions raised in consistency
  code, ``core/daemon.py``, and ``core/locks.py`` must come from the
  :mod:`repro.core.errors` taxonomy (or be built by
  ``error_from_code``/``_typed_denial``), and the raised name must
  actually be bound in the module — catching the
  raise-an-unimported-name bug that only explodes on the error path.
- **KHZ006 private-daemon-attr** — code outside ``repro/core`` may
  not reach into ``_``-private attributes of a daemon/kernel/host
  object.  Consistency managers, tools, analysis code, and tests must
  use the :class:`~repro.core.cmhost.CMHost` surface or another
  public kernel API; private state is free to move between the node
  services without notice.
- **KHZ007 direct-wire** — consistency *policy* modules (everything
  under ``repro/consistency/`` outside ``repro/consistency/engine/``)
  may not touch ``host.rpc`` or call ``host.reply_request`` /
  ``host.reply_error`` directly; all wire traffic goes through the
  :class:`~repro.consistency.engine.ProtocolEngine` primitives so
  retry policies, NAK classification, counters, and task labels stay
  uniform across protocols.
- **KHZ008 direct-scheduler** — no code under ``repro/consistency/``
  (policies *or* engine clients) may call the raw scheduler timer
  surface ``call_at``/``call_later``/``call_soon``.  Timers in the
  consistency layer must ride ``host.sleep``/``host.with_timeout`` or
  a labelled engine spawn, so every consistency-layer event carries a
  stable label the schedule explorer (``repro.analysis.explore``) can
  see and reorder.
- **KHZ009 page-copy** — the data-path hot functions (the
  read/write/residency path in ``core/dataplane.py`` and the
  twin/diff machinery in ``consistency/diffs.py``) move pages by
  reference: stored buffers are frozen, so slices travel as
  ``memoryview``s and a ``bytes(...)`` call is a whole-page copy
  until proven otherwise.  Every ``bytes(...)`` call in those
  functions must carry an ``allow-copy`` suppression naming why the
  copy is mandatory (e.g. a client-facing return must own its bytes).
- **KHZ010 spawn-label** — every task launched via ``.spawn(...)``,
  ``.spawn_handler(...)``, or ``.pipeline(...)`` must carry a stable,
  non-empty label (positional or ``label=``/``op=``): the schedule
  explorer, message tracer, and race detector all key on task labels,
  and an unlabeled task falls back to an anonymous name that changes
  between runs.
- **KHZ011 runtime-dep** — wall-clock, asyncio, and socket calls
  (``time.time``/``time.monotonic``/``time.perf_counter``/
  ``time.sleep``, ``asyncio.*``, ``socket.*``, ``selectors.*``) are
  fenced inside the two runtime-seam modules (``repro/net/aio.py``,
  ``repro/net/tcp.py``); driver modules (the cluster launcher and
  the wall-clock benchmarks) may own loops and clocks but still may
  not open sockets.  Everything else must stay runtime-agnostic so
  the same protocol code runs over the simulator and over TCP.
- **KHZ012 placement-seam** (in :mod:`repro.analysis.lint_placement`)
  — outside ``repro/core/placement/``, shipped code may not read
  ``config.cluster_manager_node`` or import/call the rendezvous ring
  math; placement decisions go through the
  :class:`~repro.core.placement.PlacementStrategy` seam.
- **KHZ013 static-table** (in :mod:`repro.analysis.lint_protocol`)
  — ``TRANSITIONS`` tables and ``PageEvent``/``MessageType`` dispatch
  maps must stay statically extractable: pure literals, no runtime
  mutation or computed keys, so the Layer 5 protocol verifier
  (:mod:`repro.analysis.protocol`) always sees the real automaton.

Suppression: append ``# khz: allow-<slug>(reason)`` to the flagged
line.  The reason is mandatory; an empty one is itself an error.
Slugs: ``blocking-call``, ``unhandled-message``, ``missing-fallback``,
``reply-class``, ``broad-except``, ``stale-context``,
``foreign-exception``, ``private-daemon-attr``, ``direct-wire``,
``direct-scheduler``, ``copy``, ``spawn-label``, ``runtime-dep``,
``placement-seam``, ``static-table``.

The whole-program flow analyzer (:mod:`repro.analysis.flow`) layers
interprocedural checks (KHZ101 lock-order, KHZ102 reply-path, KHZ103
await-discipline) on the same :class:`SourceFile`/suppression
machinery; see ``docs/analysis.md``.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.sources import (   # re-exported for compatibility
    SUPPRESS_RE,
    SourceFile,
    collect as _collect,
)

#: Dotted-call prefixes that block the simulation thread.
BLOCKING_PREFIXES = (
    "time.sleep",
    "socket.",
    "subprocess.",
    "os.system",
    "os.popen",
    "select.select",
    "selectors.",
    "requests.",
    "urllib.request.",
    "http.client.",
)

#: Method names whose presence in an except body counts as logging.
LOG_METHODS = {"debug", "info", "warning", "error", "exception", "critical",
               "log", "warn"}

#: Paths (posix substrings) where KHZ001 applies.
SIM_SCOPES = ("repro/core/", "repro/consistency/", "repro/net/",
              "repro/failure/")

#: Paths where KHZ005 applies.
TAXONOMY_SCOPES = ("repro/consistency/",)
TAXONOMY_FILES = ("repro/core/daemon.py", "repro/core/locks.py")

#: Names that construct taxonomy errors without naming a class.
TAXONOMY_FACTORIES = {"error_from_code", "_typed_denial", "typed_denial"}

#: Variable names that (by convention) hold a daemon/kernel object.
DAEMONISH_NAME_RE = re.compile(r"^(?:daemon|host|kernel)\w*$")

#: Path substring marking the only package allowed to touch daemon
#: internals (KHZ006).
KERNEL_SCOPE = "repro/core/"

#: Paths where KHZ007 applies (policy side of the consistency layer).
POLICY_SCOPE = "repro/consistency/"
#: ... except the engine, which *is* the wire layer.
ENGINE_SCOPE = "repro/consistency/engine/"

#: Reply methods a policy must reach via engine.reply / engine.nak.
REPLY_METHODS = ("reply_request", "reply_error")

#: Raw scheduler timer methods (KHZ008): consistency code must not
#: schedule unlabelled events; use host.sleep / host.with_timeout or a
#: labelled engine spawn instead.
SCHEDULER_METHODS = ("call_at", "call_later", "call_soon")

#: KHZ009: zero-copy hot functions, per file (path substring ->
#: function names).  ``bytes(...)`` inside these needs an
#: ``allow-copy`` justification.
COPY_FREE_FUNCS: Dict[str, Tuple[str, ...]] = {
    "repro/core/dataplane.py": (
        "op_read", "op_write", "try_read_fast", "try_write_fast",
        "local_page_bytes", "store_local_page",
    ),
    "repro/consistency/diffs.py": (
        "compute_diff", "apply_diff", "remember", "diff_update",
    ),
}


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class _Reporter:
    """Collects findings, honoring same-line suppressions."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []

    def flag(self, sf: SourceFile, line: int, rule: str, slug: str,
             message: str) -> None:
        for found_slug, reason in sf.suppressions.get(line, ()):
            if found_slug != slug:
                continue
            if not reason.strip():
                self.findings.append(Finding(
                    sf.path, line, rule,
                    f"suppression allow-{slug} needs a written reason",
                ))
            return
        self.findings.append(Finding(sf.path, line, rule, message))


def _in_scope(path: str, scopes: Sequence[str] = (),
              files: Sequence[str] = ()) -> bool:
    return any(scope in path for scope in scopes) or any(
        path.endswith(name) for name in files
    )


def _import_map(tree: ast.AST) -> Dict[str, str]:
    """Local name -> dotted origin for every import in the module."""
    origins: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                origins[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                origins[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return origins


def _dotted_call_name(func: ast.expr,
                      origins: Dict[str, str]) -> Optional[str]:
    """Resolve a call target to a dotted name via the import map."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = origins.get(node.id, node.id if not parts else None)
    if root is None:
        return None
    return ".".join([root] + list(reversed(parts)))


# ---------------------------------------------------------------------------
# KHZ001: no blocking calls in simulation code
# ---------------------------------------------------------------------------

def check_blocking_calls(sf: SourceFile, reporter: _Reporter) -> None:
    if not _in_scope(sf.path, scopes=SIM_SCOPES):
        return
    origins = _import_map(sf.tree)
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            reporter.flag(
                sf, node.lineno, "KHZ001", "blocking-call",
                "real file I/O (open) in simulation code; use the "
                "storage hierarchy",
            )
            continue
        dotted = _dotted_call_name(node.func, origins)
        if dotted is None:
            continue
        for prefix in BLOCKING_PREFIXES:
            if dotted == prefix or (prefix.endswith(".")
                                    and dotted.startswith(prefix)):
                reporter.flag(
                    sf, node.lineno, "KHZ001", "blocking-call",
                    f"blocking call {dotted} in simulation code; use "
                    "the sim clock/transport instead",
                )
                break


# ---------------------------------------------------------------------------
# KHZ002: MessageType completeness (project-wide)
# ---------------------------------------------------------------------------

def _message_enum(sf: SourceFile) -> Tuple[Dict[str, int], Set[str]]:
    """(member name -> line) of MessageType, and REPLY_TYPES names."""
    members: Dict[str, int] = {}
    replies: Set[str] = set()
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ClassDef) and node.name == "MessageType":
            for stmt in node.body:
                if (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)):
                    members[stmt.targets[0].id] = stmt.lineno
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "REPLY_TYPES"
                        for t in node.targets)):
            for sub in ast.walk(node.value):
                if (isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "MessageType"):
                    replies.add(sub.attr)
    return members, replies


def _message_type_args(call: ast.Call) -> List[str]:
    names = []
    for arg in call.args:
        if (isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "MessageType"):
            names.append(arg.attr)
    return names


def check_message_completeness(files: Sequence[SourceFile],
                               reporter: _Reporter) -> None:
    message_sf = next(
        (sf for sf in files if sf.path.endswith("repro/net/message.py")),
        None,
    )
    if message_sf is None:
        return
    members, replies = _message_enum(message_sf)

    handled: Set[str] = set()
    for sf in files:
        if "repro/" not in sf.path:
            continue
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # `on(...)` is the raw RPC registration; `register`/`reg`
            # are the MessageRouter's route registrations.
            is_on = (
                isinstance(func, ast.Name) and func.id in ("on", "reg")
            ) or (
                isinstance(func, ast.Attribute)
                and func.attr in ("on", "register")
            )
            if is_on:
                handled.update(_message_type_args(node))
                continue
            # Reply classification: types sent as replies must be in
            # REPLY_TYPES or the RPC layer cannot account for them.
            is_reply_call = isinstance(func, ast.Attribute) and func.attr in (
                "reply", "reply_request"
            )
            if is_reply_call:
                for name in _message_type_args(node):
                    if name in members and name not in replies:
                        reporter.flag(
                            sf, node.lineno, "KHZ002", "reply-class",
                            f"MessageType.{name} is sent as a reply but "
                            "missing from REPLY_TYPES",
                        )

    for name, line in sorted(members.items(), key=lambda kv: kv[1]):
        if name in replies or name in handled:
            continue
        reporter.flag(
            message_sf, line, "KHZ002", "unhandled-message",
            f"MessageType.{name} has no registered handler "
            "(no on(MessageType.{0}, ...) anywhere)".format(name),
        )

    # Batch fallback: a CM handling the batched form of an operation
    # must also handle the per-page form, or a peer with batching
    # disabled cannot talk to it.
    for sf in files:
        if "repro/consistency/" not in sf.path:
            continue
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for name, line in sorted(methods.items()):
                if not (name.startswith("handle_")
                        and name.endswith("_batch")):
                    continue
                fallback = name[: -len("_batch")]
                if fallback not in methods:
                    reporter.flag(
                        sf, line, "KHZ002", "missing-fallback",
                        f"{node.name}.{name} has no per-page fallback "
                        f"{fallback}",
                    )


# ---------------------------------------------------------------------------
# KHZ003: no silent broad excepts in protocol code
# ---------------------------------------------------------------------------

def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: List[str] = []
    if isinstance(handler.type, ast.Name):
        names = [handler.type.id]
    elif isinstance(handler.type, ast.Tuple):
        names = [e.id for e in handler.type.elts if isinstance(e, ast.Name)]
    return "Exception" in names


def _body_logs(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in LOG_METHODS):
            return True
    return False


def check_broad_except(sf: SourceFile, reporter: _Reporter) -> None:
    if "repro/" not in sf.path:
        return
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node):
            continue
        if _body_logs(node):
            continue
        what = ("bare except" if node.type is None
                else "except Exception")
        reporter.flag(
            sf, node.lineno, "KHZ003", "broad-except",
            f"{what} in protocol code must log what it swallowed, "
            "narrow the type, or carry a suppression",
        )


# ---------------------------------------------------------------------------
# KHZ004: no read/write with a context after its unlock
# ---------------------------------------------------------------------------

_UNLOCK_METHODS = {"unlock", "op_unlock"}
_ACCESS_METHODS = {"read", "write", "op_read", "op_write"}


def _first_name_arg(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Name):
        return call.args[0].id
    return None


def check_stale_contexts(sf: SourceFile, reporter: _Reporter) -> None:
    for func in ast.walk(sf.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        events: List[Tuple[int, int, str, str]] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                name = _first_name_arg(node)
                if name is None:
                    continue
                if node.func.attr in _UNLOCK_METHODS:
                    events.append((node.lineno, node.col_offset,
                                   "unlock", name))
                elif node.func.attr in _ACCESS_METHODS:
                    events.append((node.lineno, node.col_offset,
                                   "access", name))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        events.append((node.lineno, node.col_offset,
                                       "assign", target.id))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                # ``with dp.op_lock(...) as ctx:`` re-binds ctx just
                # like an assignment; without this, a fresh context
                # bound by ``as`` after an unlock of the same name
                # would be flagged as stale.
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        events.append((node.lineno, node.col_offset,
                                       "assign", item.optional_vars.id))
        unlocked: Set[str] = set()
        for lineno, _col, kind, name in sorted(events):
            if kind == "unlock":
                unlocked.add(name)
            elif kind == "assign":
                unlocked.discard(name)
            elif kind == "access" and name in unlocked:
                reporter.flag(
                    sf, lineno, "KHZ004", "stale-context",
                    f"context {name!r} is used after being unlocked "
                    f"earlier in {func.name}",
                )


# ---------------------------------------------------------------------------
# KHZ005: raised exceptions come from the core.errors taxonomy
# ---------------------------------------------------------------------------

def _taxonomy_names() -> Set[str]:
    from repro.core import errors as errors_module

    names = set()
    for attr in dir(errors_module):
        obj = getattr(errors_module, attr)
        if (isinstance(obj, type)
                and issubclass(obj, errors_module.KhazanaError)):
            names.add(attr)
    return names


def _bound_names(tree: ast.AST) -> Set[str]:
    bound: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.ClassDef, ast.FunctionDef,
                               ast.AsyncFunctionDef)):
            bound.add(node.name)
    return bound


def _local_taxonomy_subclasses(tree: ast.AST,
                               taxonomy: Set[str]) -> Set[str]:
    """Classes defined in this module deriving from a taxonomy name."""
    local: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node.name in local:
                continue
            bases = {b.id for b in node.bases if isinstance(b, ast.Name)}
            bases.update(
                b.attr for b in node.bases if isinstance(b, ast.Attribute)
            )
            if bases & (taxonomy | local):
                local.add(node.name)
                changed = True
    return local


def check_error_taxonomy(sf: SourceFile, reporter: _Reporter,
                         taxonomy: Set[str]) -> None:
    if not _in_scope(sf.path, scopes=TAXONOMY_SCOPES, files=TAXONOMY_FILES):
        return
    bound = _bound_names(sf.tree)
    local = _local_taxonomy_subclasses(sf.tree, taxonomy)
    allowed = taxonomy | local | TAXONOMY_FACTORIES
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Name):
            continue   # re-raise of a caught variable
        if not isinstance(exc, ast.Call):
            continue
        callee = exc.func
        if isinstance(callee, ast.Attribute):
            name = callee.attr
        elif isinstance(callee, ast.Name):
            name = callee.id
        else:
            continue
        if name not in allowed:
            reporter.flag(
                sf, node.lineno, "KHZ005", "foreign-exception",
                f"raise {name}(...) is outside the core.errors "
                "taxonomy; raise a KhazanaError subclass so clients "
                "get a typed, wire-codable failure",
            )
        elif isinstance(callee, ast.Name) and name not in bound:
            reporter.flag(
                sf, node.lineno, "KHZ005", "foreign-exception",
                f"raise {name}(...) but {name} is never imported in "
                "this module — NameError on the error path",
            )


# ---------------------------------------------------------------------------
# KHZ006: private daemon attribute access outside repro/core
# ---------------------------------------------------------------------------

def _names_a_daemon(expr: ast.expr) -> bool:
    """Heuristic: does this expression evaluate to a daemon/kernel?

    Covers the three shapes that occur in practice: a local named
    ``daemon``/``host``/``kernel`` (with suffixes, e.g. ``daemon2``),
    an attribute of that name (``self.daemon``, ``cm.host``), and the
    test-harness accessor ``cluster.daemon(0)``.
    """
    if isinstance(expr, ast.Name):
        return bool(DAEMONISH_NAME_RE.match(expr.id))
    if isinstance(expr, ast.Attribute):
        return expr.attr in ("daemon", "host", "kernel")
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute):
            return func.attr == "daemon"
        if isinstance(func, ast.Name):
            return func.id == "daemon"
    return False


def check_private_daemon_access(sf: SourceFile,
                                reporter: _Reporter) -> None:
    if KERNEL_SCOPE in sf.path:
        return   # the kernel and its services own this state
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Attribute):
            continue
        attr = node.attr
        if not attr.startswith("_") or attr.startswith("__"):
            continue
        if _names_a_daemon(node.value):
            reporter.flag(
                sf, node.lineno, "KHZ006", "private-daemon-attr",
                f"access to private daemon attribute .{attr} outside "
                "repro/core; use the CMHost protocol or a public "
                "kernel API instead",
            )


# ---------------------------------------------------------------------------
# KHZ007: policy modules reach the wire only through the engine
# ---------------------------------------------------------------------------

def check_direct_wire(sf: SourceFile, reporter: _Reporter) -> None:
    if POLICY_SCOPE not in sf.path or ENGINE_SCOPE in sf.path:
        return
    for node in ast.walk(sf.tree):
        if (isinstance(node, ast.Attribute)
                and node.attr == "rpc"
                and _names_a_daemon(node.value)):
            reporter.flag(
                sf, node.lineno, "KHZ007", "direct-wire",
                "policy code touches host.rpc directly; go through "
                "engine.request/engine.send so retry policies and "
                "counters stay uniform",
            )
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in REPLY_METHODS
                and _names_a_daemon(node.func.value)):
            reporter.flag(
                sf, node.lineno, "KHZ007", "direct-wire",
                f"policy code calls host.{node.func.attr} directly; "
                "go through engine.reply/engine.nak",
            )


# ---------------------------------------------------------------------------
# KHZ008: consistency code never touches the raw scheduler timers
# ---------------------------------------------------------------------------

def check_direct_scheduler(sf: SourceFile, reporter: _Reporter) -> None:
    if POLICY_SCOPE not in sf.path:
        return
    for node in ast.walk(sf.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SCHEDULER_METHODS):
            reporter.flag(
                sf, node.lineno, "KHZ008", "direct-scheduler",
                f"consistency code calls .{node.func.attr} on the "
                "scheduler directly; use host.sleep/host.with_timeout "
                "or a labelled engine spawn so the event carries a "
                "label the schedule explorer can see",
            )


# ---------------------------------------------------------------------------
# KHZ009: no unjustified page copies in the zero-copy hot path
# ---------------------------------------------------------------------------

def check_page_copies(sf: SourceFile, reporter: _Reporter) -> None:
    funcs: Tuple[str, ...] = ()
    for path_part, names in COPY_FREE_FUNCS.items():
        if path_part in sf.path:
            funcs = names
            break
    if not funcs:
        return
    for node in ast.walk(sf.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in funcs:
            continue
        for call in ast.walk(node):
            if (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id == "bytes"
                    and call.args):
                reporter.flag(
                    sf, call.lineno, "KHZ009", "copy",
                    f"bytes(...) in zero-copy hot function "
                    f"{node.name}() copies a page-sized buffer; pass "
                    "a memoryview through, or justify the copy with "
                    "allow-copy(reason)",
                )


# ---------------------------------------------------------------------------
# KHZ010: every spawned task carries a stable, non-empty label
# ---------------------------------------------------------------------------

#: Task-launching methods and the argument position of their label:
#: ``spawn(gen, label)``, ``spawn_handler(msg, gen, label)``,
#: ``pipeline(gens, op=...)``.  The keyword spelling differs per
#: surface (``label=`` on the kernel/task layer, ``op=`` on the
#: engine), so both are accepted.
_SPAWN_LABEL_POSITION = {"spawn": 2, "spawn_handler": 3, "pipeline": 2}
_SPAWN_LABEL_KEYWORDS = ("label", "op")


def check_spawn_labels(sf: SourceFile, reporter: _Reporter) -> None:
    if "repro/" not in sf.path:
        return
    for node in ast.walk(sf.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        position = _SPAWN_LABEL_POSITION.get(attr)
        if position is None:
            continue
        label_kw = next(
            (kw for kw in node.keywords
             if kw.arg in _SPAWN_LABEL_KEYWORDS),
            None,
        )
        if label_kw is not None:
            label_value: Optional[ast.expr] = label_kw.value
        elif len(node.args) >= position:
            label_value = node.args[position - 1]
        else:
            reporter.flag(
                sf, node.lineno, "KHZ010", "spawn-label",
                f".{attr}(...) launches a task without a label; the "
                "schedule explorer and trace tooling key on stable "
                "task labels",
            )
            continue
        if (isinstance(label_value, ast.Constant)
                and isinstance(label_value.value, str)
                and not label_value.value.strip()):
            reporter.flag(
                sf, node.lineno, "KHZ010", "spawn-label",
                f".{attr}(...) task label is empty; give the task a "
                "stable, non-empty label",
            )


# ---------------------------------------------------------------------------
# KHZ011: wall-clock, asyncio and socket use stays in the runtime seam
# ---------------------------------------------------------------------------

#: The only modules allowed to touch the real clock, asyncio, or
#: sockets directly: they *implement* the Runtime/Transport seam.
RUNTIME_MODULES = ("repro/net/aio.py", "repro/net/tcp.py")

#: Top-level drivers that own an event loop or measure wall time
#: (launchers and benchmarks).  They may use ``time.*`` and
#: ``asyncio.*`` but still must not open sockets themselves — all
#: wire traffic goes through a Transport.
DRIVER_MODULES = ("repro/tools/cluster.py", "repro/bench/transport.py",
                  "repro/bench/hotpath.py", "repro/bench/placement.py")

#: Dotted-call prefixes that bind code to a real runtime (KHZ011).
RUNTIME_PREFIXES = (
    "time.time",
    "time.monotonic",
    "time.perf_counter",
    "time.sleep",
    "asyncio.",
    "socket.",
    "selectors.",
)

#: The subset drivers may not use even though they own a loop.
SOCKET_PREFIXES = ("socket.", "selectors.")

#: In KHZ001 territory (SIM_SCOPES) the blocking-call rule already
#: polices sleep/socket/selectors with its own slug; KHZ011 adds only
#: what KHZ001 cannot see (clock reads and asyncio), so one offence
#: never needs two suppressions.
_SIM_ONLY_PREFIXES = tuple(
    prefix for prefix in RUNTIME_PREFIXES
    if prefix not in BLOCKING_PREFIXES
)


def check_runtime_deps(sf: SourceFile, reporter: _Reporter) -> None:
    """KHZ011: protocol and library code must be runtime-agnostic.

    The whole point of the :class:`~repro.net.runtime.Runtime` seam is
    that NodeKernel, the protocol engine, and every CM policy run
    unmodified over the simulator *and* the asyncio backend.  A stray
    ``time.time()`` or ``asyncio.sleep`` outside the seam quietly
    breaks that: virtual-time runs stop being deterministic, and the
    sim stops being a correctness oracle for the real deployment.
    """
    if "repro/" not in sf.path:
        return
    if _in_scope(sf.path, files=RUNTIME_MODULES):
        return
    if _in_scope(sf.path, files=DRIVER_MODULES):
        prefixes = SOCKET_PREFIXES
    elif _in_scope(sf.path, scopes=SIM_SCOPES):
        prefixes = _SIM_ONLY_PREFIXES
    else:
        prefixes = RUNTIME_PREFIXES
    origins = _import_map(sf.tree)
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_call_name(node.func, origins)
        if dotted is None:
            continue
        for prefix in prefixes:
            if dotted == prefix or (prefix.endswith(".")
                                    and dotted.startswith(prefix)):
                reporter.flag(
                    sf, node.lineno, "KHZ011", "runtime-dep",
                    f"{dotted} binds this module to a real runtime; "
                    "go through the Runtime seam (repro/net/aio.py, "
                    "repro/net/tcp.py) or a driver module instead",
                )
                break


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def lint_files(files: Sequence[SourceFile]) -> List[Finding]:
    """Run every rule over parsed files; returns sorted findings."""
    # Local import: lint_placement borrows this module's AST helpers.
    from repro.analysis.lint_placement import check_placement_seam
    from repro.analysis.lint_protocol import check_static_tables

    reporter = _Reporter()
    taxonomy = _taxonomy_names()
    for sf in files:
        check_blocking_calls(sf, reporter)
        check_broad_except(sf, reporter)
        check_stale_contexts(sf, reporter)
        check_error_taxonomy(sf, reporter, taxonomy)
        check_private_daemon_access(sf, reporter)
        check_direct_wire(sf, reporter)
        check_direct_scheduler(sf, reporter)
        check_page_copies(sf, reporter)
        check_spawn_labels(sf, reporter)
        check_runtime_deps(sf, reporter)
        check_placement_seam(sf, reporter)
        check_static_tables(sf, reporter)
    check_message_completeness(files, reporter)
    return sorted(reporter.findings, key=lambda f: (f.path, f.line, f.rule))


def lint_source(source: str, path: str = "src/repro/example.py",
                extra: Optional[Sequence[SourceFile]] = None) -> List[Finding]:
    """Lint one in-memory source blob (used by the fixture tests).

    ``path`` controls which path-scoped rules apply; ``extra`` supplies
    additional files for the project-wide KHZ002 pass.
    """
    files = [SourceFile.parse(path, source)]
    if extra:
        files.extend(extra)
    return lint_files(files)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        args = ["src/"]
    files = _collect(args)
    findings = lint_files(files)
    for finding in findings:
        print(finding.render())
    print(
        f"repro.analysis.lint: {len(files)} file(s), "
        f"{len(findings)} finding(s)"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
