"""Dynamic race and invariant detection for Khazana clusters.

The detector is a passive observer wired into the hot paths through
*probe* calls: the daemon, lock table, and consistency managers invoke
methods on a :class:`Probe` object at the points where protocol state
changes hands.  The default probe (:data:`NULL_PROBE`) has
``enabled = False`` and every call site guards on that flag, so a
cluster built without ``DaemonConfig(detect_races=True)`` pays one
attribute load per instrumented operation and nothing else.

With detection on, one shared :class:`RaceDetector` observes every
daemon of a cluster.  It maintains a vector clock per node, advanced
on every message send and merged on every delivery, which gives it
the happens-before relation of the simulated execution.  On top of
that it checks, as events arrive:

- **stale-context access** — a read or write presented with a lock
  context that is closed, unknown, or does not cover the page;
- **CREW at-most-one-writer** — two write-capable contexts open on
  the same page of a CREW region anywhere in the system;
- **concurrent conflicting writes** — two writes to the same page
  whose vector clocks are incomparable (neither happened before the
  other).  Under CREW and release consistency with exclusive WRITE
  intentions this is a violation; under the eventual protocol or
  WRITE_SHARED intentions concurrent writes are the design, so they
  are recorded in :attr:`RaceDetector.observed` rather than flagged;
- **write-token conservation** — the release protocol's per-page
  write token is granted at most once before being returned, and
  never returned by a node that does not hold it (covers the batched
  acquire/release paths and failover retries);
- **pin balance** — lock-table registrations and releases stay
  paired per (node, page); a release of more than was registered
  trips immediately, leftovers surface in :meth:`final_check`.

Violations carry the pages, nodes, and the tail of the message
history leading up to them.  :meth:`RaceDetector.final_check` adds
the quiesced-state invariants from :mod:`repro.analysis.invariants`
(leftover pins, outstanding tokens, replica floors, page-directory /
store agreement).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

#: How many delivered messages the violation reports quote.
HISTORY_WINDOW = 24
#: How many past writes per page are kept for happens-before checks.
WRITES_PER_PAGE = 8

VectorClock = Dict[int, int]


def _dominates(a: VectorClock, b: VectorClock) -> bool:
    """True when ``a`` >= ``b`` componentwise (b happened-before a)."""
    return all(a.get(node, 0) >= count for node, count in b.items())


def _concurrent(a: VectorClock, b: VectorClock) -> bool:
    return not _dominates(a, b) and not _dominates(b, a)


@dataclass
class Violation:
    """One detected protocol-invariant violation."""

    rule: str
    detail: str
    pages: Tuple[int, ...] = ()
    nodes: Tuple[int, ...] = ()
    #: The most recent message deliveries before the violation.
    history: Tuple[str, ...] = ()

    def render(self) -> str:
        lines = [f"{self.rule}: {self.detail}"]
        if self.pages:
            lines.append(
                "  pages: " + ", ".join(f"{p:#x}" for p in self.pages)
            )
        if self.nodes:
            lines.append(
                "  nodes: " + ", ".join(str(n) for n in self.nodes)
            )
        if self.history:
            lines.append("  recent messages:")
            lines.extend(f"    {entry}" for entry in self.history)
        return "\n".join(lines)


class Probe:
    """No-op instrumentation interface.

    Call sites guard on :attr:`enabled`, so the base class costs one
    attribute check when detection is off.  :class:`RaceDetector`
    overrides everything.
    """

    enabled = False

    # Lock table ------------------------------------------------------
    def lock_registered(self, ctx: Any, pages: List[int]) -> None:
        pass

    def lock_released(self, ctx: Any, pages: List[int]) -> None:
        pass

    # Daemon data path ------------------------------------------------
    def page_read(self, node_id: int, ctx: Any, pages: List[int],
                  protocol: str) -> None:
        pass

    def page_write(self, node_id: int, ctx: Any, pages: List[int],
                   protocol: str) -> None:
        pass

    def region_seen(self, node_id: int, desc: Any) -> None:
        pass

    # Message router --------------------------------------------------
    def message_dispatched(self, node_id: int, msg: Any) -> None:
        """A wire message is about to be handled at ``node_id``.

        Fired by the MessageRouter's probe middleware before the
        handler runs.  The RaceDetector deliberately does NOT override
        this: its happens-before edges come from the network taps
        (attach_network), and adding events here would change the
        detector's event ordering.
        """

    # Consistency managers --------------------------------------------
    def token_granted(self, home: int, page: int, holder: int) -> None:
        pass

    def token_released(self, home: int, page: int, holder: int) -> None:
        pass

    def exclusive_grant(self, home: int, page: int, requester: int) -> None:
        pass

    def remote_update(self, node_id: int, page: int, writer: int,
                      protocol: str) -> None:
        pass


#: Shared instance used by every daemon with detection off.
NULL_PROBE = Probe()


@dataclass
class _CtxRecord:
    ctx: Any
    pages: Set[int] = field(default_factory=set)


@dataclass
class _WriteRecord:
    node: int
    clock: VectorClock
    mode: str
    protocol: str


class RaceDetector(Probe):
    """Vector-clock race/invariant checker shared by a cluster."""

    enabled = True

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        #: Concurrent writes that are legal under the page's protocol
        #: (eventual, mobile, WRITE_SHARED) — recorded, not flagged.
        self.observed: List[Violation] = []
        self._daemons: List[Any] = []
        self._clocks: Dict[int, VectorClock] = {}
        self._msg_clocks: "OrderedDict[int, VectorClock]" = OrderedDict()
        self._history: Deque[str] = deque(maxlen=HISTORY_WINDOW)
        #: rid -> (protocol, min_replicas); learned from descriptors.
        self._regions: Dict[int, Tuple[str, int]] = {}
        self._open: Dict[int, _CtxRecord] = {}
        self._writes: Dict[int, Deque[_WriteRecord]] = {}
        self._pins: Dict[Tuple[int, int], int] = {}
        self._tokens: Dict[int, int] = {}   # page -> holder node

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_daemon(self, daemon: Any) -> None:
        self._daemons.append(daemon)
        self._clocks.setdefault(daemon.node_id, {})

    def attach_network(self, network: Any) -> None:
        """Observe sends and deliveries for the happens-before order."""
        network.tap(self._on_send)
        network.tap_delivery(self._on_deliver)

    # ------------------------------------------------------------------
    # Vector clocks
    # ------------------------------------------------------------------

    def _tick(self, node_id: int) -> VectorClock:
        clock = self._clocks.setdefault(node_id, {})
        clock[node_id] = clock.get(node_id, 0) + 1
        return clock

    def _on_send(self, message: Any) -> None:
        clock = self._tick(message.src)
        self._msg_clocks[message.msg_id] = dict(clock)
        while len(self._msg_clocks) > 4096:
            self._msg_clocks.popitem(last=False)

    def _on_deliver(self, message: Any) -> None:
        stamped = self._msg_clocks.pop(message.msg_id, None)
        clock = self._clocks.setdefault(message.dst, {})
        if stamped is not None:
            for node, count in stamped.items():
                if clock.get(node, 0) < count:
                    clock[node] = count
        self._tick(message.dst)
        self._history.append(
            f"{message.msg_type.value} {message.src}->{message.dst}"
            f" (msg {message.msg_id})"
        )

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def _flag(self, rule: str, detail: str, pages: Tuple[int, ...] = (),
              nodes: Tuple[int, ...] = ()) -> None:
        self.violations.append(
            Violation(rule=rule, detail=detail, pages=pages, nodes=nodes,
                      history=tuple(self._history))
        )

    def _protocol_of(self, rid: int) -> Optional[str]:
        info = self._regions.get(rid)
        return info[0] if info is not None else None

    def region_seen(self, node_id: int, desc: Any) -> None:
        self._regions[desc.rid] = (
            desc.attrs.protocol, desc.attrs.min_replicas
        )

    def lock_registered(self, ctx: Any, pages: List[int]) -> None:
        record = self._open.setdefault(ctx.ctx_id, _CtxRecord(ctx=ctx))
        protocol = self._protocol_of(ctx.rid)
        for page in pages:
            record.pages.add(page)
            self._pins[(ctx.node_id, page)] = (
                self._pins.get((ctx.node_id, page), 0) + 1
            )
            if not ctx.mode.is_write or protocol != "crew":
                continue
            others = [
                rec for rec in self._open.values()
                if rec.ctx.ctx_id != ctx.ctx_id
                and page in rec.pages
                and rec.ctx.mode.is_write
                and not rec.ctx.closed
            ]
            if others:
                holders = sorted({rec.ctx.node_id for rec in others}
                                 | {ctx.node_id})
                self._flag(
                    "crew-double-writer",
                    f"page {page:#x}: write context {ctx.ctx_id} on node "
                    f"{ctx.node_id} granted while write context(s) "
                    f"{sorted(rec.ctx.ctx_id for rec in others)} are open "
                    "under CREW",
                    pages=(page,),
                    nodes=tuple(holders),
                )

    def lock_released(self, ctx: Any, pages: List[int]) -> None:
        record = self._open.get(ctx.ctx_id)
        for page in pages:
            key = (ctx.node_id, page)
            count = self._pins.get(key, 0) - 1
            if count < 0:
                self._flag(
                    "pin-balance",
                    f"node {ctx.node_id} released page {page:#x} more "
                    "often than it was registered",
                    pages=(page,),
                    nodes=(ctx.node_id,),
                )
                self._pins.pop(key, None)
            elif count == 0:
                self._pins.pop(key, None)
            else:
                self._pins[key] = count
            if record is not None:
                record.pages.discard(page)
        if record is not None and not record.pages:
            del self._open[ctx.ctx_id]

    def _check_ctx_access(self, node_id: int, ctx: Any, pages: List[int],
                          kind: str) -> None:
        record = self._open.get(ctx.ctx_id)
        if ctx.closed or record is None:
            self._flag(
                "stale-context",
                f"{kind} on node {node_id} presented "
                f"{'closed' if ctx.closed else 'unregistered'} lock "
                f"context {ctx.ctx_id}",
                pages=tuple(pages),
                nodes=(node_id,),
            )
            return
        uncovered = [p for p in pages if p not in record.pages]
        if uncovered:
            self._flag(
                "stale-context",
                f"{kind} on node {node_id} touches pages outside lock "
                f"context {ctx.ctx_id}",
                pages=tuple(uncovered),
                nodes=(node_id,),
            )

    def page_read(self, node_id: int, ctx: Any, pages: List[int],
                  protocol: str) -> None:
        self._check_ctx_access(node_id, ctx, pages, "read")

    def page_write(self, node_id: int, ctx: Any, pages: List[int],
                   protocol: str) -> None:
        self._check_ctx_access(node_id, ctx, pages, "write")
        if not ctx.mode.is_write:
            self._flag(
                "stale-context",
                f"write on node {node_id} under {ctx.mode.value} context "
                f"{ctx.ctx_id}",
                pages=tuple(pages),
                nodes=(node_id,),
            )
        clock = dict(self._tick(node_id))
        mode = ctx.mode.value
        for page in pages:
            past = self._writes.setdefault(
                page, deque(maxlen=WRITES_PER_PAGE)
            )
            for prev in past:
                if prev.node == node_id:
                    continue
                if not _concurrent(clock, prev.clock):
                    continue
                relaxed = (
                    protocol in ("eventual", "mobile")
                    or prev.protocol in ("eventual", "mobile")
                    or mode == "write_shared"
                    or prev.mode == "write_shared"
                )
                violation = Violation(
                    rule="concurrent-writes",
                    detail=(
                        f"page {page:#x}: write by node {node_id} "
                        f"({protocol}/{mode}) is concurrent with write "
                        f"by node {prev.node} "
                        f"({prev.protocol}/{prev.mode})"
                    ),
                    pages=(page,),
                    nodes=tuple(sorted({node_id, prev.node})),
                    history=tuple(self._history),
                )
                if relaxed:
                    self.observed.append(violation)
                else:
                    self.violations.append(violation)
            past.append(
                _WriteRecord(node=node_id, clock=clock, mode=mode,
                             protocol=protocol)
            )

    def remote_update(self, node_id: int, page: int, writer: int,
                      protocol: str) -> None:
        self._history.append(
            f"update-applied page={page:#x} at node {node_id} "
            f"from writer {writer} ({protocol})"
        )

    # --- Write tokens (release consistency) ----------------------------

    def token_granted(self, home: int, page: int, holder: int) -> None:
        current = self._tokens.get(page)
        if current is not None:
            self._flag(
                "token-conservation",
                f"page {page:#x}: home {home} granted the write token to "
                f"node {holder} while node {current} still holds it",
                pages=(page,),
                nodes=tuple(sorted({home, holder, current})),
            )
        self._tokens[page] = holder

    def token_released(self, home: int, page: int, holder: int) -> None:
        current = self._tokens.get(page)
        if current is None:
            self._flag(
                "token-conservation",
                f"page {page:#x}: node {holder} returned a write token "
                "that was never granted",
                pages=(page,),
                nodes=tuple(sorted({home, holder})),
            )
            return
        if current != holder:
            self._flag(
                "token-conservation",
                f"page {page:#x}: node {holder} returned the write token "
                f"held by node {current}",
                pages=(page,),
                nodes=tuple(sorted({home, holder, current})),
            )
        del self._tokens[page]

    def exclusive_grant(self, home: int, page: int, requester: int) -> None:
        self._history.append(
            f"crew-exclusive page={page:#x} home {home} -> "
            f"owner {requester}"
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def final_check(self) -> List[Violation]:
        """Quiesced-state invariants; call once the cluster is idle.

        Appends to and returns :attr:`violations`.  Uses the shared
        checks from :mod:`repro.analysis.invariants` plus the
        detector's own leftover-pin and outstanding-token state.
        """
        from repro.analysis import invariants

        for (node, page), count in sorted(self._pins.items()):
            self._flag(
                "pin-balance",
                f"node {node} still pins page {page:#x} "
                f"({count} unmatched registration(s)) at final check",
                pages=(page,),
                nodes=(node,),
            )
        for page, holder in sorted(self._tokens.items()):
            self._flag(
                "token-conservation",
                f"page {page:#x}: write token still held by node "
                f"{holder} at final check",
                pages=(page,),
                nodes=(holder,),
            )
        live = [d for d in self._daemons if d.alive]
        for problem in invariants.check_pin_balance(live):
            self._flag("pin-balance", problem)
        for problem in invariants.check_replica_floor(live):
            self._flag("replica-floor", problem)
        for problem in invariants.check_directory_store_agreement(live):
            self._flag("directory-store", problem)
        for problem in invariants.check_token_ledgers(live):
            self._flag("token-conservation", problem)
        return self.violations

    def report(self) -> str:
        if not self.violations:
            return "race detector: no violations"
        lines = [f"race detector: {len(self.violations)} violation(s)"]
        for violation in self.violations:
            lines.append(violation.render())
        return "\n".join(lines)

    def assert_clean(self) -> None:
        if self.violations:
            raise AssertionError(self.report())
