"""Structural guards for the repro package tree.

Run as ``python -m repro.analysis.structure src/repro``.  Two checks,
both born from the decomposition of the original daemon god-module:

- **size** — no module under ``src/repro`` may exceed
  :data:`MAX_MODULE_LINES` lines.  The daemon once grew to ~1,600
  lines before it had to be split into the kernel services; this
  guard keeps the next god-module from forming silently.  Modules
  under ``repro/consistency/`` get the tighter
  :data:`CONSISTENCY_MODULE_LINES` ceiling: with all shared mechanism
  in ``repro.consistency.engine``, each protocol module is policy
  only, and a policy file that outgrows the ceiling is mechanism
  leaking back in.
- **cycles** — the layered packages :data:`LAYERED_PACKAGES`
  (``repro.core``, ``repro.consistency`` — including its ``engine``
  subpackage — and ``repro.net``) must stay
  free of module-level import cycles.  Only *unconditional top-level*
  ``import``/``from ... import`` statements count: imports inside
  functions and under ``if TYPE_CHECKING:`` are the sanctioned
  escape hatches (the kernel/service split depends on them) and do
  not create a load-time edge.

Exit status 1 on any violation; findings print one per line.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Hard ceiling on module length under src/repro.
MAX_MODULE_LINES = 900

#: Tighter ceiling for the consistency layer: protocol modules hold
#: policy only (mechanism lives in repro.consistency.engine).
CONSISTENCY_MODULE_LINES = 500

#: Packages whose mutual imports must stay acyclic at load time.
LAYERED_PACKAGES = ("repro.core", "repro.consistency", "repro.net")


def line_ceiling(path: Path) -> int:
    """The size ceiling that applies to one module."""
    if "repro/consistency/" in path.as_posix():
        return CONSISTENCY_MODULE_LINES
    return MAX_MODULE_LINES


def check_module_sizes(root: Path) -> List[str]:
    """Flag every ``.py`` file under ``root`` over its line ceiling."""
    problems = []
    for path in sorted(root.rglob("*.py")):
        lines = path.read_text(encoding="utf-8").count("\n") + 1
        ceiling = line_ceiling(path)
        if lines > ceiling:
            problems.append(
                f"{path.as_posix()}: {lines} lines exceeds the "
                f"{ceiling}-line module ceiling — split it "
                "into cohesive services (see docs/architecture.md §2)"
            )
    return problems


def _module_name(path: Path, root: Path) -> Tuple[str, bool]:
    """``src/repro/core/kernel.py`` -> (``repro.core.kernel``, False);
    ``__init__.py`` maps to its package name with ``True``."""
    rel = path.relative_to(root.parent)
    parts = list(rel.with_suffix("").parts)
    is_package = parts[-1] == "__init__"
    if is_package:
        parts.pop()
    return ".".join(parts), is_package


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _top_level_imports(tree: ast.Module) -> List[ast.stmt]:
    """Unconditional module-level import statements only.

    ``if TYPE_CHECKING:`` blocks and ``try:`` fallbacks are skipped —
    neither creates a mandatory load-time edge.
    """
    out: List[ast.stmt] = []
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            out.append(node)
    return out


def _layered(module: str) -> Optional[str]:
    for package in LAYERED_PACKAGES:
        if module == package or module.startswith(package + "."):
            return package
    return None


def build_import_graph(root: Path) -> Dict[str, Set[str]]:
    """Module-level import edges among the layered packages."""
    graph: Dict[str, Set[str]] = {}
    for path in sorted(root.rglob("*.py")):
        module, is_package = _module_name(path, root)
        if _layered(module) is None:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
        edges = graph.setdefault(module, set())
        for node in _top_level_imports(tree):
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            else:
                if node.level:   # relative import
                    # A package's own ``from . import x`` stays in it.
                    strip = node.level - 1 if is_package else node.level
                    base = (module.rsplit(".", strip)[0] if strip
                            else module)
                    targets = [f"{base}.{node.module}"
                               if node.module else base]
                else:
                    targets = [node.module] if node.module else []
            for target in targets:
                if _layered(target) is not None and target != module:
                    edges.add(target)
    return graph


def find_cycle(graph: Dict[str, Set[str]]) -> Optional[List[str]]:
    """First module-level cycle found, as a path ``[a, b, ..., a]``."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        color[node] = GREY
        stack.append(node)
        for dep in sorted(graph.get(node, ())):
            if color.get(dep, BLACK) == GREY:
                return stack[stack.index(dep):] + [dep]
            if color.get(dep, BLACK) == WHITE:
                cycle = visit(dep)
                if cycle is not None:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(graph):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


def check_import_cycles(root: Path) -> List[str]:
    cycle = find_cycle(build_import_graph(root))
    if cycle is None:
        return []
    return [
        "import cycle among layered packages: " + " -> ".join(cycle)
        + " — break it with a TYPE_CHECKING or function-local import"
    ]


def check_tree(root: Path) -> List[str]:
    return check_module_sizes(root) + check_import_cycles(root)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        args = ["src/repro"]
    problems: List[str] = []
    for raw in args:
        root = Path(raw)
        if not root.is_dir():
            raise SystemExit(f"{raw}: not a directory")
        problems.extend(check_tree(root))
    for problem in problems:
        print(problem)
    print(
        f"repro.analysis.structure: {len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
