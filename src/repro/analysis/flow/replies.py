"""KHZ102 — reply-path completeness for request-class messages.

KHZ002 checks, per file, that every ``MessageType`` member has *some*
handler.  This pass goes strictly deeper: it parses the actual route
table (:meth:`MessageRouter.wire`), takes every route registered with
``dedup=True`` — the request class, whose senders block on a reply —
and proves each handler replies (or naks) on **every** path, including
early returns, except arms, and the generator bodies it spawns.

What counts as discharging the obligation on a path:

* a direct ``reply`` / ``nak`` / ``reply_request`` / ``reply_error``
  call that mentions the message;
* delegating the message to a helper that itself always replies
  (``serve_owner_fetch``, ``serve_fetch_batch``, ...), resolved
  through the call graph and checked recursively;
* ``spawn_handler(msg, gen(), op)`` where the spawned generator
  always replies **or raises** — the kernel's handler wrapper naks a
  request on task failure, so a raise is a completed reply path;
* calling a replier parameter — a callable parameter that every call
  site binds to a replying lambda/function (the
  ``serve_token_grants`` shape);
* ``defer_until_unlocked(page, cb)`` where ``cb`` always replies —
  deferral moves the reply in time, not away;
* an exit that only happens when ``msg.request_id is None``: one-way
  transmissions of the same type (fan-outs) expect no reply;
* a guard of the form ``if not helper(...): return`` where every
  ``return False`` path inside the helper has already replied
  (``_primary_only`` / ``check_remote_access``);
* raising: an unhandled exception is loud, not silent, and in spawned
  handler context becomes a nak.  (A sync handler that raises is a
  crash the tests catch — not this rule's concern.)

Everything else that lets a ``dedup=True`` handler return is a
finding: a client hangs until its RPC timeout for every such path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionInfo,
    attribute_chain,
    map_args,
)

REPLYING_ATTRS = {"reply", "nak", "reply_request", "reply_error"}


@dataclass
class RouteInfo:
    msg_type: str
    handler_expr: ast.expr
    dedup: bool
    wire_fn: FunctionInfo
    line: int


@dataclass
class _Ctx:
    """One function being evaluated."""

    fn: FunctionInfo
    msg_name: str
    violations: List[int] = field(default_factory=list)


class ReplyPathAnalysis:
    RULE = "KHZ102"
    SLUG = "reply-path"

    def __init__(self, graph: CallGraph, reporter) -> None:
        self.graph = graph
        self.reporter = reporter
        self._must_reply_memo: Dict[Tuple[str, str], bool] = {}
        self._in_progress: Set[Tuple[str, str]] = set()
        self._guard_memo: Dict[Tuple[str, str], bool] = {}
        self._replier_memo: Dict[Tuple[Tuple[str, str], str], bool] = {}

    # -- route table -----------------------------------------------------

    def routes(self) -> List[RouteInfo]:
        found: List[RouteInfo] = []
        for fn in self.graph.functions.values():
            if fn.name != "wire":
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                name = callee.id if isinstance(callee, ast.Name) else (
                    callee.attr if isinstance(callee, ast.Attribute) else "")
                if name not in ("reg", "register") or len(node.args) < 2:
                    continue
                chain = attribute_chain(node.args[0])
                if not (chain and chain[0] == "MessageType"
                        and len(chain) == 2):
                    continue
                dedup = any(
                    kw.arg == "dedup" and isinstance(kw.value, ast.Constant)
                    and bool(kw.value.value)
                    for kw in node.keywords
                )
                found.append(RouteInfo(chain[1], node.args[1], dedup,
                                       fn, node.lineno))
        return found

    def handlers_for(self, route: RouteInfo) -> List[FunctionInfo]:
        expr = route.handler_expr
        # ``self.cm_dispatch("handle_update")``: every project class
        # defining that method is a possible consistency manager.
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "cm_dispatch"
                and expr.args
                and isinstance(expr.args[0], ast.Constant)):
            return list(self.graph.by_method.get(expr.args[0].value, []))
        if isinstance(expr, ast.Attribute):
            receiver = self.graph.receiver_type(expr.value, route.wire_fn)
            if receiver is not None:
                hits = self.graph.lookup_method(receiver, expr.attr)
                if hits:
                    return hits
            return list(self.graph.by_method.get(expr.attr, []))
        return []

    # -- driver ----------------------------------------------------------

    def run(self) -> None:
        seen: Set[Tuple[Tuple[str, str], str]] = set()
        for route in self.routes():
            if not route.dedup:
                continue    # one-way traffic owes nobody a reply
            for handler in self.handlers_for(route):
                msg_name = self._msg_param(handler)
                if msg_name is None:
                    continue
                key = (handler.key, route.msg_type)
                if key in seen:
                    continue
                seen.add(key)
                ctx = _Ctx(handler, msg_name)
                satisfied, exempt, reachable = self._eval_block(
                    handler.node.body, ctx, satisfied=False, exempt=False)
                if reachable and not satisfied and not exempt:
                    ctx.violations.append(handler.node.body[-1].lineno)
                for line in sorted(set(ctx.violations)):
                    self.reporter.flag(
                        handler.sf, line, self.RULE, self.SLUG,
                        f"handler '{handler.qualname}' for "
                        f"MessageType.{route.msg_type} (a request route) "
                        "can exit here without reply or nak; the "
                        "requester hangs until its RPC timeout"
                    )

    @staticmethod
    def _msg_param(fn: FunctionInfo) -> Optional[str]:
        for name in fn.params:
            if name == "msg" or fn.param_type(name) == "Message":
                return name
        return None

    # -- the path walker -------------------------------------------------

    def must_reply(self, fn: FunctionInfo, msg_name: str) -> bool:
        """Every exit of ``fn`` replies, is exempt, or raises."""
        key = (fn.key, msg_name)
        cached = self._must_reply_memo.get(key)
        if cached is not None:
            return cached
        if key[0:1] and key in self._in_progress:
            return True     # optimistic on recursion; cycles are rare
        self._in_progress.add(key)
        ctx = _Ctx(fn, msg_name)
        satisfied, exempt, reachable = self._eval_block(
            fn.node.body, ctx, satisfied=False, exempt=False)
        ok = not ctx.violations and (satisfied or exempt or not reachable)
        self._in_progress.discard(key)
        self._must_reply_memo[key] = ok
        return ok

    def _eval_block(self, stmts: Sequence[ast.stmt], ctx: _Ctx,
                    satisfied: bool, exempt: bool
                    ) -> Tuple[bool, bool, bool]:
        """Returns ``(satisfied, exempt, reachable)`` at block end.

        Records a violation for every ``return`` (or implicit fall-off
        handled by the caller) reached with ``satisfied`` and
        ``exempt`` both false.
        """
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Return):
                if not satisfied and not exempt:
                    ctx.violations.append(stmt.lineno)
                return satisfied, exempt, False
            if isinstance(stmt, ast.Raise):
                return satisfied, exempt, False
            if isinstance(stmt, (ast.Break, ast.Continue)):
                return satisfied, exempt, False
            if isinstance(stmt, ast.If):
                satisfied, exempt, reachable = self._eval_if(
                    stmt, ctx, satisfied, exempt)
                if not reachable:
                    return satisfied, exempt, False
                continue
            if isinstance(stmt, ast.Try):
                satisfied = self._eval_try(stmt, ctx, satisfied, exempt)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                # The body may run zero times: a reply inside a loop
                # does not establish the obligation after it.
                self._eval_block(stmt.body, ctx, satisfied, exempt)
                self._eval_block(stmt.orelse, ctx, satisfied, exempt)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                satisfied, exempt, reachable = self._eval_block(
                    stmt.body, ctx, satisfied, exempt)
                if not reachable:
                    return satisfied, exempt, False
                continue
            if self._stmt_replies(stmt, ctx):
                satisfied = True
        return satisfied, exempt, True

    def _eval_if(self, stmt: ast.If, ctx: _Ctx, satisfied: bool,
                 exempt: bool) -> Tuple[bool, bool, bool]:
        rid = self._request_id_test(stmt.test, ctx.msg_name)
        then_exempt, else_exempt = exempt, exempt
        if rid == "is_none":
            then_exempt = True
        elif rid == "is_not_none":
            else_exempt = True
        if self._is_replied_guard(stmt, ctx):
            # ``if not helper(...): return`` where the helper replied
            # on every False return — the early exit is clean.
            then_exempt = True
        then_satisfied, then_exempt, then_reach = self._eval_block(
            stmt.body, ctx, satisfied, then_exempt)
        if stmt.orelse:
            else_satisfied, else_exempt, else_reach = self._eval_block(
                stmt.orelse, ctx, satisfied, else_exempt)
        else:
            else_satisfied, else_reach = satisfied, True
        if not then_reach and not else_reach:
            return satisfied, exempt, False
        if not then_reach:
            # Only the else path continues; its exemption holds.
            return else_satisfied, else_exempt, True
        if not else_reach:
            return then_satisfied, then_exempt, True
        both = then_satisfied and else_satisfied
        # ``if msg.request_id is not None: reply(...)`` and fall
        # through: the remaining unreplied path is the one-way case.
        if rid == "is_not_none" and then_satisfied and not stmt.orelse:
            return True, exempt, True
        if rid == "is_none" and else_satisfied and not stmt.body:
            return True, exempt, True
        return both, exempt and then_exempt and else_exempt, True

    def _eval_try(self, stmt: ast.Try, ctx: _Ctx, satisfied: bool,
                  exempt: bool) -> bool:
        body_satisfied, _, body_reach = self._eval_block(
            stmt.body, ctx, satisfied, exempt)
        handlers_ok = True
        for handler in stmt.handlers:
            # The exception may fire before any reply in the body.
            h_satisfied, h_exempt, h_reach = self._eval_block(
                handler.body, ctx, satisfied, exempt)
            if h_reach and not h_satisfied and not h_exempt:
                handlers_ok = False
        else_satisfied = body_satisfied
        if stmt.orelse:
            else_satisfied, _, _ = self._eval_block(
                stmt.orelse, ctx, body_satisfied, exempt)
        out = else_satisfied and handlers_ok
        if stmt.finalbody:
            fin_satisfied, _, _ = self._eval_block(
                stmt.finalbody, ctx, out, exempt)
            out = fin_satisfied
        return out

    # -- what discharges the obligation ----------------------------------

    def _stmt_replies(self, stmt: ast.stmt, ctx: _Ctx) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Call) and self._call_replies(node, ctx):
                return True
        return False

    def _call_replies(self, call: ast.Call, ctx: _Ctx) -> bool:
        func = call.func
        mentions_msg = any(
            isinstance(a, ast.Name) and a.id == ctx.msg_name
            for a in list(call.args) + [kw.value for kw in call.keywords]
        )
        if isinstance(func, ast.Attribute):
            if func.attr in REPLYING_ATTRS and mentions_msg:
                return True
            if func.attr == "spawn_handler" and mentions_msg:
                return self._spawned_gen_replies(call, ctx)
            if func.attr == "defer_until_unlocked" and len(call.args) >= 2:
                return self._callback_replies(call.args[1], ctx)
        if isinstance(func, ast.Name):
            # A replier parameter (the serve_token_grants shape).
            if self._is_replier_param(func.id, ctx.fn):
                return True
            # ``apply()`` — a nested def replying via the closed-over
            # message (the serve_invalidate else-arm shape).
            for callee in self.graph.resolve_name(func.id, ctx.fn):
                if (callee.parent is not None
                        and self.must_reply(callee, ctx.msg_name)):
                    return True
        if mentions_msg:
            for callee in self.graph.resolve_call(call, ctx.fn):
                mapped = map_args(call, callee)
                for param, arg in mapped.items():
                    if isinstance(arg, ast.Name) and arg.id == ctx.msg_name:
                        if callee.parent is not None:
                            # A nested def sharing ``msg`` by closure.
                            if self.must_reply(callee, ctx.msg_name):
                                return True
                        elif self.must_reply(callee, param):
                            return True
        return False

    def _spawned_gen_replies(self, call: ast.Call, ctx: _Ctx) -> bool:
        if len(call.args) < 2 or not isinstance(call.args[1], ast.Call):
            return False
        for callee in self.graph.resolve_call(call.args[1], ctx.fn):
            # Closures read the same ``msg``; standalone gens get it
            # as a parameter.
            name = ctx.msg_name if callee.parent is not None else (
                self._msg_param(callee) or ctx.msg_name)
            if self.must_reply(callee, name):
                return True
        return False

    def _callback_replies(self, arg: ast.expr, ctx: _Ctx) -> bool:
        if isinstance(arg, ast.Lambda):
            return (isinstance(arg.body, ast.Call)
                    and self._call_replies(arg.body, ctx))
        if isinstance(arg, ast.Name):
            for callee in self.graph.resolve_name(arg.id, ctx.fn):
                if self.must_reply(callee, ctx.msg_name):
                    return True
        return False

    # -- guard helpers ---------------------------------------------------

    def _request_id_test(self, test: ast.expr,
                         msg_name: str) -> Optional[str]:
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
            return None
        left = test.left
        if not (isinstance(left, ast.Attribute)
                and left.attr == "request_id"
                and isinstance(left.value, ast.Name)
                and left.value.id == msg_name):
            return None
        right = test.comparators[0]
        if not (isinstance(right, ast.Constant) and right.value is None):
            return None
        if isinstance(test.ops[0], ast.Is):
            return "is_none"
        if isinstance(test.ops[0], ast.IsNot):
            return "is_not_none"
        return None

    def _is_replied_guard(self, stmt: ast.If, ctx: _Ctx) -> bool:
        test = stmt.test
        if not (isinstance(test, ast.UnaryOp)
                and isinstance(test.op, ast.Not)
                and isinstance(test.operand, ast.Call)):
            return False
        for callee in self.graph.resolve_call(test.operand, ctx.fn):
            if self._false_paths_reply(callee):
                return True
        return False

    def _false_paths_reply(self, fn: FunctionInfo) -> bool:
        """Every ``return False`` in ``fn`` happens after a reply."""
        key = fn.key
        cached = self._guard_memo.get(key)
        if cached is not None:
            return cached
        false_returns: List[bool] = []

        def walk(stmts: Sequence[ast.stmt], satisfied: bool) -> bool:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.Return):
                    value = stmt.value
                    if (isinstance(value, ast.Constant)
                            and value.value is False):
                        false_returns.append(satisfied)
                    return satisfied
                for node in ast.walk(stmt) if not isinstance(
                        stmt, (ast.If, ast.Try)) else ():
                    if (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr in REPLYING_ATTRS):
                        satisfied = True
                if isinstance(stmt, ast.If):
                    walk(stmt.body, satisfied)
                    walk(stmt.orelse, satisfied)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body, satisfied)
                    for handler in stmt.handlers:
                        walk(handler.body, satisfied)
                    walk(stmt.finalbody, satisfied)
            return satisfied

        walk(fn.node.body, False)
        ok = bool(false_returns) and all(false_returns)
        self._guard_memo[key] = ok
        return ok

    def _is_replier_param(self, name: str, fn: FunctionInfo) -> bool:
        scope: Optional[FunctionInfo] = fn
        while scope is not None:
            if name in scope.params:
                break
            scope = scope.parent
        if scope is None:
            return False
        key = (scope.key, name)
        cached = self._replier_memo.get(key)
        if cached is not None:
            return cached
        callers = self.graph.callers_of(scope)
        ok = bool(callers)
        for caller, call in callers:
            arg = map_args(call, scope).get(name)
            if isinstance(arg, ast.Lambda) and isinstance(
                    arg.body, ast.Call):
                body = arg.body
                if (isinstance(body.func, ast.Attribute)
                        and body.func.attr in REPLYING_ATTRS):
                    continue
            ok = False
            break
        self._replier_memo[key] = ok
        return ok
