"""CLI driver: ``python -m repro.analysis.flow [paths...]``.

Exit status 1 when any finding survives suppression — the CI gate.

``--mutate descending-acquire`` seeds a deadlock bug into an
in-memory copy of ``consistency/engine/wire.py`` (the token-grant
loop flips to descending page order) before analyzing.  CI runs the
analyzer twice: once clean, once negated with the mutation — if the
mutated run does NOT fail, the lock-order pass has gone blind and the
gate trips.  This mirrors the schedule explorer's seeded-mutation
check from PR 5.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import sources
from repro.analysis.flow import analyze
from repro.analysis.flow.report import render_json, render_text
from repro.analysis.sources import SourceFile

MUTATIONS = {
    "descending-acquire": {
        "file": "consistency/engine/wire.py",
        "needle": "for page_addr in pages:",
        "replacement": "for page_addr in sorted(pages, reverse=True):",
    },
}


def _apply_mutation(files: List[SourceFile], name: str) -> None:
    spec = MUTATIONS[name]
    for index, sf in enumerate(files):
        if not sf.path.endswith(spec["file"]):
            continue
        if spec["needle"] not in sf.source:
            raise SystemExit(
                f"mutation {name}: needle {spec['needle']!r} not found in "
                f"{sf.path}; the mutation target moved — update MUTATIONS"
            )
        mutated = sf.source.replace(spec["needle"], spec["replacement"], 1)
        files[index] = SourceFile.parse(sf.path, mutated)
        return
    raise SystemExit(
        f"mutation {name}: no analyzed file ends with {spec['file']!r}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.flow",
        description="whole-program lock-order / reply-path / "
                    "await-discipline analysis",
    )
    parser.add_argument("paths", nargs="*", default=["src/"],
                        help="files or directories to analyze "
                             "(default: src/)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt")
    parser.add_argument("--out", default=None,
                        help="write the report to a file as well as "
                             "stdout summary")
    parser.add_argument("--mutate", choices=sorted(MUTATIONS),
                        default=None,
                        help="seed a known bug before analyzing (the "
                             "negated CI self-check)")
    args = parser.parse_args(argv)

    files = sources.collect(args.paths or ["src/"])
    if args.mutate:
        _apply_mutation(files, args.mutate)
    findings = analyze(files)

    if args.fmt == "json":
        report = render_json(findings, len(files))
    else:
        report = render_text(findings, len(files))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(
            f"repro.analysis.flow: {len(files)} file(s), "
            f"{len(findings)} finding(s) -> {args.out}"
        )
    else:
        print(report)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
