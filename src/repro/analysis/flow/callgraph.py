"""Project call graph over the shared :class:`SourceFile` trees.

The flow analyses need to follow calls across module boundaries —
``manager.acquire_many`` into each protocol's ``acquire``, a handler
into the closure it hands to ``engine.spawn_handler``.  Resolution is
type-directed and deliberately modest: this codebase annotates nearly
every signature, so parameter/return annotations, ``self``, and
``self.attr = ClassName(...)`` assignments recover almost every
receiver type.  What cannot be resolved stays unresolved — the
analyses treat an unresolved call as "no effect", trading missed
findings for zero false edges.

Resolution order for ``recv.meth(...)``:

1. the static type of ``recv`` (annotation / self / attribute type),
   then ``meth`` looked up on that class, its project base classes,
   and — virtual dispatch — every project subclass override;
2. a conventional-receiver hint table (``engine`` ->
   ``ProtocolEngine``, ``ledger`` -> ``CopysetLedger``, ...);
3. if the method name is defined by exactly one project class, that
   definition (unique-name fallback, marked low-confidence).

Plain-name calls resolve through enclosing nested scopes, the
module's top level, and the import map.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.sources import SourceFile

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Conventional attribute/variable names -> the class they hold.
#: Used only when no annotation or assignment pins the type.
RECEIVER_HINTS: Dict[str, str] = {
    "engine": "ProtocolEngine",
    "ledger": "CopysetLedger",
    "home": "HomeTransactions",
    "batch": "BatchPlanner",
    "directory": "DirectoryCoherence",
    "cm": "ConsistencyManager",
    "pages": "PageStateMachine",
    "host": "NodeKernel",
    "kernel": "NodeKernel",
    "daemon": "NodeKernel",
    "router": "MessageRouter",
    "scheduler": "EventScheduler",
}

#: Method names a list/dict/set/str receiver could own — the
#: unique-name fallback must never resolve these to a project class.
BUILTIN_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "copy", "index", "count", "get", "items", "keys",
    "values", "setdefault", "update", "popitem", "add", "discard",
    "union", "intersection", "join", "split", "strip", "startswith",
    "endswith", "encode", "decode", "format", "replace", "lower",
    "upper",
})


@dataclass
class FunctionInfo:
    """One function/method/closure definition."""

    sf: SourceFile
    node: FunctionNode
    qualname: str                    # "Class.method", "func", "outer.inner"
    cls: Optional["ClassInfo"] = None
    parent: Optional["FunctionInfo"] = None      # enclosing function
    locals_defs: Dict[str, "FunctionInfo"] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def key(self) -> Tuple[str, str]:
        return (self.sf.path, self.qualname)

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        return names

    @property
    def is_method(self) -> bool:
        return self.cls is not None and self.parent is None

    @property
    def is_generator(self) -> bool:
        for sub in body_walk(self.node):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
        return False

    def param_type(self, name: str) -> Optional[str]:
        args = self.node.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if a.arg == name and a.annotation is not None:
                return annotation_name(a.annotation)
        return None

    @property
    def return_type(self) -> Optional[str]:
        if self.node.returns is not None:
            return annotation_name(self.node.returns)
        return None


@dataclass
class ClassInfo:
    sf: SourceFile
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.X`` -> class name, from annotations and constructor calls.
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


def annotation_name(expr: ast.expr) -> Optional[str]:
    """The bare class name an annotation refers to, if recoverable."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        text = expr.value.strip().strip("\"'")
        return text.split("[")[0].split(".")[-1] or None
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):
        base = annotation_name(expr.value)
        if base == "Optional":
            return annotation_name(expr.slice)
        return None
    return None


def body_walk(fn: FunctionNode):
    """Walk a function's own body, not descending into nested defs.

    Lambdas and comprehensions stay part of the enclosing function;
    ``def``/``class`` statements start a new scope.
    """
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def attribute_chain(expr: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-trivial bases."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _self_attr_binding(node: ast.AST) -> Tuple[Optional[str], Optional[str]]:
    """``self.X = ClassName(...)`` / ``self.X: T = ...`` -> (X, type)."""
    target: Optional[ast.expr] = None
    ann: Optional[str] = None
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
        if (isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)):
            ann = node.value.func.id
    elif isinstance(node, ast.AnnAssign):
        target = node.target
        ann = annotation_name(node.annotation)
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return (target.attr, ann)
    return (None, None)


def _import_map(tree: ast.AST) -> Dict[str, str]:
    origins: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                origins[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                origins[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return origins


class CallGraph:
    """Indexes over every function definition in the analyzed files."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.files = list(files)
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        self.classes: Dict[str, List[ClassInfo]] = {}
        self.module_functions: Dict[str, Dict[str, FunctionInfo]] = {}
        self.by_method: Dict[str, List[FunctionInfo]] = {}
        self.imports: Dict[str, Dict[str, str]] = {}
        self._subclasses: Dict[str, Set[str]] = {}
        self._callers: Optional[Dict[Tuple[str, str],
                                     List[Tuple[FunctionInfo, ast.Call]]]] = None
        for sf in self.files:
            self._index_module(sf)
        self._index_hierarchy()

    # -- construction ----------------------------------------------------

    def _index_module(self, sf: SourceFile) -> None:
        self.imports[sf.path] = _import_map(sf.tree)
        top: Dict[str, FunctionInfo] = {}
        self.module_functions[sf.path] = top
        for node in sf.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._add_function(sf, node, node.name, None, None)
                top[node.name] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(sf, node)

    def _index_class(self, sf: SourceFile, node: ast.ClassDef) -> None:
        bases = [b for b in (annotation_name(base) for base in node.bases)
                 if b]
        ci = ClassInfo(sf=sf, node=node, bases=bases)
        self.classes.setdefault(node.name, []).append(ci)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._add_function(
                    sf, stmt, f"{node.name}.{stmt.name}", ci, None
                )
                ci.methods[stmt.name] = info
                self.by_method.setdefault(stmt.name, []).append(info)
            elif (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                ann = annotation_name(stmt.annotation)
                if ann:
                    ci.attr_types[stmt.target.id] = ann
        # ``self.X = ClassName(...)`` / annotated self-assignments in
        # any method pin instance-attribute types.
        for method in ci.methods.values():
            for sub in body_walk(method.node):
                target_name, ann = _self_attr_binding(sub)
                if target_name and ann:
                    ci.attr_types.setdefault(target_name, ann)

    def _add_function(self, sf: SourceFile, node: FunctionNode,
                      qualname: str, cls: Optional[ClassInfo],
                      parent: Optional[FunctionInfo]) -> FunctionInfo:
        info = FunctionInfo(sf=sf, node=node, qualname=qualname,
                            cls=cls, parent=parent)
        self.functions[info.key] = info
        for sub in body_walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child = self._add_function(
                    sf, sub, f"{qualname}.{sub.name}", cls, info
                )
                info.locals_defs[sub.name] = child
        return info

    def _index_hierarchy(self) -> None:
        for name, infos in self.classes.items():
            for ci in infos:
                for base in ci.bases:
                    if base in self.classes:
                        self._subclasses.setdefault(base, set()).add(name)

    # -- hierarchy -------------------------------------------------------

    def subclasses(self, class_name: str) -> Set[str]:
        """Transitive project subclasses of ``class_name``."""
        out: Set[str] = set()
        frontier = [class_name]
        while frontier:
            current = frontier.pop()
            for sub in self._subclasses.get(current, ()):
                if sub not in out:
                    out.add(sub)
                    frontier.append(sub)
        return out

    def class_infos(self, class_name: str) -> List[ClassInfo]:
        return self.classes.get(class_name, [])

    def lookup_method(self, class_name: str, method: str,
                      *, virtual: bool = True) -> List[FunctionInfo]:
        """``method`` on ``class_name``: its MRO definition plus (when
        ``virtual``) every subclass override."""
        found: List[FunctionInfo] = []
        seen: Set[Tuple[str, str]] = set()

        def base_def(name: str, depth: int = 0) -> Optional[FunctionInfo]:
            if depth > 8:
                return None
            for ci in self.class_infos(name):
                if method in ci.methods:
                    return ci.methods[method]
                for base in ci.bases:
                    hit = base_def(base, depth + 1)
                    if hit is not None:
                        return hit
            return None

        own = base_def(class_name)
        if own is not None and own.key not in seen:
            seen.add(own.key)
            found.append(own)
        if virtual:
            for sub in self.subclasses(class_name):
                for ci in self.class_infos(sub):
                    info = ci.methods.get(method)
                    if info is not None and info.key not in seen:
                        seen.add(info.key)
                        found.append(info)
        return found

    def attr_type(self, class_name: str, attr: str,
                  depth: int = 0) -> Optional[str]:
        if depth > 8:
            return None
        for ci in self.class_infos(class_name):
            # Only project classes count: ``self.x = sorted(...)``
            # records "sorted", which must not mask an unknown type.
            if attr in ci.attr_types and ci.attr_types[attr] in self.classes:
                return ci.attr_types[attr]
            for base in ci.bases:
                hit = self.attr_type(base, attr, depth + 1)
                if hit is not None:
                    return hit
        return None

    # -- typing ----------------------------------------------------------

    def receiver_type(self, expr: ast.expr, fn: FunctionInfo,
                      depth: int = 0) -> Optional[str]:
        """Static class name of ``expr`` inside ``fn``, if recoverable."""
        if depth > 6:
            return None
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls"):
                scope = fn
                while scope is not None and scope.cls is None:
                    scope = scope.parent
                if scope is not None and scope.cls is not None:
                    return scope.cls.name
                return fn.cls.name if fn.cls else None
            scope: Optional[FunctionInfo] = fn
            while scope is not None:
                ann = scope.param_type(expr.id)
                if ann and ann in self.classes:
                    return ann
                local = self._local_binding_type(scope, expr.id)
                if local is not None:
                    return local
                scope = scope.parent
            hint = RECEIVER_HINTS.get(expr.id)
            return hint
        if isinstance(expr, ast.Attribute):
            base_type = self.receiver_type(expr.value, fn, depth + 1)
            if base_type is not None:
                attr = self.attr_type(base_type, expr.attr)
                if attr is not None:
                    return attr
            hint = RECEIVER_HINTS.get(expr.attr)
            return hint
        if isinstance(expr, ast.Call):
            targets = self.resolve_call(expr, fn, _depth=depth + 1)
            for target in targets:
                rt = target.return_type
                if rt and rt in self.classes:
                    return rt
            # Constructor call: ClassName(...)
            if isinstance(expr.func, ast.Name) and expr.func.id in self.classes:
                return expr.func.id
        return None

    def _local_binding_type(self, fn: FunctionInfo,
                            name: str) -> Optional[str]:
        for sub in body_walk(fn.node):
            if (isinstance(sub, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == name
                            for t in sub.targets)
                    and isinstance(sub.value, ast.Call)
                    and isinstance(sub.value.func, ast.Name)
                    and sub.value.func.id in self.classes):
                return sub.value.func.id
            if (isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Name)
                    and sub.target.id == name):
                ann = annotation_name(sub.annotation)
                if ann and ann in self.classes:
                    return ann
        return None

    # -- resolution ------------------------------------------------------

    def resolve_name(self, name: str, fn: FunctionInfo) -> List[FunctionInfo]:
        scope: Optional[FunctionInfo] = fn
        while scope is not None:
            if name in scope.locals_defs:
                return [scope.locals_defs[name]]
            scope = scope.parent
        top = self.module_functions.get(fn.sf.path, {})
        if name in top:
            return [top[name]]
        origin = self.imports.get(fn.sf.path, {}).get(name)
        if origin:
            target = self._resolve_dotted(origin)
            if target is not None:
                return [target]
        return []

    def _resolve_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        parts = dotted.split(".")
        if len(parts) < 2:
            return None
        func_name = parts[-1]
        module_path = "/".join(parts[:-1]) + ".py"
        package_path = "/".join(parts[:-1]) + "/__init__.py"
        for sf_path, top in self.module_functions.items():
            if sf_path.endswith(module_path) or sf_path.endswith(package_path):
                if func_name in top:
                    return top[func_name]
        # Re-exported through a package __init__: fall back to the
        # unique module-level definition of that name.
        hits = [
            top[func_name]
            for top in self.module_functions.values()
            if func_name in top
        ]
        if len(hits) == 1:
            return hits[0]
        return None

    def resolve_call(self, call: ast.Call, fn: FunctionInfo,
                     *, _depth: int = 0) -> List[FunctionInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_name(func.id, fn)
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver = self.receiver_type(func.value, fn, depth=_depth)
            if receiver is not None:
                hits = self.lookup_method(receiver, method)
                if hits:
                    return hits
            # ``super().meth`` -> base-class chain of the enclosing class.
            if (isinstance(func.value, ast.Call)
                    and isinstance(func.value.func, ast.Name)
                    and func.value.func.id == "super"):
                scope = fn
                while scope is not None and scope.cls is None:
                    scope = scope.parent
                if scope is not None and scope.cls is not None:
                    for base in scope.cls.bases:
                        hits = self.lookup_method(base, method, virtual=False)
                        if hits:
                            return hits
                return []
            # Unique-name fallback: one project definition only, and
            # never for names shared with builtin container methods.
            if method not in BUILTIN_METHODS:
                candidates = self.by_method.get(method, [])
                distinct = {c.key: c for c in candidates}
                if len(distinct) == 1:
                    return list(distinct.values())
        return []

    # -- reverse edges ---------------------------------------------------

    def callers_of(self, target: FunctionInfo
                   ) -> List[Tuple[FunctionInfo, ast.Call]]:
        """Every (caller, call-site) resolving to ``target``."""
        if self._callers is None:
            self._callers = {}
            for fn in list(self.functions.values()):
                for sub in body_walk(fn.node):
                    if not isinstance(sub, ast.Call):
                        continue
                    for callee in self.resolve_call(sub, fn):
                        self._callers.setdefault(callee.key, []).append(
                            (fn, sub)
                        )
        return self._callers.get(target.key, [])


def map_args(call: ast.Call, callee: FunctionInfo) -> Dict[str, ast.expr]:
    """Map a call site's argument expressions onto ``callee`` params."""
    params = callee.params
    if callee.cls is not None and params and params[0] in ("self", "cls"):
        params = params[1:]
    mapping: Dict[str, ast.expr] = {}
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            mapping[params[index]] = arg
    kw_names = {a.arg for a in callee.node.args.kwonlyargs}
    for kw in call.keywords:
        if kw.arg is not None and (kw.arg in params or kw.arg in kw_names):
            mapping[kw.arg] = kw.value
    return mapping
