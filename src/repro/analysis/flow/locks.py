"""KHZ101 — whole-program lock-order analysis.

The deadlock-freedom argument of the consistency protocols rests on
three disciplines that, before this pass, lived in comments:

* WRITE tokens (``CopysetLedger``) for multiple pages are acquired in
  **ascending page order** — two multi-page lockers can then never
  hold-and-wait on each other (``engine/wire.py`` pipeline docstring,
  ``release.py`` batch handler).
* Token acquisition must **not** ride the request pipeline: the
  sliding window starts later requests while earlier ones are still
  in flight, which breaks the ordered-acquire argument.
* Across lock **classes** (ledger tokens, the home ``KeyedMutex``,
  dataplane lock contexts) the acquisition graph must stay acyclic.

This module checks all three statically:

``check_acquire_loops``
    Every ``for`` loop whose body (transitively, through resolved
    calls) acquires a write token keyed by the loop variable must
    iterate in provably ascending page order.  The proof engine
    (:func:`prove`) handles ``sorted(...)``, ``range(...)``,
    comprehensions that preserve their source order, singleton
    literals, local assignments, project calls (by proving every
    ``return``/``yield`` source), and — interprocedurally — function
    parameters, by proving the argument at every call site.
    ``sorted(..., reverse=True)`` / ``reversed(...)`` are reported as
    explicit descending-order errors; anything unprovable is reported
    as such.  ``while`` retry loops are out of scope (they re-acquire
    a single page, never a swept range) — documented approximation.

``check_pipeline_windows``
    No generator handed to ``ProtocolEngine.pipeline`` may acquire a
    write token.  Mode facts prune infeasible paths: the READ-only
    pipeline branch of ``ConsistencyManager.acquire_many`` passes
    ``mode is LockMode.READ``, under which the per-protocol
    ``acquire`` implementations provably skip their token paths.

``check_hold_and_wait``
    Builds the lock-class graph — an edge A -> B wherever code may
    acquire class B while holding class A — and reports any cycle of
    two or more distinct classes.  ``HomeTransactions.run`` is a
    scoped acquire (its ``finally`` releases the key mutex), so the
    mutex is held exactly for the wrapped generator.  Dataplane lock
    contexts ("pagelock") participate in edges but single-class
    pagelock ordering is the dataplane's own conflict table's job,
    not this pass's.

Mode facts: a variable of :class:`LockMode` type carries the set of
values it may still hold, refined by ``if mode is LockMode.X`` /
``mode.is_write`` tests (including early-return guards and ``and``
conjunctions) and propagated through call argument lists.  A token
event is only real if WRITE is in the feasible set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionInfo,
    attribute_chain,
    body_walk,
    map_args,
)

ALL_MODES: FrozenSet[str] = frozenset({"READ", "WRITE", "WRITE_SHARED"})
WRITEY: FrozenSet[str] = frozenset({"WRITE", "WRITE_SHARED"})

#: Receiver class -> lock class for ``.acquire`` calls.
ACQUIRE_CLASSES = {"CopysetLedger": "token", "KeyedMutex": "mutex"}

Facts = Dict[str, FrozenSet[str]]


@dataclass
class LockEvent:
    """One acquisition the walker observed."""

    lock_class: str          # "token" | "mutex" | "home" | "pagelock"
    node: ast.AST            # the call, for line anchoring
    key_expr: Optional[ast.expr]   # the page/key argument, if any
    batched: bool = False    # single event covering many pages


@dataclass
class Edge:
    held: str
    acquired: str
    fn: FunctionInfo
    line: int


# ----------------------------------------------------------------------
# Mode facts
# ----------------------------------------------------------------------

def _mode_of_attr(expr: ast.expr) -> Optional[FrozenSet[str]]:
    """``LockMode.X`` / ``LockMode.X.value`` -> {X}."""
    chain = attribute_chain(expr)
    if not chain:
        return None
    if chain and chain[-1] == "value":
        chain = chain[:-1]
    if len(chain) == 2 and chain[0] == "LockMode" and chain[1] in ALL_MODES:
        return frozenset({chain[1]})
    return None


def mode_values(expr: ast.expr, facts: Facts) -> FrozenSet[str]:
    """The feasible LockMode values of ``expr`` under ``facts``."""
    direct = _mode_of_attr(expr)
    if direct is not None:
        return direct
    if isinstance(expr, ast.Name):
        return facts.get(expr.id, ALL_MODES)
    if isinstance(expr, ast.Attribute) and expr.attr == "value":
        if isinstance(expr.value, ast.Name):
            return facts.get(expr.value.id, ALL_MODES)
    return ALL_MODES


def _refinement(test: ast.expr) -> Optional[Tuple[str, FrozenSet[str]]]:
    """``(var, feasible-set)`` implied by ``test`` being true."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = _refinement(test.operand)
        if inner is None:
            return None
        var, include = inner
        return (var, ALL_MODES - include)
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, right = test.left, test.comparators[0]
        if isinstance(left, ast.Name):
            values = _mode_of_attr(right)
            if values is not None:
                if isinstance(test.ops[0], (ast.Is, ast.Eq)):
                    return (left.id, values)
                if isinstance(test.ops[0], (ast.IsNot, ast.NotEq)):
                    return (left.id, ALL_MODES - values)
    if isinstance(test, ast.Attribute) and test.attr == "is_write":
        if isinstance(test.value, ast.Name):
            return (test.value.id, WRITEY)
    return None


def _refine(facts: Facts, test: ast.expr, *, truthy: bool) -> Facts:
    """Facts inside the branch where ``test`` is truthy/falsy."""
    out = dict(facts)

    def apply(var: str, include: FrozenSet[str]) -> None:
        out[var] = out.get(var, ALL_MODES) & include

    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        if truthy:
            for clause in test.values:
                hit = _refinement(clause)
                if hit is not None:
                    apply(*hit)
        # ``not (a and b)`` narrows nothing per-var.
        return out
    hit = _refinement(test)
    if hit is not None:
        var, include = hit
        apply(var, include if truthy else ALL_MODES - include)
    return out


def _terminates(stmts: Sequence[ast.stmt]) -> bool:
    if not stmts:
        return False
    last = stmts[-1]
    return isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break))


def call_facts(call: ast.Call, callee: FunctionInfo,
               caller_facts: Facts) -> Facts:
    """Facts for ``callee``'s parameters given the call site."""
    mapped: Facts = {}
    for param, arg in map_args(call, callee).items():
        values = mode_values(arg, caller_facts)
        if values != ALL_MODES:
            mapped[param] = values
        elif _looks_like_mode(arg, caller_facts):
            mapped[param] = ALL_MODES
    return mapped


def _looks_like_mode(arg: ast.expr, facts: Facts) -> bool:
    return isinstance(arg, ast.Name) and arg.id in facts


def _facts_key(facts: Facts) -> Tuple:
    return tuple(sorted((k, tuple(sorted(v))) for k, v in facts.items()))


def _infeasible(facts: Facts) -> bool:
    """A variable with no feasible LockMode left marks dead code —
    e.g. the WRITE token path under ``mode is LockMode.READ``."""
    return any(not values for values in facts.values())


# ----------------------------------------------------------------------
# Acquisition classification
# ----------------------------------------------------------------------

class LockModel:
    """Classifies calls into lock events and computes per-function
    transitive acquisition summaries."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._summary_memo: Dict[Tuple, FrozenSet[str]] = {}
        self._in_progress: Set[Tuple] = set()

    # -- direct events ---------------------------------------------------

    def classify(self, call: ast.Call, fn: FunctionInfo,
                 facts: Facts) -> Optional[LockEvent]:
        """The lock event ``call`` performs directly, if any."""
        request_event = self._classify_request(call, facts)
        if request_event is not None:
            return request_event
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        receiver_name = self._receiver_name(func.value)
        if func.attr == "acquire":
            rtype = self.graph.receiver_type(func.value, fn)
            lock_class = ACQUIRE_CLASSES.get(rtype or "")
            if lock_class is None and receiver_name:
                if receiver_name.endswith("_mutex"):
                    lock_class = "mutex"
                elif receiver_name == "ledger":
                    lock_class = "token"
            if lock_class is not None:
                key = call.args[0] if call.args else None
                return LockEvent(lock_class, call, key)
        if func.attr == "run":
            rtype = self.graph.receiver_type(func.value, fn)
            if rtype == "HomeTransactions" or receiver_name == "home":
                key = call.args[0] if call.args else None
                return LockEvent("home", call, key)
        if func.attr == "op_lock":
            return LockEvent("pagelock", call,
                             call.args[0] if call.args else None)
        return None

    @staticmethod
    def _receiver_name(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            return expr.attr
        return None

    def _classify_request(self, call: ast.Call,
                          facts: Facts) -> Optional[LockEvent]:
        """A client-side token acquisition: any request carrying
        ``MessageType.LOCK_REQUEST`` (or the batch variant) whose mode
        payload may feasibly be WRITE."""
        msg_type: Optional[str] = None
        payload: Optional[ast.Dict] = None
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            chain = attribute_chain(arg) if not isinstance(arg, ast.Dict) \
                else None
            if chain and len(chain) == 2 and chain[0] == "MessageType":
                if chain[1] in ("LOCK_REQUEST", "TOKEN_ACQUIRE_BATCH"):
                    msg_type = chain[1]
            if isinstance(arg, ast.Dict):
                payload = arg
        if msg_type is None:
            return None
        key_expr: Optional[ast.expr] = None
        modes = ALL_MODES
        if payload is not None:
            for key, value in zip(payload.keys, payload.values):
                if isinstance(key, ast.Constant) and key.value == "mode":
                    modes = mode_values(value, facts)
                if isinstance(key, ast.Constant) and key.value == "page":
                    key_expr = value
        if "WRITE" not in modes:
            return None      # READ / WRITE_SHARED requests take no token
        return LockEvent("token", call, key_expr,
                         batched=msg_type == "TOKEN_ACQUIRE_BATCH")

    # -- transitive summaries --------------------------------------------

    def summary(self, fn: FunctionInfo, facts: Facts,
                depth: int = 0) -> FrozenSet[str]:
        """Lock classes ``fn`` may acquire, transitively, under
        ``facts``."""
        if _infeasible(facts):
            return frozenset()
        key = (fn.key, _facts_key(facts))
        cached = self._summary_memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress or depth > 8:
            return frozenset()
        self._in_progress.add(key)
        acquired: Set[str] = set()

        def on_call(call: ast.Call, local_facts: Facts) -> None:
            event = self.classify(call, fn, local_facts)
            if event is not None:
                acquired.add(event.lock_class)
                return
            for callee in self.graph.resolve_call(call, fn):
                if callee.parent is fn:
                    # Nested def: closure vars share the caller's facts.
                    callee_facts = dict(local_facts)
                    callee_facts.update(call_facts(call, callee, local_facts))
                else:
                    callee_facts = call_facts(call, callee, local_facts)
                acquired.update(self.summary(callee, callee_facts, depth + 1))

        walk_with_facts(fn.node.body, facts, on_call)
        self._in_progress.discard(key)
        result = frozenset(acquired)
        self._summary_memo[key] = result
        return result

    def token_acquires(self, fn: FunctionInfo, facts: Facts) -> bool:
        return "token" in self.summary(fn, facts)


def walk_with_facts(stmts: Sequence[ast.stmt], facts: Facts,
                    on_call: Callable[[ast.Call, Facts], None]) -> None:
    """Visit every call in ``stmts`` in source order, maintaining mode
    facts across ``if`` refinements (including early-return guards).

    Nested ``def``/``class`` bodies are skipped — they only execute
    when called, and calls are followed through ``on_call``.
    """

    def visit_expr(expr: Optional[ast.AST], local: Facts) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                on_call(node, local)

    def visit_block(block: Sequence[ast.stmt], local: Facts) -> Facts:
        if _infeasible(local):
            return local
        for stmt in block:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                visit_expr(stmt.test, local)
                then_facts = _refine(local, stmt.test, truthy=True)
                else_facts = _refine(local, stmt.test, truthy=False)
                visit_block(stmt.body, then_facts)
                visit_block(stmt.orelse, else_facts)
                # ``if mode is X: ... return`` — the continuation only
                # runs when the guard was false.
                if _terminates(stmt.body) and not stmt.orelse:
                    local = else_facts
                elif _terminates(stmt.orelse) and stmt.orelse:
                    local = then_facts
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                visit_expr(stmt.iter, local)
                visit_block(stmt.body, local)
                visit_block(stmt.orelse, local)
                continue
            if isinstance(stmt, ast.While):
                visit_expr(stmt.test, local)
                visit_block(stmt.body, local)
                visit_block(stmt.orelse, local)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    visit_expr(item.context_expr, local)
                visit_block(stmt.body, local)
                continue
            if isinstance(stmt, ast.Try):
                visit_block(stmt.body, local)
                for handler in stmt.handlers:
                    visit_block(handler.body, local)
                visit_block(stmt.orelse, local)
                visit_block(stmt.finalbody, local)
                continue
            for child in ast.iter_child_nodes(stmt):
                visit_expr(child, local)
        return local

    visit_block(stmts, dict(facts))


# ----------------------------------------------------------------------
# The ascending-order proof engine
# ----------------------------------------------------------------------

class OrderProver:
    """Proves iteration order of page sequences: "asc", "desc" or
    "unknown"."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph

    def prove(self, expr: ast.expr, fn: FunctionInfo,
              stack: Optional[Set[Tuple]] = None) -> str:
        stack = stack if stack is not None else set()
        if len(stack) > 24:
            return "unknown"

        if isinstance(expr, ast.Call):
            return self._prove_call(expr, fn, stack)
        if isinstance(expr, (ast.List, ast.Tuple)):
            return "asc" if len(expr.elts) <= 1 else "unknown"
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            return self._prove_comp(expr, fn, stack)
        if isinstance(expr, ast.Name):
            return self._prove_name(expr.id, fn, stack)
        return "unknown"

    def _prove_call(self, call: ast.Call, fn: FunctionInfo,
                    stack: Set[Tuple]) -> str:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "sorted":
                for kw in call.keywords:
                    if kw.arg == "reverse":
                        if (isinstance(kw.value, ast.Constant)
                                and kw.value.value):
                            return "desc"
                        if not isinstance(kw.value, ast.Constant):
                            return "unknown"
                    if kw.arg == "key":
                        return "unknown"
                return "asc"
            if func.id == "reversed" and call.args:
                inner = self.prove(call.args[0], fn, stack)
                return {"asc": "desc", "desc": "asc"}.get(inner, "unknown")
            if func.id == "range":
                # Descending ranges are written with a literal negative
                # step; a variable step is a (positive) page size.
                if len(call.args) == 3:
                    step = call.args[2]
                    if isinstance(step, ast.Constant) and isinstance(
                            step.value, (int, float)) and step.value < 0:
                        return "desc"
                    if (isinstance(step, ast.UnaryOp)
                            and isinstance(step.op, ast.USub)):
                        return "desc"
                return "asc"
            if func.id == "list" and len(call.args) == 1:
                return self.prove(call.args[0], fn, stack)
        # A project call: prove every value it can produce.
        targets = self.graph.resolve_call(call, fn)
        if not targets:
            return "unknown"
        verdicts = {self._prove_returns(t, stack) for t in targets}
        if verdicts == {"asc"}:
            return "asc"
        if "desc" in verdicts:
            return "desc"
        return "unknown"

    def _prove_comp(self, comp: ast.expr, fn: FunctionInfo,
                    stack: Set[Tuple]) -> str:
        generators = comp.generators                      # type: ignore
        elt = comp.elt                                    # type: ignore
        if len(generators) != 1:
            return "unknown"
        gen = generators[0]
        if not (isinstance(gen.target, ast.Name)
                and isinstance(elt, ast.Name)
                and elt.id == gen.target.id):
            return "unknown"          # a mapped elt may reorder values
        return self.prove(gen.iter, fn, stack)

    def _prove_name(self, name: str, fn: FunctionInfo,
                    stack: Set[Tuple]) -> str:
        key = ("name", fn.key, name)
        if key in stack:
            return "unknown"
        stack = stack | {key}
        # A single local assignment pins the value.
        assigns: List[ast.expr] = []
        for node in body_walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        assigns.append(node.value)
            elif (isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id == name and node.value is not None):
                assigns.append(node.value)
        if len(assigns) == 1:
            return self.prove(assigns[0], fn, stack)
        if assigns:
            return "unknown"
        # Not assigned locally: a parameter (prove every call site) or
        # a closure variable (prove in the enclosing scope).
        if name in fn.params:
            return self._prove_param(name, fn, stack)
        if fn.parent is not None:
            return self._prove_name(name, fn.parent, stack)
        return "unknown"

    def _prove_param(self, name: str, fn: FunctionInfo,
                     stack: Set[Tuple]) -> str:
        key = ("param", fn.key, name)
        if key in stack:
            return "unknown"
        stack = stack | {key}
        callers = self.graph.callers_of(fn)
        if not callers:
            return "unknown"
        verdicts: Set[str] = set()
        for caller, call in callers:
            arg = map_args(call, fn).get(name)
            if arg is None:
                return "unknown"
            verdicts.add(self.prove(arg, caller, stack))
        if verdicts == {"asc"}:
            return "asc"
        if "desc" in verdicts:
            return "desc"
        return "unknown"

    def _prove_returns(self, fn: FunctionInfo, stack: Set[Tuple]) -> str:
        """Prove the sequence a function returns (or a generator
        yields) is ascending."""
        key = ("returns", fn.key)
        if key in stack:
            return "unknown"
        stack = stack | {key}
        verdicts: Set[str] = set()
        for node in body_walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                verdicts.add(self.prove(node.value, fn, stack))
            elif isinstance(node, ast.YieldFrom):
                verdicts.add(self.prove(node.value, fn, stack))
        # ``for base in <proven>: yield base`` generators.
        yield_loop = self._yielding_loop(fn)
        if yield_loop is not None:
            target, iter_expr = yield_loop
            verdicts.add(self.prove(iter_expr, fn, stack))
        elif any(isinstance(n, ast.Yield) for n in body_walk(fn.node)):
            verdicts.add("unknown")
        if not verdicts:
            return "unknown"
        if verdicts == {"asc"}:
            return "asc"
        if "desc" in verdicts:
            return "desc"
        return "unknown"

    @staticmethod
    def _yielding_loop(fn: FunctionInfo
                       ) -> Optional[Tuple[str, ast.expr]]:
        """Match the ``for x in ITER: yield x`` generator shape."""
        yields = [n for n in body_walk(fn.node) if isinstance(n, ast.Yield)]
        if len(yields) != 1:
            return None
        the_yield = yields[0]
        for node in body_walk(fn.node):
            if (isinstance(node, ast.For)
                    and isinstance(node.target, ast.Name)
                    and len(node.body) == 1
                    and isinstance(node.body[0], ast.Expr)
                    and node.body[0].value is the_yield
                    and isinstance(the_yield.value, ast.Name)
                    and the_yield.value.id == node.target.id):
                return (node.target.id, node.iter)
        return None


# ----------------------------------------------------------------------
# The analysis passes
# ----------------------------------------------------------------------

class LockOrderAnalysis:
    RULE = "KHZ101"
    SLUG = "lock-order"

    def __init__(self, graph: CallGraph, reporter) -> None:
        self.graph = graph
        self.reporter = reporter
        self.model = LockModel(graph)
        self.prover = OrderProver(graph)

    def run(self) -> None:
        for fn in list(self.graph.functions.values()):
            self.check_acquire_loops(fn)
            self.check_pipeline_windows(fn)
        self.check_hold_and_wait()

    # -- ascending-order loops -------------------------------------------

    def check_acquire_loops(self, fn: FunctionInfo) -> None:
        def on_loop(loop: ast.For, facts: Facts) -> None:
            if not isinstance(loop.target, ast.Name):
                return
            if not self._loop_takes_token(loop, fn, facts):
                return
            verdict = self.prover.prove(loop.iter, fn)
            if verdict == "asc":
                return
            if verdict == "desc":
                message = (
                    f"loop over '{loop.target.id}' acquires write tokens "
                    "in DESCENDING page order; concurrent multi-page "
                    "lockers will deadlock (tokens must be taken "
                    "ascending-by-page)"
                )
            else:
                message = (
                    f"loop over '{loop.target.id}' acquires write tokens "
                    "but its iteration order cannot be proven ascending-"
                    "by-page; sort the pages (or hoist the proof into a "
                    "helper the analyzer can see)"
                )
            self.reporter.flag(fn.sf, loop.lineno, self.RULE, self.SLUG,
                               message)

        self._walk_loops(fn, on_loop)

    def _walk_loops(self, fn: FunctionInfo,
                    on_loop: Callable[[ast.For, Facts], None]) -> None:
        loops: List[Tuple[ast.For, Facts]] = []

        def on_call(call: ast.Call, facts: Facts) -> None:
            pass

        # Reuse the facts walker by intercepting For statements: walk
        # once collecting (loop, facts-at-loop) pairs.
        def visit(block, facts: Facts) -> Facts:
            if _infeasible(facts):
                return facts
            for stmt in block:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.If):
                    then_facts = _refine(facts, stmt.test, truthy=True)
                    else_facts = _refine(facts, stmt.test, truthy=False)
                    visit(stmt.body, then_facts)
                    visit(stmt.orelse, else_facts)
                    if _terminates(stmt.body) and not stmt.orelse:
                        facts = else_facts
                    elif stmt.orelse and _terminates(stmt.orelse):
                        facts = then_facts
                    continue
                if isinstance(stmt, ast.For):
                    loops.append((stmt, dict(facts)))
                    visit(stmt.body, facts)
                    visit(stmt.orelse, facts)
                    continue
                if isinstance(stmt, (ast.While, ast.AsyncFor)):
                    visit(stmt.body, facts)
                    visit(stmt.orelse, facts)
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    visit(stmt.body, facts)
                    continue
                if isinstance(stmt, ast.Try):
                    visit(stmt.body, facts)
                    for handler in stmt.handlers:
                        visit(handler.body, facts)
                    visit(stmt.orelse, facts)
                    visit(stmt.finalbody, facts)
                    continue
            return facts

        visit(fn.node.body, {})
        del on_call
        for loop, facts in loops:
            on_loop(loop, facts)

    def _loop_takes_token(self, loop: ast.For, fn: FunctionInfo,
                          facts: Facts) -> bool:
        """Does the loop body acquire a (held) write token keyed by
        the loop variable?"""
        assert isinstance(loop.target, ast.Name)
        loop_var = loop.target.id
        found = False

        def uses_loop_var(expr: Optional[ast.AST]) -> bool:
            if expr is None:
                return False
            return any(isinstance(n, ast.Name) and n.id == loop_var
                       for n in ast.walk(expr))

        def on_call(call: ast.Call, local_facts: Facts) -> None:
            nonlocal found
            if found:
                return
            event = self.model.classify(call, fn, local_facts)
            if event is not None:
                if (event.lock_class == "token" and not event.batched
                        and (uses_loop_var(event.key_expr)
                             or (event.key_expr is None
                                 and uses_loop_var(call)))):
                    found = True
                return
            if not uses_loop_var(call):
                return
            for callee in self.graph.resolve_call(call, fn):
                if callee.parent is fn:
                    callee_facts = dict(local_facts)
                    callee_facts.update(
                        call_facts(call, callee, local_facts))
                else:
                    callee_facts = call_facts(call, callee, local_facts)
                if self.model.token_acquires(callee, callee_facts):
                    found = True
                    return

        walk_with_facts(loop.body, facts, on_call)
        return found

    # -- pipeline windows ------------------------------------------------

    def check_pipeline_windows(self, fn: FunctionInfo) -> None:
        def on_call(call: ast.Call, facts: Facts) -> None:
            if not (isinstance(call.func, ast.Attribute)
                    and call.func.attr == "pipeline" and call.args):
                return
            rtype = self.graph.receiver_type(call.func.value, fn)
            if rtype is not None and rtype != "ProtocolEngine":
                return
            for gen_call in self._gen_calls(call.args[0]):
                for callee in self.graph.resolve_call(gen_call, fn):
                    if callee.parent is fn:
                        callee_facts = dict(facts)
                        callee_facts.update(
                            call_facts(gen_call, callee, facts))
                    else:
                        callee_facts = call_facts(gen_call, callee, facts)
                    if self.model.token_acquires(callee, callee_facts):
                        self.reporter.flag(
                            fn.sf, call.lineno, self.RULE, self.SLUG,
                            f"generator '{callee.name}' may acquire a "
                            "write token inside a pipeline window; the "
                            "sliding window overlaps acquisitions and "
                            "voids the ascending-order deadlock proof "
                            "(write acquires must stay serial)"
                        )

        walk_with_facts(fn.node.body, {}, on_call)

    @staticmethod
    def _gen_calls(expr: ast.expr) -> List[ast.Call]:
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            if isinstance(expr.elt, ast.Call):
                return [expr.elt]
            return []
        if isinstance(expr, (ast.List, ast.Tuple)):
            return [e for e in expr.elts if isinstance(e, ast.Call)]
        return []

    # -- hold-and-wait cycles --------------------------------------------

    def check_hold_and_wait(self) -> None:
        edges: List[Edge] = []
        for fn in list(self.graph.functions.values()):
            edges.extend(self._function_edges(fn))
        adjacency: Dict[str, Dict[str, Edge]] = {}
        for edge in edges:
            adjacency.setdefault(edge.held, {}).setdefault(
                edge.acquired, edge)
        for cycle in self._cycles(adjacency):
            witnesses = []
            for index, node in enumerate(cycle):
                nxt = cycle[(index + 1) % len(cycle)]
                witness = adjacency[node][nxt]
                witnesses.append(
                    f"{node}->{nxt} at {witness.fn.sf.path}:{witness.line}"
                )
            first = adjacency[cycle[0]][cycle[1]]
            self.reporter.flag(
                first.fn.sf, first.line, self.RULE, self.SLUG,
                "hold-and-wait cycle across lock classes: "
                + " ".join(witnesses)
            )

    def _function_edges(self, fn: FunctionInfo) -> List[Edge]:
        edges: List[Edge] = []
        held: Set[str] = set()

        def acquire(lock_class: str, line: int) -> None:
            for holder in held:
                if holder != lock_class:
                    edges.append(Edge(holder, lock_class, fn, line))
            held.add(lock_class)

        def on_call(call: ast.Call, facts: Facts) -> None:
            func = call.func
            if isinstance(func, ast.Attribute):
                # Releases first so scoped acquire/release pairs in
                # sequence do not fabricate held state.
                if func.attr in ("release", "abort"):
                    rtype = self.graph.receiver_type(func.value, fn)
                    name = self._receiver_simple_name(func.value)
                    if rtype == "CopysetLedger" or name == "ledger":
                        if func.attr == "release" or func.attr == "abort":
                            held.discard("token")
                            return
                    if rtype == "KeyedMutex" or (
                            name and name.endswith("_mutex")):
                        held.discard("mutex")
                        return
                if func.attr == "op_unlock":
                    held.discard("pagelock")
                    return
            event = self.model.classify(call, fn, facts)
            if event is not None:
                if event.lock_class == "home":
                    # Scoped: the key mutex is held exactly while the
                    # wrapped generator runs.
                    for holder in held:
                        if holder != "home":
                            edges.append(Edge(holder, "home", fn,
                                              call.lineno))
                    if len(call.args) >= 2 and isinstance(
                            call.args[1], ast.Call):
                        for callee in self.graph.resolve_call(
                                call.args[1], fn):
                            inner = self.model.summary(
                                callee,
                                call_facts(call.args[1], callee, facts))
                            for acquired in inner:
                                if acquired != "home":
                                    edges.append(Edge(
                                        "home", acquired, fn, call.lineno))
                                for holder in held:
                                    if holder != acquired:
                                        edges.append(Edge(
                                            holder, acquired, fn,
                                            call.lineno))
                    return
                acquire(event.lock_class, call.lineno)
                return
            for callee in self.graph.resolve_call(call, fn):
                if callee.parent is fn:
                    callee_facts = dict(facts)
                    callee_facts.update(call_facts(call, callee, facts))
                else:
                    callee_facts = call_facts(call, callee, facts)
                for acquired in self.model.summary(callee, callee_facts):
                    for holder in held:
                        if holder != acquired:
                            edges.append(Edge(holder, acquired, fn,
                                              call.lineno))

        walk_with_facts(fn.node.body, {}, on_call)
        return edges

    @staticmethod
    def _receiver_simple_name(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            return expr.attr
        return None

    @staticmethod
    def _cycles(adjacency: Dict[str, Dict[str, Edge]]
                ) -> List[List[str]]:
        """Simple cycles of length >= 2 over the (tiny) class graph,
        each reported once (rotated to its lexicographically smallest
        node)."""
        seen: Set[Tuple[str, ...]] = set()
        cycles: List[List[str]] = []
        nodes = sorted(adjacency)

        def walk(path: List[str]) -> None:
            current = path[-1]
            for nxt in sorted(adjacency.get(current, ())):
                if nxt == path[0] and len(path) >= 2:
                    smallest = min(range(len(path)),
                                   key=lambda i: path[i])
                    canonical = tuple(path[smallest:] + path[:smallest])
                    if canonical not in seen:
                        seen.add(canonical)
                        cycles.append(list(canonical))
                elif nxt not in path:
                    walk(path + [nxt])

        for node in nodes:
            walk([node])
        return cycles
