"""repro.analysis.flow — whole-program static flow analysis.

The third layer of the correctness stack, above the per-file AST
linter (:mod:`repro.analysis.lint`) and the runtime schedule explorer
(:mod:`repro.analysis.explore`): a project call graph over the shared
:mod:`repro.analysis.sources` trees, with three interprocedural
passes —

* :mod:`repro.analysis.flow.locks`   (KHZ101, slug ``lock-order``)
* :mod:`repro.analysis.flow.replies` (KHZ102, slug ``reply-path``)
* :mod:`repro.analysis.flow.awaits`  (KHZ103, slugs
  ``dropped-future`` / ``undriven-generator``)

Run it as ``python -m repro.analysis.flow src/``.  Findings honor the
same ``# khz: allow-<slug>(reason)`` suppressions as the linter, and
``--format json`` emits a SARIF-shaped report for CI artifacts.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.flow.awaits import AwaitDisciplineAnalysis
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.locks import LockOrderAnalysis
from repro.analysis.flow.replies import ReplyPathAnalysis
from repro.analysis.lint import Finding, _Reporter
from repro.analysis.sources import SourceFile

__all__ = ["CallGraph", "analyze", "Finding"]


def analyze(files: Sequence[SourceFile]) -> List[Finding]:
    """Run every flow pass over ``files`` and return the findings."""
    graph = CallGraph(files)
    reporter = _Reporter()
    LockOrderAnalysis(graph, reporter).run()
    ReplyPathAnalysis(graph, reporter).run()
    AwaitDisciplineAnalysis(graph, reporter).run()
    reporter.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return reporter.findings
