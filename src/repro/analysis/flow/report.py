"""Report emission for the flow analyzer: text and SARIF-shaped JSON.

The JSON shape follows SARIF 2.1.0 closely enough for code-scanning
UIs to ingest: one ``run`` with a ``tool.driver`` listing the rules
and one ``result`` per finding, each carrying ``ruleId``, ``level``,
``message.text`` and a physical location.  CI uploads it as a build
artifact; ``docs/analysis.md`` documents how to read it.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.lint import Finding

RULES: Dict[str, Dict[str, str]] = {
    "KHZ101": {
        "name": "lock-order",
        "shortDescription": "write-token acquisition order must be "
                            "provably ascending-by-page and lock "
                            "classes must stay cycle-free",
    },
    "KHZ102": {
        "name": "reply-path",
        "shortDescription": "every path through a request-route "
                            "handler must reply or nak",
    },
    "KHZ103": {
        "name": "await-discipline",
        "shortDescription": "futures must be yielded/gathered and "
                            "generator ops must be driven",
    },
}


def render_text(findings: List[Finding], file_count: int) -> str:
    lines = [finding.render() for finding in findings]
    lines.append(
        f"repro.analysis.flow: {file_count} file(s), "
        f"{len(findings)} finding(s)"
    )
    return "\n".join(lines)


def render_json(findings: List[Finding], file_count: int) -> str:
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {"startLine": finding.line},
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "version": "2.1.0",
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis.flow",
                        "informationUri":
                            "docs/analysis.md#whole-program-flow-analysis",
                        "rules": [
                            {
                                "id": rule_id,
                                "name": meta["name"],
                                "shortDescription": {
                                    "text": meta["shortDescription"]
                                },
                            }
                            for rule_id, meta in sorted(RULES.items())
                        ],
                    }
                },
                "properties": {"fileCount": file_count},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
