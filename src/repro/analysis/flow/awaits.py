"""KHZ103 — await discipline for futures and generator ops.

The simulator's concurrency is cooperative: a :class:`Future` does
nothing until a task yields it (or a ``gather`` wraps it), and a
generator op does nothing until something drives it (``yield from``,
``spawn``, ``pipeline``).  Both failure shapes are silent — the code
runs, no error fires, the protocol just never performs the work.  The
two slugs:

``dropped-future``
    A future-producing call (``engine.request``, ``rpc.request``,
    ``gather``/``gather_settled``, ``with_timeout``, ``Future(...)``,
    ``ledger.acquire``/``KeyedMutex.acquire``) used as a bare
    expression statement, or assigned to a name the function never
    reads again.  Nothing will ever wait on it; a request's reply is
    thrown away, an acquire's grant is leaked.

``undriven-generator``
    A call that resolves — through the call graph's *type-directed*
    resolution only, so no guessing — to a project generator
    function, used as a bare expression statement.  Calling a
    generator creates it and discards it: none of its body runs.
    The classic misspelling is ``self.acquire(...)`` for
    ``yield from self.acquire(...)``.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionInfo,
    body_walk,
)

FUTURE_FACTORIES = {"gather", "gather_settled", "with_timeout"}
FUTURE_METHODS = {"request", "request_any", "with_timeout"}
ACQUIRE_TYPES = {"CopysetLedger", "KeyedMutex"}


class AwaitDisciplineAnalysis:
    RULE = "KHZ103"

    def __init__(self, graph: CallGraph, reporter) -> None:
        self.graph = graph
        self.reporter = reporter

    def run(self) -> None:
        for fn in self.graph.functions.values():
            self._check_function(fn)

    # -- per function ----------------------------------------------------

    def _check_function(self, fn: FunctionInfo) -> None:
        for node in body_walk(fn.node):
            if isinstance(node, ast.Expr) and isinstance(node.value,
                                                         ast.Call):
                self._check_bare_call(node.value, fn)
            elif isinstance(node, ast.Assign):
                self._check_assignment(node, fn)

    def _check_bare_call(self, call: ast.Call, fn: FunctionInfo) -> None:
        label = self._future_label(call, fn)
        if label is not None:
            self.reporter.flag(
                fn.sf, call.lineno, self.RULE, "dropped-future",
                f"{label} returns a Future that is neither yielded nor "
                "gathered; nothing will ever wait on it and its result "
                "(or grant) is silently dropped"
            )
            return
        gen = self._resolved_generator(call, fn)
        if gen is not None:
            self.reporter.flag(
                fn.sf, call.lineno, self.RULE, "undriven-generator",
                f"'{gen.qualname}' is a generator op; calling it bare "
                "creates the generator and discards it without running "
                "a single step — drive it with 'yield from' or spawn it"
            )

    def _check_assignment(self, node: ast.Assign, fn: FunctionInfo) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0],
                                                    ast.Name):
            return
        if not isinstance(node.value, ast.Call):
            return
        label = self._future_label(node.value, fn)
        if label is None:
            return
        name = node.targets[0].id
        for other in body_walk(fn.node):
            if (isinstance(other, ast.Name) and other.id == name
                    and isinstance(other.ctx, ast.Load)):
                return
        for child in self.graph.functions.values():
            if child.parent is fn:
                for other in body_walk(child.node):
                    if isinstance(other, ast.Name) and other.id == name:
                        return
        self.reporter.flag(
            fn.sf, node.lineno, self.RULE, "dropped-future",
            f"future '{name}' from {label} is never read again in "
            f"'{fn.qualname}'; it will never be waited on"
        )

    # -- classification --------------------------------------------------

    def _future_label(self, call: ast.Call,
                      fn: FunctionInfo) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in FUTURE_FACTORIES or func.id == "Future":
                return f"{func.id}(...)"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in FUTURE_METHODS:
            receiver = self._receiver_label(func.value)
            if receiver in ("engine", "rpc", "host", "kernel", "daemon"):
                return f".{func.attr}(...)"
            rtype = self.graph.receiver_type(func.value, fn)
            if rtype in ("ProtocolEngine", "RpcLayer", "NodeKernel"):
                return f".{func.attr}(...)"
            return None
        if func.attr == "acquire":
            rtype = self.graph.receiver_type(func.value, fn)
            if rtype in ACQUIRE_TYPES:
                return f".{func.attr}(...)"
            name = self._receiver_label(func.value)
            if name == "ledger" or (name or "").endswith("_mutex"):
                return ".acquire(...)"
        return None

    @staticmethod
    def _receiver_label(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            return expr.attr
        return None

    def _resolved_generator(self, call: ast.Call,
                            fn: FunctionInfo) -> Optional[FunctionInfo]:
        func = call.func
        # Type-directed resolution only: an attribute call needs a
        # known receiver type, a name call resolves through scoping.
        if isinstance(func, ast.Attribute):
            if self.graph.receiver_type(func.value, fn) is None:
                return None
            targets = self.graph.resolve_call(call, fn)
        elif isinstance(func, ast.Name):
            targets = self.graph.resolve_name(func.id, fn)
        else:
            return None
        for target in targets:
            if target.is_generator:
                return target
        return None
