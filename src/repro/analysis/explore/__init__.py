"""Schedule-space exploration (model checking) for Khazana protocols.

Layer 3 of the analysis stack: where ``lint`` reads the source and
``races`` watches one execution, the explorer *drives* executions —
re-running a scenario under systematically or randomly perturbed
message-delivery orders and bounded fault injections, checking the
shared invariants after every step, and shrinking + recording any
violating schedule for deterministic replay.

Entry points:

- ``python -m repro.analysis.explore`` — CLI (explore / replay /
  dump interleaving points).
- :class:`~repro.analysis.explore.runner.Explorer` — programmatic.
"""

from repro.analysis.explore.controller import (
    DEFAULT_HORIZON,
    Decision,
    FaultBudget,
    ScheduleController,
)
from repro.analysis.explore.points import (
    CoverageMap,
    InterleavePoint,
    default_coverage_map,
    extract_points,
    instrumentation_map,
)
from repro.analysis.explore.runner import (
    ExploreConfig,
    ExploreResult,
    Explorer,
    RunOutcome,
    ScheduleViolation,
)
from repro.analysis.explore.scenarios import PROTOCOLS, SCENARIOS, Scenario
from repro.analysis.explore.strategies import (
    DFSStrategy,
    DelayBoundingStrategy,
    RandomStrategy,
    ReplayStrategy,
    Strategy,
)

__all__ = [
    "DEFAULT_HORIZON",
    "Decision",
    "FaultBudget",
    "ScheduleController",
    "CoverageMap",
    "InterleavePoint",
    "default_coverage_map",
    "extract_points",
    "instrumentation_map",
    "ExploreConfig",
    "ExploreResult",
    "Explorer",
    "RunOutcome",
    "ScheduleViolation",
    "PROTOCOLS",
    "SCENARIOS",
    "Scenario",
    "DFSStrategy",
    "DelayBoundingStrategy",
    "RandomStrategy",
    "ReplayStrategy",
    "Strategy",
]
