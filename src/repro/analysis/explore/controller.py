"""ScheduleController: the bridge from strategy to simulation.

Installs itself as the :class:`~repro.net.clock.EventScheduler`'s
``chooser`` so that whenever two or more *message deliveries* are
eligible within the choice horizon, the active strategy — not heap
order — decides which lands first.  Every such decision (the chosen
label, the full window, any fault injected) is recorded; the decision
list *is* the schedule, and feeding it back through a
``ReplayStrategy`` reproduces the run deterministically.

Faults are applied at decision points only, from a bounded budget:

- ``loss``      — the chosen delivery is cancelled (message dropped),
- ``crash``     — the destination node of the chosen delivery crashes,
- ``partition`` — the chosen delivery's link is cut both ways.

Windows with fewer than two deliveries (pure timers, a single
in-flight message) are not decision points: the earliest event runs,
exactly as in an uncontrolled simulation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.explore.strategies import FaultAllowance, Strategy

#: Default eligibility horizon: events within 2ms of the earliest
#: pending event count as concurrent.  Wide enough to cover the sim
#: network's jittered one-hop latencies, narrow enough that causally
#: ordered request/reply pairs stay ordered.
DEFAULT_HORIZON = 0.002

_DELIVER_RE = re.compile(r"^deliver:([A-Za-z0-9_.-]+):(\d+)->(\d+)#")


def delivery_dst(label: str) -> Optional[int]:
    """Destination node of a delivery label, None for non-deliveries."""
    match = _DELIVER_RE.match(label)
    return int(match.group(3)) if match else None


def delivery_link(label: str) -> Optional[Tuple[int, int]]:
    """(src, dst) of a delivery label, None for non-deliveries."""
    match = _DELIVER_RE.match(label)
    return (int(match.group(2)), int(match.group(3))) if match else None


@dataclass
class Decision:
    """One recorded choice at a decision point."""

    index: int                 # decision sequence number
    label: str                 # label of the chosen event
    window: List[str]          # labels of every eligible delivery
    fault: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "index": self.index,
            "label": self.label,
            "window": list(self.window),
        }
        if self.fault is not None:
            data["fault"] = self.fault
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Decision":
        return cls(
            index=int(data["index"]),
            label=str(data["label"]),
            window=[str(l) for l in data["window"]],
            fault=data.get("fault"),
        )


@dataclass(frozen=True)
class FaultBudget:
    """Per-run ceiling on injected faults."""

    loss: int = 0
    crash: int = 0
    partition: int = 0

    def allowance(self) -> FaultAllowance:
        return FaultAllowance(self.loss, self.crash, self.partition)


class ScheduleController:
    """Drives one run's delivery choices through a strategy."""

    def __init__(
        self,
        scheduler: Any,
        network: Any,
        strategy: Strategy,
        horizon: float = DEFAULT_HORIZON,
        faults: FaultBudget = FaultBudget(),
    ) -> None:
        self.scheduler = scheduler
        self.network = network
        self.strategy = strategy
        self.decisions: List[Decision] = []
        self.crashed: List[int] = []
        self._allowance = faults.allowance()
        scheduler.chooser = self._choose
        scheduler.choice_horizon = horizon

    def uninstall(self) -> None:
        self.scheduler.chooser = None
        self.scheduler.choice_horizon = 0.0

    # -- chooser ---------------------------------------------------------

    def _choose(self, window: Sequence[Any]) -> Any:
        deliveries = [
            event for event in window
            if event.label.startswith("deliver:")
        ]
        if len(deliveries) < 2:
            return window[0]
        labels = [event.label for event in deliveries]
        choice = self.strategy.choose(
            len(self.decisions), labels, self._allowance
        )
        index = max(0, min(choice.index, len(deliveries) - 1))
        chosen = deliveries[index]
        fault = self._apply_fault(choice.fault, chosen)
        self.decisions.append(
            Decision(
                index=len(self.decisions),
                label=chosen.label,
                window=labels,
                fault=fault,
            )
        )
        return chosen

    def _apply_fault(self, fault: Optional[Dict[str, Any]],
                     chosen: Any) -> Optional[Dict[str, Any]]:
        if fault is None:
            return None
        kind = str(fault.get("kind", ""))
        if not self._allowance.allows(kind):
            return None
        link = delivery_link(chosen.label)
        if link is None:
            return None
        src, dst = link
        if kind == "loss":
            chosen.cancelled = True       # delivered-into-the-void
            applied = {"kind": "loss"}
        elif kind == "crash":
            node = int(fault.get("node", dst))
            self.network.crash(node)
            self.crashed.append(node)
            applied = {"kind": "crash", "node": node}
        elif kind == "partition":
            self.network.partition({src}, {dst})
            applied = {"kind": "partition", "src": src, "dst": dst}
        else:
            return None
        self._allowance.spend(kind)
        return applied
