"""CLI for the schedule explorer.

Explore a (protocol, scenario) matrix under a chosen strategy::

    python -m repro.analysis.explore --protocol crew \\
        --scenario conflicting_writers --strategy dfs --budget 2000

Replay a recorded violating schedule deterministically::

    python -m repro.analysis.explore --replay schedule.json

Dump the static interleaving-point map::

    python -m repro.analysis.explore --points

Exit status is 1 when any explored run violated an invariant, when a
replay failed to reproduce its recorded violation, or when yield-point
coverage fell below ``--min-coverage``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.explore.controller import DEFAULT_HORIZON, Decision, \
    FaultBudget
from repro.analysis.explore.points import default_coverage_map, \
    extract_points, instrumentation_map
from repro.analysis.explore.runner import ExploreConfig, Explorer
from repro.analysis.explore.scenarios import PROTOCOLS, SCENARIOS
from repro.analysis.explore.strategies import DFSStrategy, \
    DelayBoundingStrategy, RandomStrategy, ReplayStrategy, Strategy
from repro.tools.inspect import schedule_report


def _build_strategy(name: str, seed: int) -> Strategy:
    if name == "dfs":
        return DFSStrategy()
    if name == "random":
        return RandomStrategy(seed)
    if name == "delay":
        return DelayBoundingStrategy(seed)
    raise ValueError(f"unknown strategy {name!r}")


def _dump_points(out: Optional[str]) -> int:
    import repro
    from repro.analysis.explore.points import collect_sources

    package_root = Path(repro.__file__).parent
    payload = instrumentation_map(
        extract_points(collect_sources([str(package_root)]))
    )
    text = json.dumps(payload, indent=2)
    if out:
        Path(out).write_text(text + "\n")
        print(f"wrote {payload['counts']} interleaving points to {out}")
    else:
        print(text)
    return 0


def _replay(path: str) -> int:
    schedule = json.loads(Path(path).read_text())
    decisions = [Decision.from_json(d) for d in schedule["decisions"]]
    config = ExploreConfig(
        protocol=schedule["protocol"],
        scenario=schedule["scenario"],
        seed=int(schedule.get("seed", 0)),
        num_nodes=int(schedule.get("num_nodes", 3)),
        placement=schedule.get("placement", "tiered"),
        horizon=float(schedule.get("horizon", DEFAULT_HORIZON)),
        mutations=tuple(schedule.get("mutations") or ()),
    )
    explorer = Explorer(config)
    outcome = explorer.run_once(ReplayStrategy(decisions))
    expected = (schedule.get("violation") or {}).get("rule")
    print(schedule_report(schedule))
    if outcome.violation is None:
        print("replay: violation did NOT reproduce")
        return 1
    print(f"replay: reproduced {outcome.violation.rule}: "
          f"{outcome.violation.detail}")
    if expected and outcome.violation.rule != expected:
        print(f"replay: rule mismatch (recorded {expected})")
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.explore",
        description="Schedule-space exploration for Khazana protocols.",
    )
    parser.add_argument("--protocol", default="all",
                        choices=PROTOCOLS + ["all"])
    parser.add_argument("--scenario", default="all",
                        choices=sorted(SCENARIOS) + ["all"])
    parser.add_argument("--strategy", default="random",
                        choices=["dfs", "random", "delay"])
    parser.add_argument("--budget", type=int, default=200,
                        help="max schedules per (protocol, scenario)")
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--placement", default="tiered",
                        choices=["tiered", "ring"],
                        help="placement backend to explore")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--horizon", type=float, default=DEFAULT_HORIZON)
    parser.add_argument("--mutate", action="append", default=[],
                        help="re-introduce a known bug (mutation proof)")
    parser.add_argument("--loss", type=int, default=0,
                        help="message-loss fault budget per run")
    parser.add_argument("--crash", type=int, default=0,
                        help="node-crash fault budget per run")
    parser.add_argument("--partition", type=int, default=0,
                        help="partition fault budget per run")
    parser.add_argument("--replay", metavar="FILE",
                        help="replay a recorded schedule file")
    parser.add_argument("--out", metavar="FILE",
                        help="where to write a violating schedule")
    parser.add_argument("--points", action="store_true",
                        help="dump the interleaving-point map and exit")
    parser.add_argument("--min-coverage", type=float, default=0.0,
                        help="fail when yield coverage is below this")
    args = parser.parse_args(argv)

    if args.points:
        return _dump_points(args.out)
    if args.replay:
        return _replay(args.replay)

    protocols = PROTOCOLS if args.protocol == "all" else [args.protocol]
    scenarios = (sorted(SCENARIOS) if args.scenario == "all"
                 else [args.scenario])
    coverage = default_coverage_map()
    faults = FaultBudget(loss=args.loss, crash=args.crash,
                         partition=args.partition)

    failures: List[str] = []
    for protocol in protocols:
        for scenario in scenarios:
            config = ExploreConfig(
                protocol=protocol,
                scenario=scenario,
                seed=args.seed,
                num_nodes=args.nodes,
                placement=args.placement,
                horizon=args.horizon,
                faults=faults,
                mutations=tuple(args.mutate),
            )
            explorer = Explorer(config, coverage=coverage)
            strategy = _build_strategy(args.strategy, args.seed)
            result = explorer.explore(strategy, args.budget)
            status = "clean" if result.clean else "VIOLATION"
            print(f"{protocol}/{scenario}: {result.runs} run(s), "
                  f"max {result.decision_points} decision point(s): "
                  f"{status}")
            if result.schedule is not None:
                failures.append(f"{protocol}/{scenario}")
                print(schedule_report(result.schedule))
                if args.out:
                    Path(args.out).write_text(
                        json.dumps(result.schedule, indent=2) + "\n"
                    )
                    print(f"schedule written to {args.out}")

    report = coverage.report()
    print(report.render())
    if failures:
        print(f"{len(failures)} violating pair(s): "
              + ", ".join(failures))
        return 1
    if report.ratio < args.min_coverage:
        print(f"coverage {report.ratio:.1%} below required "
              f"{args.min_coverage:.1%}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
