"""Static extraction of interleaving points in protocol code.

A schedule explorer is only as honest as its notion of "where can the
protocol interleave".  This pass walks the same parsed sources as
``repro.analysis.lint`` and records every point where a tasklet can
lose control:

- ``yield`` / ``yield from`` sites inside generators (a task parks on
  a Future and anything may run before it resumes),
- ``spawn`` / ``spawn_handler`` calls (a new labelled task enters the
  runner),
- raw ``call_at``/``call_later``/``call_soon`` timers (which KHZ008
  bans from the consistency layer precisely so this map stays small).

The yield points double as the denominator of the explorer's coverage
report: :class:`CoverageMap` matches the runtime suspension hook
(``TaskRunner.yield_observer``) against them and reports which
yield-points a set of runs actually exercised.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import SCHEDULER_METHODS
from repro.analysis.sources import SourceFile, collect as _collect

KIND_YIELD = "yield"        # bare ``yield fut`` — a real suspension point
KIND_DELEGATE = "delegate"  # ``yield from`` — suspends only transitively
KIND_SPAWN = "spawn"
KIND_TIMER = "timer"

SPAWN_METHODS = ("spawn", "spawn_handler")

#: Path prefix of the protocol code whose yield points make up the
#: coverage denominator.
CONSISTENCY_SCOPE = "repro/consistency/"


def normalize_path(path: str) -> str:
    """Project-relative posix path, keyed from the ``repro/`` package.

    Maps both static lint paths (``src/repro/consistency/crew.py``)
    and runtime code objects (``/abs/.../src/repro/consistency/crew.py``)
    onto one spelling so they can be compared.
    """
    posix = Path(path).as_posix()
    index = posix.rfind("repro/")
    return posix[index:] if index >= 0 else posix


@dataclass(frozen=True)
class InterleavePoint:
    """One static point where protocol code can interleave."""

    kind: str       # KIND_YIELD | KIND_SPAWN | KIND_TIMER
    path: str       # normalized (repro/...) posix path
    line: int
    end_line: int
    func: str

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "path": self.path,
            "line": self.line,
            "end_line": self.end_line,
            "func": self.func,
        }


class _PointVisitor(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: Sequence[str] = ()) -> None:
        self.path = path
        self.source_lines = source_lines
        self.points: List[InterleavePoint] = []
        self._stack: List[str] = ["<module>"]

    def _add(self, kind: str, node: ast.AST) -> None:
        line = getattr(node, "lineno", 0)
        if kind == KIND_YIELD and 0 < line <= len(self.source_lines) \
                and "pragma: no cover" in self.source_lines[line - 1]:
            # ``return`` followed by a bare ``yield`` marked no-cover is
            # the repo's generator-form idiom: dead code, not a point.
            return
        self.points.append(
            InterleavePoint(
                kind=kind,
                path=self.path,
                line=line,
                end_line=getattr(node, "end_lineno", line) or line,
                func=self._stack[-1],
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Yield(self, node: ast.Yield) -> None:
        self._add(KIND_YIELD, node)
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._add(KIND_DELEGATE, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in SPAWN_METHODS:
                self._add(KIND_SPAWN, node)
            elif node.func.attr in SCHEDULER_METHODS:
                self._add(KIND_TIMER, node)
        self.generic_visit(node)


def extract_points(files: Sequence[SourceFile]) -> List[InterleavePoint]:
    """Every interleaving point in the given parsed sources."""
    points: List[InterleavePoint] = []
    for sf in files:
        visitor = _PointVisitor(normalize_path(sf.path),
                                sf.source.splitlines())
        visitor.visit(sf.tree)
        points.extend(visitor.points)
    return sorted(points, key=lambda p: (p.path, p.line, p.kind))


def collect_sources(paths: Sequence[str]) -> List[SourceFile]:
    """Parse a tree of sources (shared with the lint's collector)."""
    return _collect(paths)


def instrumentation_map(points: Sequence[InterleavePoint]) -> Dict[str, object]:
    """JSON-able dump of all interleaving points, grouped by kind."""
    by_kind: Dict[str, int] = {}
    for point in points:
        by_kind[point.kind] = by_kind.get(point.kind, 0) + 1
    return {
        "counts": by_kind,
        "points": [point.to_json() for point in points],
    }


@dataclass
class CoverageReport:
    """Yield-point coverage over one or more explored runs."""

    total: int
    hit: int
    per_file: Dict[str, Tuple[int, int]]   # path -> (hit, total)
    missing: List[InterleavePoint] = field(default_factory=list)
    delegate_total: int = 0
    delegate_hit: int = 0

    @property
    def ratio(self) -> float:
        return self.hit / self.total if self.total else 1.0

    def render(self) -> str:
        lines = [
            f"yield-point coverage: {self.hit}/{self.total} "
            f"({self.ratio:.1%}); suspended through "
            f"{self.delegate_hit}/{self.delegate_total} "
            "delegation (yield from) sites"
        ]
        for path in sorted(self.per_file):
            file_hit, file_total = self.per_file[path]
            lines.append(f"  {path}: {file_hit}/{file_total}")
        if self.missing:
            lines.append("missed yield points:")
            for point in self.missing:
                lines.append(f"  {point.path}:{point.line} in {point.func}")
        return "\n".join(lines)


class CoverageMap:
    """Matches runtime suspensions against the static yield points.

    Install :meth:`observe` as ``TaskRunner.yield_observer`` on every
    daemon's runner; the observer receives the code object's filename
    and the suspended frame's line, which is mapped back to the static
    point spanning that line.  One map may be shared across every run
    of a scenario/protocol matrix to accumulate coverage.

    The coverage denominator is the bare ``yield`` sites only: a task
    can lose control exactly where a Future is actually yielded, and a
    ``yield from`` line suspends only transitively — when its inner
    chain blocks.  Delegation chains that complete without blocking
    (e.g. a RAM-hit page load charging zero simulated time) never
    suspend, so counting them would make full coverage unreachable by
    construction.  Delegation sites the runs did suspend through are
    still tallied separately (:attr:`delegate_hits`).
    """

    def __init__(self, points: Sequence[InterleavePoint],
                 scope: str = CONSISTENCY_SCOPE) -> None:
        self.scope = scope
        self.points = [
            p for p in points
            if p.kind == KIND_YIELD and p.path.startswith(scope)
        ]
        self.delegates = [
            p for p in points
            if p.kind == KIND_DELEGATE and p.path.startswith(scope)
        ]
        self._by_line: Dict[Tuple[str, int], InterleavePoint] = {}
        for point in self.delegates + self.points:
            for line in range(point.line, point.end_line + 1):
                self._by_line[(point.path, line)] = point
        self.hits: Set[InterleavePoint] = set()
        self.delegate_hits: Set[InterleavePoint] = set()

    def observe(self, filename: str, lineno: int, label: str) -> None:
        point = self._by_line.get((normalize_path(filename), lineno))
        if point is None:
            return
        if point.kind == KIND_YIELD:
            self.hits.add(point)
        else:
            self.delegate_hits.add(point)

    def report(self) -> CoverageReport:
        per_file: Dict[str, Tuple[int, int]] = {}
        missing: List[InterleavePoint] = []
        for point in self.points:
            file_hit, file_total = per_file.get(point.path, (0, 0))
            hit = point in self.hits
            per_file[point.path] = (file_hit + (1 if hit else 0),
                                    file_total + 1)
            if not hit:
                missing.append(point)
        return CoverageReport(
            total=len(self.points),
            hit=len(self.hits),
            per_file=per_file,
            missing=missing,
            delegate_total=len(self.delegates),
            delegate_hit=len(self.delegate_hits),
        )


def default_coverage_map() -> CoverageMap:
    """Coverage map over the installed ``repro`` package sources."""
    import repro

    package_root = Path(repro.__file__).parent
    files = collect_sources([str(package_root)])
    return CoverageMap(extract_points(files))
