"""Schedule-choice strategies for the explorer.

A strategy answers one question, repeatedly: *given these concurrently
eligible message deliveries, which goes first — and does a fault fire
here?*  The controller asks it once per decision point (a window with
two or more deliveries); everything else about the run is the stock
simulation.

Three families, per the usual model-checking trade-off:

- :class:`DFSStrategy` — exhaustive depth-first enumeration with
  sleep-set partial-order reduction.  Complete but exponential; meant
  for small (<= 3 node) configurations.
- :class:`RandomStrategy` — PCT-inspired randomized priorities per
  destination node with occasional priority change points.  Scales to
  any configuration; probabilistic guarantees only.
- :class:`DelayBoundingStrategy` — randomized runs that deviate from
  the default schedule at most ``bound`` times.  Cheap coverage of
  "almost normal" schedules, where many real bugs live.

:class:`ReplayStrategy` re-applies a recorded decision list and is the
basis of deterministic replay and shrinking.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Set


class Choice(NamedTuple):
    """One strategy decision: which window index, and an optional
    fault (``{"kind": "loss"|"crash"|"partition", ...}``)."""

    index: int
    fault: Optional[Dict[str, object]] = None


class Strategy:
    """Base chooser. Subclasses override :meth:`choose`."""

    name = "default"

    def begin_run(self, run_index: int) -> bool:
        """Prepare for run ``run_index``; False when exhausted."""
        return True

    def choose(self, step: int, labels: Sequence[str],
               budget: "FaultAllowance") -> Choice:
        raise NotImplementedError

    def end_run(self) -> None:
        """Run finished; advance internal state (e.g. DFS backtrack)."""


class FaultAllowance:
    """Remaining fault budget for one run (decremented by the
    controller as faults actually fire)."""

    def __init__(self, loss: int = 0, crash: int = 0,
                 partition: int = 0) -> None:
        self.loss = loss
        self.crash = crash
        self.partition = partition

    def allows(self, kind: str) -> bool:
        return getattr(self, kind, 0) > 0

    def spend(self, kind: str) -> None:
        setattr(self, kind, getattr(self, kind) - 1)


class ReplayStrategy(Strategy):
    """Re-apply a recorded decision list, default past its end."""

    name = "replay"

    def __init__(self, decisions: Sequence["Decision"]) -> None:
        from repro.analysis.explore.controller import Decision  # cycle guard
        self.decisions: List[Decision] = list(decisions)
        self.divergences: List[str] = []

    def choose(self, step: int, labels: Sequence[str],
               budget: FaultAllowance) -> Choice:
        if step >= len(self.decisions):
            return Choice(0)
        decision = self.decisions[step]
        if list(labels) != list(decision.window):
            self.divergences.append(
                f"step {decision.index}: recorded window "
                f"{decision.window} but saw {list(labels)}"
            )
        index = decision.window.index(decision.label) \
            if decision.label in labels else 0
        return Choice(index, decision.fault)


def independent(label_a: str, label_b: str) -> bool:
    """Sleep-set independence heuristic: deliveries into *different*
    destination nodes commute (each node is single-threaded, so only
    same-destination arrival order is observable there)."""
    from repro.analysis.explore.controller import delivery_dst

    dst_a = delivery_dst(label_a)
    dst_b = delivery_dst(label_b)
    return dst_a is not None and dst_b is not None and dst_a != dst_b


class _DfsNode:
    __slots__ = ("window", "chosen", "sleep")

    def __init__(self, window: List[str], chosen: int,
                 sleep: Set[str]) -> None:
        self.window = window
        self.chosen = chosen
        self.sleep = sleep


class DFSStrategy(Strategy):
    """Exhaustive DFS over delivery orders with sleep sets.

    The decision tree is rebuilt by re-running from the start with a
    recorded prefix (stateless search).  After each run the deepest
    node advances to its next non-slept alternative; a choice just
    explored enters the sleep sets of later siblings, and sleep sets
    propagate down across independent choices, pruning commuting
    interleavings.
    """

    name = "dfs"

    def __init__(self) -> None:
        self._path: List[_DfsNode] = []
        self._exhausted = False
        self.runs = 0

    def begin_run(self, run_index: int) -> bool:
        self.runs = run_index
        return not self._exhausted

    def choose(self, step: int, labels: Sequence[str],
               budget: FaultAllowance) -> Choice:
        window = list(labels)
        if step < len(self._path):
            node = self._path[step]
            if node.window == window:
                return Choice(node.chosen)
            # The prefix replay diverged (can happen when an earlier
            # choice changes which messages exist later): drop the
            # now-stale subtree and explore fresh from here.
            del self._path[step:]
        sleep: Set[str] = set()
        if self._path:
            parent = self._path[-1]
            chosen_label = parent.window[parent.chosen]
            sleep = {
                label for label in parent.sleep
                if independent(label, chosen_label)
            }
        chosen = 0
        for index, label in enumerate(window):
            if label not in sleep:
                chosen = index
                break
        self._path.append(_DfsNode(window, chosen, sleep))
        return Choice(chosen)

    def end_run(self) -> None:
        while self._path:
            node = self._path[-1]
            node.sleep.add(node.window[node.chosen])
            advanced = False
            for index in range(node.chosen + 1, len(node.window)):
                if node.window[index] not in node.sleep:
                    node.chosen = index
                    advanced = True
                    break
            if advanced:
                return
            self._path.pop()
        self._exhausted = True

    @property
    def exhausted(self) -> bool:
        return self._exhausted


class RandomStrategy(Strategy):
    """PCT-inspired randomized priorities per destination node.

    Each run draws a random priority for every destination node on
    first sight and always delivers to the highest-priority node;
    with probability ``change_prob`` the winner's priority is redrawn
    after the choice (a priority change point).  Run 0 is the pure
    default schedule, so the unperturbed path is always in the set.
    Faults (message loss) fire with ``loss_prob`` while the budget
    allows.
    """

    name = "random"

    def __init__(self, seed: int, change_prob: float = 0.1,
                 loss_prob: float = 0.0) -> None:
        self.seed = seed
        self.change_prob = change_prob
        self.loss_prob = loss_prob
        self._rng = random.Random(seed)
        self._priorities: Dict[int, float] = {}
        self._run = 0

    def begin_run(self, run_index: int) -> bool:
        self._run = run_index
        self._rng = random.Random((self.seed << 20) ^ run_index)
        self._priorities = {}
        return True

    def choose(self, step: int, labels: Sequence[str],
               budget: FaultAllowance) -> Choice:
        from repro.analysis.explore.controller import delivery_dst

        if self._run == 0:
            return Choice(0)
        best_index = 0
        best_priority = -1.0
        for index, label in enumerate(labels):
            dst = delivery_dst(label)
            if dst is None:
                continue
            priority = self._priorities.setdefault(dst, self._rng.random())
            if priority > best_priority:
                best_priority = priority
                best_index = index
        if self._rng.random() < self.change_prob:
            dst = delivery_dst(labels[best_index])
            if dst is not None:
                self._priorities[dst] = self._rng.random()
        fault = None
        if (self.loss_prob > 0 and budget.allows("loss")
                and self._rng.random() < self.loss_prob):
            fault = {"kind": "loss"}
        return Choice(best_index, fault)


class DelayBoundingStrategy(Strategy):
    """Randomized runs with at most ``bound`` deviations each.

    A deviation delays the default (earliest) delivery by picking the
    next one instead.  Run 0 is the pure default schedule.
    """

    name = "delay"

    def __init__(self, seed: int, bound: int = 2,
                 delay_prob: float = 0.25) -> None:
        self.seed = seed
        self.bound = bound
        self.delay_prob = delay_prob
        self._rng = random.Random(seed)
        self._run = 0
        self._deviations = 0

    def begin_run(self, run_index: int) -> bool:
        self._run = run_index
        self._rng = random.Random((self.seed << 20) ^ run_index)
        self._deviations = 0
        return True

    def choose(self, step: int, labels: Sequence[str],
               budget: FaultAllowance) -> Choice:
        if (self._run == 0 or self._deviations >= self.bound
                or self._rng.random() >= self.delay_prob):
            return Choice(0)
        self._deviations += 1
        return Choice(min(1, len(labels) - 1))
