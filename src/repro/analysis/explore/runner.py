"""The explorer proper: run, detect, shrink, replay.

Each *run* builds a fresh cluster from the same seed (the simulation
is deterministic given seed + decision list), installs a
:class:`~repro.analysis.explore.controller.ScheduleController`, and
executes one scenario.  After every scheduled event the run is checked
against the shared race detector (``repro.analysis.races``) and the
step-safe token-conservation invariant; the first violation aborts the
run and its decision list becomes a *schedule file* — a JSON artifact
that replays the exact interleaving deterministically:

    python -m repro.analysis.explore --replay schedule.json

Violating schedules are shrunk greedily before being reported: drop
faults, reset choices to the default (earliest) delivery, trim the
tail — keeping each simplification only if the same violation rule
still reproduces.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.explore.controller import (
    DEFAULT_HORIZON,
    Decision,
    FaultBudget,
    ScheduleController,
)
from repro.analysis.explore.points import CoverageMap
from repro.analysis.explore.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioFailure,
)
from repro.analysis.explore.strategies import ReplayStrategy, Strategy
from repro.analysis.invariants import check_token_ledgers
from repro.analysis.races import Violation
from repro.api import create_cluster
from repro.consistency.engine import ledger as ledger_mod
from repro.core.kernel import DaemonConfig

log = logging.getLogger("repro.analysis.explore")

SCHEDULE_VERSION = 1

#: Cap on extra runs spent simplifying one violating schedule.
SHRINK_TRIALS = 200


class ScheduleViolation(BaseException):
    """Raised by the per-step observer to abort a violating run.

    Derives from ``BaseException`` so no protocol- or scenario-level
    ``except Exception`` can swallow it on the way out.
    """

    def __init__(self, violation: Violation) -> None:
        super().__init__(violation.render())
        self.violation = violation


@dataclass
class RunOutcome:
    """What one controlled run produced."""

    decisions: List[Decision]
    violation: Optional[Violation] = None
    error: Optional[str] = None   # scenario crashed in a non-assert way

    @property
    def clean(self) -> bool:
        return self.violation is None and self.error is None


@dataclass
class ExploreConfig:
    protocol: str
    scenario: str
    seed: int = 0
    num_nodes: int = 3
    #: Placement backend under test ("tiered" or "ring"); the ring
    #: brings its membership/re-homing machinery into the explored
    #: schedule space.
    placement: str = "tiered"
    horizon: float = DEFAULT_HORIZON
    faults: FaultBudget = field(default_factory=FaultBudget)
    #: Names from ``repro.consistency.engine.ledger.KNOWN_MUTATIONS``
    #: to re-introduce for this exploration (mutation proof).
    mutations: Tuple[str, ...] = ()


@dataclass
class ExploreResult:
    config: ExploreConfig
    runs: int
    schedule: Optional[Dict[str, Any]] = None   # first violating schedule
    decision_points: int = 0   # max decision depth seen

    @property
    def clean(self) -> bool:
        return self.schedule is None


class Explorer:
    """Drives one (protocol, scenario) pair through many schedules."""

    def __init__(self, config: ExploreConfig,
                 coverage: Optional[CoverageMap] = None) -> None:
        if config.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {config.scenario!r}")
        self.config = config
        self.coverage = coverage
        self.scenario: Scenario = SCENARIOS[config.scenario]

    # -- single run ------------------------------------------------------

    def run_once(self, strategy: Strategy) -> RunOutcome:
        config = self.config
        cluster = create_cluster(
            max(config.num_nodes, self.scenario.min_nodes),
            seed=config.seed,
            config=DaemonConfig(detect_races=True,
                                placement=config.placement),
            **self.scenario.cluster_kwargs,
        )
        controller = ScheduleController(
            cluster.scheduler, cluster.network, strategy,
            horizon=config.horizon, faults=config.faults,
        )
        detector = cluster.race_detector
        seen = len(detector.violations)
        if self.coverage is not None:
            for daemon in cluster.daemons.values():
                daemon.runner.yield_observer = self.coverage.observe

        def observe(event: Any) -> None:
            if len(detector.violations) > seen:
                raise ScheduleViolation(detector.violations[seen])
            alive = [
                daemon for node, daemon in cluster.daemons.items()
                if not cluster.network.is_crashed(node)
            ]
            problems = check_token_ledgers(alive)
            if problems:
                raise ScheduleViolation(
                    Violation(rule="token-conservation", detail=problems[0])
                )

        cluster.scheduler.observer = observe
        ledger_mod.ACTIVE_MUTATIONS.update(config.mutations)
        violation: Optional[Violation] = None
        error: Optional[str] = None
        try:
            self.scenario.run(cluster, config.protocol)
            if not self.scenario.crashes:
                final = detector.final_check()
                if len(final) > seen:
                    violation = final[seen]
        except ScheduleViolation as caught:
            violation = caught.violation
        except ScenarioFailure as caught:
            violation = Violation(rule="scenario-failure",
                                  detail=str(caught))
        except AssertionError as caught:
            violation = Violation(rule="scenario-failure",
                                  detail=str(caught))
        except Exception as caught:   # khz: allow-broad-except(explorer: a perturbed schedule may surface any protocol error; it is the finding, not a bug in the harness)
            error = f"{type(caught).__name__}: {caught}"
            log.debug("scenario error under exploration", exc_info=True)
        finally:
            ledger_mod.ACTIVE_MUTATIONS.difference_update(config.mutations)
            cluster.scheduler.observer = None
            controller.uninstall()
        return RunOutcome(
            decisions=list(controller.decisions),
            violation=violation,
            error=error,
        )

    # -- exploration loop ------------------------------------------------

    def explore(self, strategy: Strategy, budget: int) -> ExploreResult:
        """Run up to ``budget`` schedules; stop at the first violation
        (shrunk) or when the strategy exhausts the space."""
        result = ExploreResult(config=self.config, runs=0)
        for run_index in range(budget):
            if not strategy.begin_run(run_index):
                break   # DFS exhausted the schedule space
            outcome = self.run_once(strategy)
            strategy.end_run()
            result.runs += 1
            result.decision_points = max(
                result.decision_points, len(outcome.decisions)
            )
            if outcome.error is not None:
                log.warning("run %d errored (not counted as violation):"
                            " %s", run_index, outcome.error)
            if outcome.violation is not None:
                decisions = self._shrink(
                    outcome.decisions, outcome.violation.rule
                )
                result.schedule = self.schedule_dict(
                    decisions, outcome.violation, strategy
                )
                break
        return result

    def replay(self, decisions: Sequence[Decision]) -> RunOutcome:
        """Deterministically re-run one recorded schedule."""
        return self.run_once(ReplayStrategy(decisions))

    # -- schedule files --------------------------------------------------

    def schedule_dict(self, decisions: Sequence[Decision],
                      violation: Violation,
                      strategy: Strategy) -> Dict[str, Any]:
        config = self.config
        return {
            "version": SCHEDULE_VERSION,
            "protocol": config.protocol,
            "scenario": config.scenario,
            "seed": config.seed,
            "num_nodes": max(config.num_nodes, self.scenario.min_nodes),
            "placement": config.placement,
            "horizon": config.horizon,
            "mutations": list(config.mutations),
            "strategy": strategy.name,
            "violation": {
                "rule": violation.rule,
                "detail": violation.detail,
            },
            "decisions": [decision.to_json() for decision in decisions],
        }

    # -- shrinking -------------------------------------------------------

    def _reproduces(self, decisions: List[Decision], rule: str) -> bool:
        outcome = self.replay(decisions)
        return (outcome.violation is not None
                and outcome.violation.rule == rule)

    def _shrink(self, decisions: List[Decision],
                rule: str) -> List[Decision]:
        """Greedy simplification: drop faults, default each choice,
        trim the tail — keep a step only if the violation survives."""
        best = list(decisions)
        trials = 0
        changed = True
        while changed and trials < SHRINK_TRIALS:
            changed = False
            # Pass 1: remove injected faults.
            for position, decision in enumerate(best):
                if decision.fault is None:
                    continue
                trial = list(best)
                trial[position] = Decision(
                    decision.index, decision.label,
                    list(decision.window), fault=None,
                )
                trials += 1
                if self._reproduces(trial, rule):
                    best = trial
                    changed = True
            # Pass 2: reset non-default choices to the earliest
            # delivery (window[0] is always the default schedule).
            for position, decision in enumerate(best):
                if decision.label == decision.window[0]:
                    continue
                trial = list(best)
                trial[position] = Decision(
                    decision.index, decision.window[0],
                    list(decision.window), fault=decision.fault,
                )
                trials += 1
                if self._reproduces(trial, rule):
                    best = trial
                    changed = True
                if trials >= SHRINK_TRIALS:
                    break
        # Pass 3: a trailing run of default no-fault decisions is dead
        # weight — replay treats past-the-end steps as default anyway.
        while best and best[-1].fault is None \
                and best[-1].label == best[-1].window[0]:
            best.pop()
        return best
