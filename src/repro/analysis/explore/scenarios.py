"""The explorable scenario matrix.

Mirrors the five-scenario matrix of ``tests/test_protocol_conformance``
— single-page read/write, multi-page batch cycle, conflicting writers,
node failure mid-acquire, unlock-after-close — as plain callables the
explorer can re-run thousands of times under controlled schedules.
Each scenario asserts only *schedule-robust* properties (guarantees
that must hold under every legal delivery order), because the whole
point is that the explorer perturbs the order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping

from repro.core.addressing import AddressRange
from repro.core.attributes import RegionAttributes
from repro.core.errors import InvalidLockContext
from repro.core.locks import LockMode

PAGE = 4096

#: Protocols whose write grant is a globally exclusive token.
SERIALIZED = {"crew", "release"}

#: Protocols that replicate released writes to every home node.
DURABLE_ON_FAILOVER = {"crew", "mobile"}


class ScenarioFailure(AssertionError):
    """A schedule-robust guarantee did not hold on this run."""


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioFailure(message)


@dataclass(frozen=True)
class Scenario:
    name: str
    run: Callable[[Any, str], None]   # (cluster, protocol) -> None
    min_nodes: int = 2
    crashes: bool = False   # scenario crashes nodes itself
    #: Extra keyword arguments for ``create_cluster`` (e.g. shrunken
    #: storage tiers to force evictions).
    cluster_kwargs: Mapping[str, Any] = field(default_factory=dict)


def _region(cluster: Any, protocol: str, size: int = PAGE,
            min_replicas: int = 1, node: int = 1):
    kz = cluster.client(node=node)
    desc = kz.reserve(
        size,
        RegionAttributes(
            consistency_protocol=protocol, min_replicas=min_replicas
        ),
    )
    kz.allocate(desc.rid)
    return kz, desc


def _other_node(cluster: Any, writer: int) -> int:
    """Some live node other than ``writer`` (highest id first)."""
    for node in reversed(cluster.node_ids()):
        if node != writer:
            return node
    return 0


def _locked_write(session: Any, desc: Any, payload: bytes,
                  length: int = PAGE):
    daemon = session.daemon
    target = AddressRange(desc.rid, length)

    def task():
        ctx = yield from daemon.op_lock(target, LockMode.WRITE,
                                        session.principal)
        yield from daemon.op_write(
            ctx, AddressRange(desc.rid, len(payload)), payload
        )
        yield from daemon.op_unlock(ctx)

    return task()


# -- scenarios -----------------------------------------------------------


def single_page(cluster: Any, protocol: str) -> None:
    kz, desc = _region(cluster, protocol)
    kz.write_at(desc.rid, b"local")
    _expect(kz.read_at(desc.rid, 5) == b"local",
            "read-your-writes broken on the writing node")
    cluster.run(2.0)
    remote = cluster.client(node=_other_node(cluster, 1))
    _expect(remote.read_at(desc.rid, 5) == b"local",
            "released write not visible to a remote reader")


def multi_page_batch(cluster: Any, protocol: str) -> None:
    size = 2 * PAGE
    kz1, desc = _region(cluster, protocol, size=size)
    kz1.write_at(desc.rid, b"a" * size)
    cluster.run(2.0)

    remote = cluster.client(node=_other_node(cluster, 1))
    ctx = remote.lock(desc.rid, size, LockMode.WRITE)
    _expect(remote.read(ctx, desc.rid, size) == b"a" * size,
            "batch fetch returned stale or torn pages")
    remote.write(ctx, desc.rid, b"b" * size)
    remote.unlock(ctx)
    _expect(remote.read_at(desc.rid, size) == b"b" * size,
            "writer's own batch write not readable back")

    cluster.run(4.0)
    _expect(cluster.client(node=0).read_at(desc.rid, 4) == b"bbbb",
            "multi-page cycle did not converge at a third node")


def conflicting_writers(cluster: Any, protocol: str) -> None:
    kz1, desc = _region(cluster, protocol)
    kz1.write_at(desc.rid, b"base")
    other = _other_node(cluster, 1)
    kz3 = cluster.client(node=other)
    kz3.read_at(desc.rid, 4)   # the rival holds a replica

    ctx = kz1.lock(desc.rid, PAGE, LockMode.WRITE)
    future = kz3.submit(_locked_write(kz3, desc, b"from-3"), "bg-write")
    cluster.run(2.0)
    if protocol in SERIALIZED:
        _expect(not future.done,
                "second writer completed while the token was held")
    kz1.write(ctx, desc.rid, b"from-1")
    kz1.unlock(ctx)
    cluster.run(30.0)
    _expect(future.done and future.exception() is None,
            f"background writer never completed: {future.exception()!r}")
    if protocol in SERIALIZED:
        _expect(kz3.read_at(desc.rid, 6) == b"from-3",
                "serialized writers did not apply in grant order")


def failover(cluster: Any, protocol: str) -> None:
    kz1, desc = _region(cluster, protocol, min_replicas=2)
    writer = cluster.client(node=_other_node(cluster, 1))
    writer.write_at(desc.rid, b"durable")
    cluster.run(2.0)
    _expect(len(desc.home_nodes) >= 2,
            "min_replicas=2 region has a single home")

    cluster.crash(desc.home_nodes[0])
    # Read from a non-home survivor (a home would skip itself in the
    # engine's home fan-out and see only the dead primary).
    survivor = next(
        node for node in reversed(cluster.node_ids())
        if node not in desc.home_nodes
    )
    data = cluster.client(node=survivor).read_at(desc.rid, 7)
    if protocol in DURABLE_ON_FAILOVER:
        _expect(data == b"durable",
                "failover read lost a replicated released write")
    else:
        _expect(len(data) == 7, "failover read failed outright")


def unlock_after_close(cluster: Any, protocol: str) -> None:
    kz, desc = _region(cluster, protocol)
    ctx = kz.lock(desc.rid, PAGE, LockMode.WRITE)
    kz.write(ctx, desc.rid, b"ok")
    kz.unlock(ctx)
    try:
        kz.unlock(ctx)
    except InvalidLockContext:
        pass
    else:
        raise ScenarioFailure("double unlock did not raise")
    try:
        kz.read(ctx, desc.rid, 2)  # khz: allow-stale-context(explorer: stale handles must raise under every schedule)
    except InvalidLockContext:
        pass
    else:
        raise ScenarioFailure("closed context accepted io")


def owner_handoff(cluster: Any, protocol: str) -> None:
    """Write-on-one-node, read-on-another, then steal the ownership.

    With CREW this walks the full ownership dance: round one makes the
    home fetch the writer's exclusive copy to serve the reader; the
    reader's grant carries an owner hint, so round two's read goes
    *directly* to the owner (Figure 2's fast path).  The final write
    from a third node forces the home to *revoke* the standing remote
    owner and migrate exclusivity.  Other protocols simply run the
    same access pattern through their own machinery.
    """
    kz1, desc = _region(cluster, protocol)
    writer_node = _other_node(cluster, 1)
    reader_node = next(
        node for node in reversed(cluster.node_ids())
        if node not in (1, writer_node)
    )
    writer = cluster.client(node=writer_node)
    reader = cluster.client(node=reader_node)
    for payload in (b"round-one", b"round-two"):
        writer.write_at(desc.rid, payload)
        data = reader.read_at(desc.rid, len(payload))
        _expect(len(data) == len(payload),
                "reader failed against a live exclusive owner")
        # Only CREW invalidates read copies on the write path, so only
        # there is an un-settled remote read guaranteed fresh (release
        # fans updates out to sharers asynchronously).
        if protocol == "crew":
            _expect(data == payload,
                    "CREW read missed the owner's current bytes")
    # Ownership migration: the writer still owns the page, so this
    # third-party write makes the home revoke a remote owner.
    reader.write_at(desc.rid, b"round-three")
    data = writer.read_at(desc.rid, 11)
    _expect(len(data) == 11, "read after ownership migration failed")
    if protocol == "crew":
        _expect(data == b"round-three",
                "CREW read missed the migrated owner's bytes")
    cluster.run(2.0)


def home_outage(cluster: Any, protocol: str) -> None:
    """Release while the home is partitioned away.

    Release-type errors must never surface to the client (paper 3.5):
    the push parks on the retry queue and drains once the partition
    heals, after which the home converges on the final payload.
    """
    kz1, desc = _region(cluster, protocol)
    writer_node = _other_node(cluster, 1)
    writer = cluster.client(node=writer_node)
    writer.write_at(desc.rid, b"seed")
    cluster.run(1.0)

    ctx = writer.lock(desc.rid, PAGE, LockMode.WRITE)
    writer.write(ctx, desc.rid, b"cut")
    others = {n for n in cluster.node_ids() if n != 1}
    cluster.network.partition({1}, others)
    writer.unlock(ctx)   # must not raise; push goes to the retry queue
    cluster.run(5.0)
    cluster.network.heal_partitions()
    cluster.run(60.0)    # retries + failure-detector recovery drain
    data = cluster.client(node=1).read_at(desc.rid, 3)
    _expect(len(data) == 3, "home read failed after the outage healed")
    # The push-to-home protocols park the failed release on the retry
    # queue and must converge once healed.  CREW may instead have shed
    # the "dead" owner from the copyset during the partition, and
    # mobile's gossip reaches the home only eventually — for those the
    # guarantee is availability, not this payload.
    if protocol in ("release", "eventual"):
        _expect(data == b"cut",
                "home never converged on the write released during outage")


def eviction_writeback(cluster: Any, protocol: str) -> None:
    """Cache pressure: a non-home node evicts dirty pages entirely.

    One node writes two regions homed at two *other* nodes, together
    outgrowing its shrunken storage tiers, while each home still fits
    its own region.  Pages leave the writer through the consistency
    manager's evict hook (dirty write-back + sharer unregister — under
    CREW a non-home writer's copies stay dirty after release, so the
    eviction itself must push the bytes home), and a later read must
    re-fetch.  One lock cycle per page keeps pages unpinned: a single
    context over a whole region would pin more pages than RAM holds.
    The writer is neither a home nor the bootstrap node — bootstrap
    homes the (unevictable) system address map.
    """
    pages_each = 8
    _, desc_a = _region(cluster, protocol, size=pages_each * PAGE, node=1)
    _, desc_b = _region(cluster, protocol, size=pages_each * PAGE, node=2)
    writer = cluster.client(node=max(cluster.node_ids()))
    for desc, fill in ((desc_a, 65), (desc_b, 97)):
        for page in range(pages_each):
            writer.write_at(desc.rid + page * PAGE,
                            bytes([fill + page]) * 8)
    cluster.run(5.0)
    data = writer.read_at(desc_a.rid, 8)
    _expect(len(data) == 8, "re-fetch after eviction failed")
    if protocol in SERIALIZED:
        _expect(data == b"A" * 8, "evicted dirty page lost its bytes")


SCENARIOS: Dict[str, Scenario] = {
    s.name: s for s in (
        Scenario("single_page", single_page),
        Scenario("multi_page_batch", multi_page_batch),
        Scenario("conflicting_writers", conflicting_writers),
        Scenario("failover", failover, min_nodes=4, crashes=True),
        Scenario("unlock_after_close", unlock_after_close),
        Scenario("owner_handoff", owner_handoff, min_nodes=3),
        Scenario("home_outage", home_outage, min_nodes=3),
        Scenario("eviction_writeback", eviction_writeback, min_nodes=4,
                 cluster_kwargs={"memory_pages": 4, "disk_pages": 8}),
    )
}

PROTOCOLS = ["crew", "release", "eventual", "mobile"]
