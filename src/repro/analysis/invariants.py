"""Quiesced-state invariant checks over a set of Khazana daemons.

These functions inspect daemon state without mutating it and return
human-readable problem descriptions (empty list = invariant holds).
They are shared by two consumers: the race detector's
:meth:`~repro.analysis.races.RaceDetector.final_check`, and
``tools/fsck.py`` in ``--strict`` mode.

They are *final* checks: several of these invariants are legitimately
violated in transient states (a replica floor during re-replication,
a pin while a lock context is open), so run them only against a
quiesced cluster — after the operations under test have completed and
background repair has had time to converge.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set

from repro.core.address_map import SYSTEM_REGION


def check_pin_balance(daemons: Sequence[Any]) -> List[str]:
    """Lock-table and context bookkeeping agree on every node.

    Every live lock context must be open and known to the daemon's
    context-to-pages map, and vice versa: a context in one structure
    but not the other means pins will never be released (or were
    released twice).
    """
    problems: List[str] = []
    for daemon in daemons:
        open_ids = set(daemon.open_context_ids())
        table_ids = set()
        for ctx in daemon.lock_table.live_contexts():
            table_ids.add(ctx.ctx_id)
            if ctx.closed:
                problems.append(
                    f"node {daemon.node_id}: closed context {ctx.ctx_id} "
                    "still registered in the lock table"
                )
            if ctx.ctx_id not in open_ids:
                problems.append(
                    f"node {daemon.node_id}: context {ctx.ctx_id} is in "
                    "the lock table but unknown to the daemon"
                )
        for ctx_id in open_ids:
            if ctx_id not in table_ids:
                problems.append(
                    f"node {daemon.node_id}: context {ctx_id} maps pages "
                    "but is not registered in the lock table"
                )
    return problems


def check_replica_floor(daemons: Sequence[Any]) -> List[str]:
    """Every region's home count meets its ``min_replicas`` floor.

    The floor is capped at the number of live daemons: a 3-replica
    region on a 2-node system can only ever have 2 homes.
    """
    problems: List[str] = []
    homes: Dict[int, Set[int]] = {}
    floors: Dict[int, int] = {}
    for daemon in daemons:
        for rid, desc in daemon.homed_regions.items():
            homes.setdefault(rid, set()).add(daemon.node_id)
            floors[rid] = max(floors.get(rid, 0), desc.attrs.min_replicas)
    for rid, floor in sorted(floors.items()):
        if rid == SYSTEM_REGION.start:
            continue
        effective = min(floor, len(daemons))
        actual = homes.get(rid, set())
        if len(actual) < effective:
            problems.append(
                f"region {rid:#x}: min_replicas={floor} but only "
                f"{sorted(actual)} home it ({len(actual)} < {effective})"
            )
    return problems


def check_token_ledgers(daemons: Sequence[Any]) -> List[str]:
    """Token conservation: every granted write token's mutex is held.

    The protocol engine's CopysetLedger pairs a per-page token mutex
    with a record of which node each token was granted to.  A recorded
    holder whose mutex is free means a release path gave back the
    mutex without clearing the grant (or a grant leaked past an
    abort); the page can then be granted twice.
    """
    problems: List[str] = []
    for daemon in daemons:
        for protocol, cm in daemon.consistency_managers().items():
            engine = getattr(cm, "engine", None)
            if engine is None:
                continue
            ledger = engine.ledger
            for page_addr, holder in sorted(ledger.holders().items()):
                if not ledger.locked(page_addr):
                    problems.append(
                        f"node {daemon.node_id} [{protocol}]: page "
                        f"{page_addr:#x} token is recorded for node "
                        f"{holder} but its mutex is not held"
                    )
    return problems


def check_directory_store_agreement(daemons: Sequence[Any]) -> List[str]:
    """Every stored page is known to its node's page directory.

    A page resident in the storage hierarchy without a directory entry
    is unreachable by the consistency machinery: it can neither be
    invalidated nor written back, so it silently serves stale data.
    (The converse is legal — a homed, allocated entry may lack storage
    because untouched pages are materialised lazily as zeroes.)
    """
    problems: List[str] = []
    for daemon in daemons:
        stored = set(daemon.storage.memory.addresses())
        stored.update(daemon.storage.disk.addresses())
        for address in sorted(stored):
            if SYSTEM_REGION.contains(address):
                continue
            if daemon.page_directory.get(address) is None:
                problems.append(
                    f"node {daemon.node_id}: page {address:#x} is stored "
                    "locally but has no page-directory entry"
                )
    return problems
