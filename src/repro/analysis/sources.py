"""Shared parsed-source infrastructure for every analysis pass.

The linter (:mod:`repro.analysis.lint`), the schedule explorer
(:mod:`repro.analysis.explore`), and the whole-program flow analyzer
(:mod:`repro.analysis.flow`) all walk the same files.  Parsing is the
dominant cost of a lint run, so this module owns the one
:class:`SourceFile` representation and a process-wide cache keyed by
``(resolved path, mtime, size)``: each file is parsed once per
invocation no matter how many passes look at it, and a re-run inside
one process (e.g. the test suite linting the tree repeatedly) reuses
the cached tree as long as the file has not changed on disk.

``repro.analysis.lint`` re-exports :class:`SourceFile` and
``SUPPRESS_RE`` for backward compatibility; new code should import
them from here.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

SUPPRESS_RE = re.compile(r"#\s*khz:\s*allow-([a-z0-9-]+)\(([^)]*)\)")


@dataclass
class SourceFile:
    """One parsed input file plus its suppression comments."""

    path: str          # normalized posix path, as given
    source: str
    tree: ast.AST
    #: line -> list of (slug, reason) suppressions on that line.
    suppressions: Dict[int, List[Tuple[str, str]]] = field(
        default_factory=dict
    )

    @classmethod
    def parse(cls, path: str, source: str) -> "SourceFile":
        tree = ast.parse(source, filename=path)
        suppressions: Dict[int, List[Tuple[str, str]]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            for match in SUPPRESS_RE.finditer(line):
                suppressions.setdefault(lineno, []).append(
                    (match.group(1), match.group(2))
                )
        return cls(path=path, source=source, tree=tree,
                   suppressions=suppressions)


#: resolved path -> (mtime_ns, size, parsed file).
_CACHE: Dict[Path, Tuple[int, int, SourceFile]] = {}

#: Cache effectiveness counters (the tests and docs cite these).
stats = {"parses": 0, "hits": 0}


def clear_cache() -> None:
    """Drop every cached parse (tests use this to measure cold runs)."""
    _CACHE.clear()
    stats["parses"] = 0
    stats["hits"] = 0


def load(path: Path) -> SourceFile:
    """The parsed form of ``path``, reparsing only when it changed."""
    resolved = path.resolve()
    meta = path.stat()
    key = (meta.st_mtime_ns, meta.st_size)
    entry = _CACHE.get(resolved)
    if entry is not None and (entry[0], entry[1]) == key:
        stats["hits"] += 1
        return entry[2]
    source = path.read_text(encoding="utf-8")
    sf = SourceFile.parse(path.as_posix(), source)
    stats["parses"] += 1
    _CACHE[resolved] = (key[0], key[1], sf)
    return sf


def collect(paths: Sequence[str]) -> List[SourceFile]:
    """Every ``.py`` file under ``paths``, parsed once, deduplicated.

    A file that cannot be parsed aborts the run: an analysis pass
    silently skipping unparseable input would report a clean tree it
    never actually checked.
    """
    seen: Set[Path] = set()
    files: List[SourceFile] = []
    for raw in paths:
        root = Path(raw)
        candidates = (
            sorted(root.rglob("*.py")) if root.is_dir() else [root]
        )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                files.append(load(candidate))
            except SyntaxError as error:
                raise SystemExit(f"{candidate}: cannot parse: {error}")
    return files
