"""Correctness tooling for the Khazana reproduction.

Two layers:

- :mod:`repro.analysis.lint` — an AST-based static checker with
  project-specific rules (KHZ001..KHZ005) covering the mistakes this
  codebase is most prone to: blocking calls inside the discrete-event
  simulation, unregistered message types, swallowed exceptions in
  protocol code, stale lock contexts, and exceptions raised outside
  the :mod:`repro.core.errors` taxonomy.  Run it with
  ``python -m repro.analysis.lint src/ tests/ examples/``.

- :mod:`repro.analysis.races` — a dynamic race/invariant detector
  built on vector clocks, hooked into the lock table, the daemons,
  and the consistency managers through no-op-when-disabled probe
  points.  Enable it with ``DaemonConfig(detect_races=True)`` (every
  daemon of a :class:`~repro.api.Cluster` then shares one detector).

:mod:`repro.analysis.invariants` holds the quiesced-state checks
(pin balance, replica floors, page-directory/store agreement) shared
between the detector's final pass and ``tools/fsck.py --strict``.
"""

from repro.analysis.races import NULL_PROBE, Probe, RaceDetector, Violation

__all__ = ["NULL_PROBE", "Probe", "RaceDetector", "Violation"]
