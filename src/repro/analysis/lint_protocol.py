"""KHZ013 static-table: the protocol verifier's inputs stay literal.

The Layer 5 verifier (:mod:`repro.analysis.protocol`) rebuilds each
consistency manager's automaton from two syntactic surfaces: the
CM's ``TRANSITIONS`` class attribute and the ``MessageType``-keyed
dispatch registrations in ``MessageRouter.wire``.  Verification is
only sound while those surfaces stay *statically extractable* —
pure literals, never mutated at runtime, no computed keys.  This
rule CI-enforces that input contract inside ``repro/``:

- **table shape** — every ``TRANSITIONS`` assignment must be a
  literal dict of ``PageEvent.X: LocalPageState.Y`` entries; no
  ``**`` unpacking, comprehensions, function calls, or name keys.
- **no runtime mutation** — ``TRANSITIONS`` may not be assigned
  outside a class body, subscript-assigned, ``del``-ed, or mutated
  through ``update``/``pop``/``setdefault``/``clear``/``popitem``.
- **dispatch maps** — a dict display keyed by ``PageEvent.X`` or
  ``MessageType.X`` members must key *every* entry that way, and
  ``cm_dispatch(...)`` / ``reg(MessageType.X, ...)`` registrations
  must pass literals (a string handler name, a literal member).

Scope: files under ``repro/`` (the shipped package) only; tests and
fixtures may build mutated tables on purpose.  Suppress a deliberate
exception with ``# khz: allow-static-table(reason)``.

Like KHZ012, this rule lives outside :mod:`repro.analysis.lint`
purely for size: that module sits just under the structure guard's
per-module line ceiling.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.sources import SourceFile

if TYPE_CHECKING:   # the reporter duck type lives in lint.py
    from repro.analysis.lint import _Reporter

#: KHZ013 applies to the shipped package, not tests/examples.
PACKAGE_SCOPE = "repro/"

#: The class attribute that *is* each protocol's automaton.
TABLE_NAME = "TRANSITIONS"

#: Enums whose literal-keyed dict displays the verifier extracts.
EXTRACTED_ENUMS = ("PageEvent", "MessageType")

#: dict methods that mutate in place.
MUTATORS = frozenset({"update", "pop", "setdefault", "clear",
                      "popitem", "__setitem__"})


def _enum_key(node: ast.expr) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in EXTRACTED_ENUMS)


def _names_table(node: ast.expr) -> bool:
    """Does this expression refer to a TRANSITIONS table?"""
    if isinstance(node, ast.Name):
        return node.id == TABLE_NAME
    if isinstance(node, ast.Attribute):
        return node.attr == TABLE_NAME
    return False


def _check_table_value(sf: SourceFile, value: ast.expr,
                       reporter: "_Reporter") -> None:
    if not isinstance(value, ast.Dict):
        reporter.flag(
            sf, value.lineno, "KHZ013", "static-table",
            "TRANSITIONS must be a literal dict the verifier can "
            f"extract; found {type(value).__name__}",
        )
        return
    for key, val in zip(value.keys, value.values):
        if key is None:
            reporter.flag(
                sf, value.lineno, "KHZ013", "static-table",
                "TRANSITIONS must not unpack another mapping; write "
                "every PageEvent entry out literally",
            )
            continue
        if not (_enum_key(key) and isinstance(key, ast.Attribute)
                and key.value.id == "PageEvent"):  # type: ignore[union-attr]
            reporter.flag(
                sf, key.lineno, "KHZ013", "static-table",
                "TRANSITIONS keys must be literal PageEvent members",
            )
        if not (isinstance(val, ast.Attribute)
                and isinstance(val.value, ast.Name)
                and val.value.id == "LocalPageState"):
            reporter.flag(
                sf, val.lineno, "KHZ013", "static-table",
                "TRANSITIONS values must be literal LocalPageState "
                "members",
            )


def _check_dispatch_display(sf: SourceFile, node: ast.Dict,
                            reporter: "_Reporter") -> None:
    if not any(key is not None and _enum_key(key) for key in node.keys):
        return
    for key in node.keys:
        if key is None:
            reporter.flag(
                sf, node.lineno, "KHZ013", "static-table",
                "enum-keyed dispatch maps must not unpack another "
                "mapping — the verifier reads them statically",
            )
        elif not _enum_key(key):
            reporter.flag(
                sf, key.lineno, "KHZ013", "static-table",
                "dispatch maps keyed by PageEvent/MessageType must "
                "key every entry with a literal member; found "
                f"{type(key).__name__}",
            )


def _check_registration(sf: SourceFile, node: ast.Call,
                        reporter: "_Reporter") -> None:
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    if name == "cm_dispatch":
        if node.args and not (
                isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            reporter.flag(
                sf, node.lineno, "KHZ013", "static-table",
                "cm_dispatch must take a literal handler-name string "
                "so the verifier can pair routes with handlers",
            )
    elif name == "reg" and node.args:
        if not _enum_key(node.args[0]):
            reporter.flag(
                sf, node.lineno, "KHZ013", "static-table",
                "reg(...) must register a literal MessageType member "
                "so the dispatch surface stays extractable",
            )


def check_static_tables(sf: SourceFile, reporter: "_Reporter") -> None:
    """KHZ013: TRANSITIONS tables and dispatch maps stay literal."""
    if PACKAGE_SCOPE not in sf.path:
        return
    class_body_tables = set()
    table_dicts = set()
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.targets[0].id == TABLE_NAME):
                    class_body_tables.add(id(stmt))
                    table_dicts.add(id(stmt.value))
                    _check_table_value(sf, stmt.value, reporter)
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Assign):
            if id(node) in class_body_tables:
                continue
            for target in node.targets:
                if _names_table(target):
                    reporter.flag(
                        sf, node.lineno, "KHZ013", "static-table",
                        "TRANSITIONS may only be declared once, in "
                        "the CM class body — runtime rebinding hides "
                        "the automaton from the verifier",
                    )
                elif (isinstance(target, ast.Subscript)
                        and _names_table(target.value)):
                    reporter.flag(
                        sf, node.lineno, "KHZ013", "static-table",
                        "TRANSITIONS entries may not be assigned at "
                        "runtime — declare the transition in the "
                        "table literal",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (_names_table(target)
                        or (isinstance(target, ast.Subscript)
                            and _names_table(target.value))):
                    reporter.flag(
                        sf, node.lineno, "KHZ013", "static-table",
                        "TRANSITIONS entries may not be deleted at "
                        "runtime",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in MUTATORS
                    and _names_table(func.value)):
                reporter.flag(
                    sf, node.lineno, "KHZ013", "static-table",
                    f"TRANSITIONS.{func.attr}(...) mutates the "
                    "declared automaton at runtime — the verifier "
                    "would be proving the wrong table",
                )
            else:
                _check_registration(sf, node, reporter)
        elif isinstance(node, ast.Dict) and id(node) not in table_dicts:
            _check_dispatch_display(sf, node, reporter)
