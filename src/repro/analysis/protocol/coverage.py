"""KHZ204: model-driven coverage of the conformance matrix.

The static side emits each protocol's automaton edge list — the
declared ``event -> state`` edges, plus the full product over
reachable source states for the report.  The dynamic side is a
:func:`repro.consistency.engine.state.add_trace_hook` observer the
conformance suite registers; diffing the two answers *which declared
transitions did the matrix actually exercise?* and
:func:`scenario_skeleton` turns every uncovered edge into a pytest
skeleton so closing the gap is a copy-paste away.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.analysis.protocol.model import ProtocolModel

#: ``(state_before, event)`` pairs observed at runtime, per protocol.
Exercised = Mapping[str, Set[Tuple[str, str]]]


def event_edges(model: ProtocolModel) -> List[Tuple[str, str]]:
    """The declared ``(event, target_state)`` edges — the coverage
    denominator: one edge per table entry."""
    return [(t.event, t.target) for t in model.transitions]


def product_edges(model: ProtocolModel) -> List[Tuple[str, str, str]]:
    """``(source, event, target)`` over every reachable source state.

    ``fire`` is total per event, so each declared event is an edge
    out of *every* reachable state; this is the exhaustive list the
    report renders (informational — many product edges are excluded
    by guards the automaton abstracts away)."""
    out = []
    for state in model.reachable_states:
        for t in model.transitions:
            out.append((state, t.event, t.target))
    return out


def edge_report(models: Sequence[ProtocolModel],
                exercised: Exercised = None) -> Dict[str, dict]:
    """Per-protocol edge lists, plus coverage when ``exercised``
    trace data is supplied."""
    report: Dict[str, dict] = {}
    for model in models:
        edges = event_edges(model)
        doc = {
            "states": model.reachable_states,
            "events": sorted(model.declared_events),
            "event_edges": [list(e) for e in edges],
            "product_edges": [list(e)
                              for e in product_edges(model)],
        }
        if exercised is not None:
            seen = exercised.get(model.protocol, set())
            seen_events = {event for _state, event in seen}
            covered = [e for e, _t in edges if e in seen_events]
            missed = [e for e, _t in edges if e not in seen_events]
            doc["covered_events"] = sorted(covered)
            doc["uncovered_events"] = sorted(missed)
            doc["coverage"] = (len(covered) / len(edges)) if edges \
                else 1.0
            doc["observed_product_edges"] = sorted(
                [state, event] for state, event in seen
            )
        report[model.protocol] = doc
    return report


def total_coverage(report: Dict[str, dict]) -> float:
    """Matrix-wide declared-edge coverage across every protocol."""
    covered = sum(len(doc.get("covered_events", []))
                  for doc in report.values())
    declared = sum(len(doc["event_edges"]) for doc in report.values())
    return covered / declared if declared else 1.0


def scenario_skeleton(protocol: str, event: str, target: str) -> str:
    """A pytest skeleton for one uncovered automaton edge."""
    return (
        f"@pytest.mark.parametrize(\"protocol\", [\"{protocol}\"])\n"
        f"class TestEdge{event.title().replace('_', '')}:\n"
        f"    def test_{event.lower()}_reaches_{target.lower()}"
        f"(self, cluster, protocol):\n"
        f"        # KHZ204: no conformance scenario fires "
        f"PageEvent.{event}\n"
        f"        # for {protocol!r}; drive one and assert the page "
        f"lands {target}.\n"
        f"        kz, desc = make_region(cluster, protocol)\n"
        f"        raise NotImplementedError(\n"
        f"            \"exercise PageEvent.{event} -> "
        f"LocalPageState.{target}\"\n"
        f"        )\n"
    )


def uncovered_skeletons(models: Sequence[ProtocolModel],
                        exercised: Exercised) -> List[str]:
    out = []
    report = edge_report(models, exercised)
    for model in models:
        doc = report[model.protocol]
        for event in doc.get("uncovered_events", []):
            target = model.declared_events[event]
            out.append(scenario_skeleton(model.protocol, event, target))
    return out


def coverage_table(report: Dict[str, dict]) -> str:
    """The per-protocol table checked into ``bench_tables.txt``."""
    lines = [
        "Automaton edge coverage (conformance matrix vs KHZ204 edge "
        "list)",
        "=" * 66,
        f"{'protocol':<10} {'declared':>8} {'covered':>8} "
        f"{'coverage':>9}  uncovered",
    ]
    for protocol in sorted(report):
        doc = report[protocol]
        declared = len(doc["event_edges"])
        covered = len(doc.get("covered_events", []))
        pct = f"{100.0 * covered / declared:.0f}%" if declared else "-"
        missed = ", ".join(doc.get("uncovered_events", [])) or "-"
        lines.append(
            f"{protocol:<10} {declared:>8} {covered:>8} {pct:>9}  "
            f"{missed}"
        )
    lines.append(
        f"total: {100.0 * total_coverage(report):.0f}% of declared "
        "automaton edges exercised."
    )
    return "\n".join(lines)
