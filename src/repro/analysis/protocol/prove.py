"""KHZ202: static proofs of the race detector's core invariants.

``races.py`` checks CREW single-writer and write-token conservation
*dynamically*, schedule by schedule.  This pass proves both over the
extracted automaton by abstract interpretation of two counters:

* ``n_excl`` — how many nodes hold a page EXCLUSIVE.  The table
  shows which events increment it (the ones targeting EXCLUSIVE);
  the proof obliges every code path firing such an event to carry a
  *serialization guard* — a ledger acquire, a home transaction, or a
  grant-request round-trip — so the increment only happens after the
  single serializing authority drove every other holder out.
* ``n_token`` — outstanding write tokens per page, interpreted over
  the ledger call sites: every ``grant`` (+1) must sit behind an
  ``acquire`` (blocks until 0) in the same flow, every acquire flow
  must restore 0 on failure via ``abort``, and some routed handler
  must perform the ``release`` (−1) that the holder's write-back
  triggers.  Together the counter can never exceed 1 and always
  returns to 0 — conservation.

Obligations that cannot be discharged become KHZ202 findings; the
discharged ones are rendered as a human-readable proof trace in the
report (the acceptance artifact).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionInfo,
    attribute_chain,
    body_walk,
)
from repro.analysis.lint import _Reporter
from repro.analysis.protocol.effects import (
    Guard,
    ModelSlice,
    Summarizer,
    VarFire,
    fire_event_constants,
    resolve_fire_events,
)
from repro.analysis.sources import SourceFile


@dataclass
class Obligation:
    title: str
    discharged: bool
    evidence: List[str] = field(default_factory=list)


@dataclass
class Proof:
    protocol: str
    invariant: str
    obligations: List[Obligation] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return all(o.discharged for o in self.obligations)

    def render(self) -> List[str]:
        mark = "proved" if self.holds else "FAILED"
        lines = [f"KHZ202 {mark}: {self.protocol} — {self.invariant}"]
        for index, ob in enumerate(self.obligations, 1):
            status = "ok" if ob.discharged else "FAIL"
            lines.append(f"  [{index}] {ob.title}  ({status})")
            lines.extend(f"      {e}" for e in ob.evidence)
        lines.append(
            "  ∎" if self.holds else "  => invariant NOT proved"
        )
        return lines


def _sf_for(files: Sequence[SourceFile], path: str) -> SourceFile:
    for sf in files:
        if sf.path == path:
            return sf
    raise KeyError(path)


def _fire_sites_for_event(
    graph: CallGraph, summarizer: Summarizer, ms: ModelSlice,
    event: str,
) -> List[Tuple[FunctionInfo, int, List[FunctionInfo]]]:
    """Every slice site that can fire ``event``: (function, line,
    caller-chain context for the guard search)."""
    sites: List[Tuple[FunctionInfo, int, List[FunctionInfo]]] = []
    for key in sorted(ms.keys):
        fn = graph.functions.get(key)
        if fn is None:
            continue
        for node in body_walk(fn.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "fire"
                    and "pages" in (attribute_chain(node.func) or [])
                    and len(node.args) >= 2):
                continue
            constants = fire_event_constants(node.args[1])
            if constants is not None:
                if event in constants:
                    sites.append((fn, node.lineno, [fn]))
                continue
            if not isinstance(node.args[1], ast.Name):
                continue
            vf = VarFire(fn_key=fn.key, path=fn.sf.path,
                         line=node.lineno,
                         var_name=node.args[1].id)
            hits = resolve_fire_events(graph, vf, ms.keys) or []
            for hit_event, chain in hits:
                if hit_event == event:
                    sites.append((fn, node.lineno, chain))
    return sites


def _chain_guard(graph: CallGraph, summarizer: Summarizer,
                 ms: ModelSlice, chain: List[FunctionInfo],
                 depth: int = 0) -> Optional[Guard]:
    """A serialization guard covering every path to this fire chain.

    Looks for guard evidence in any chain function's transitive
    summary; failing that, requires *every* in-slice caller of the
    outermost chain function to be guarded (one unguarded path is
    the bug)."""
    for fn in chain:
        summary = summarizer.summarize(fn, ms.model.class_name)
        if summary.guards:
            return summary.guards[0]
    if depth >= 4:
        return None
    outer = chain[-1]
    callers = [
        caller for caller, _call in graph.callers_of(outer)
        if caller.key in ms.keys and caller.key != outer.key
    ]
    if not callers:
        return None
    guards = [
        _chain_guard(graph, summarizer, ms, [caller], depth + 1)
        for caller in callers
    ]
    if all(g is not None for g in guards):
        return guards[0]
    return None


def _prove_single_writer(graph: CallGraph, summarizer: Summarizer,
                         ms: ModelSlice) -> Proof:
    model = ms.model
    proof = Proof(protocol=model.protocol,
                  invariant="CREW single-writer (n_excl <= 1)")
    declared = model.declared_events
    excl_events = sorted(e for e, s in declared.items()
                         if s == "EXCLUSIVE")
    if not excl_events:
        proof.obligations.append(Obligation(
            title="no transition targets EXCLUSIVE",
            discharged=True,
            evidence=[f"table at {model.path}:{model.line} reaches "
                      f"only {{{', '.join(model.reachable_states)}}}; "
                      "n_excl is identically 0 — vacuously single-"
                      "writer"],
        ))
        return proof
    proof.obligations.append(Obligation(
        title="EXCLUSIVE is entered only by WRITE_GRANT",
        discharged=excl_events == ["WRITE_GRANT"],
        evidence=[f"events targeting EXCLUSIVE: "
                  f"{', '.join(excl_events)} "
                  f"(table at {model.path}:{model.line})"],
    ))
    sites = _fire_sites_for_event(graph, summarizer, ms, "WRITE_GRANT")
    site_ob = Obligation(
        title="every fire(WRITE_GRANT) site increments n_excl only "
              "under a serialization guard",
        discharged=bool(sites),
    )
    for fn, line, chain in sites:
        guard = _chain_guard(graph, summarizer, ms, chain)
        if guard is None:
            site_ob.discharged = False
            site_ob.evidence.append(
                f"{fn.sf.path}:{line} fire(WRITE_GRANT) — NO guard "
                "on some path"
            )
        else:
            site_ob.evidence.append(
                f"{fn.sf.path}:{line} fire(WRITE_GRANT) — guarded by "
                f"{guard.kind} at {guard.path}:{guard.line} "
                f"({guard.detail})"
            )
    proof.obligations.append(site_ob)
    revoke = Obligation(
        title="the granting authority drives n_excl to 0 before any "
              "increment (revocation / token serialization)",
        discharged=False,
    )
    if ms.full.reaches("claim_for_writer"):
        revoke.discharged = True
        revoke.evidence.append(
            "home grant goes through DirectoryCoherence."
            "claim_for_writer: victims are invalidated and the old "
            "owner revoked under one home transaction"
        )
    if ms.full.reaches("serve_token_grants"):
        revoke.discharged = True
        revoke.evidence.append(
            "write grants go through serve_token_grants: "
            "ledger.acquire blocks until the previous holder's "
            "release, so grants are totally ordered"
        )
    if not revoke.discharged:
        revoke.evidence.append(
            "neither claim_for_writer nor serve_token_grants is "
            "reachable — nothing demotes the previous EXCLUSIVE "
            "holder"
        )
    proof.obligations.append(revoke)
    return proof


def _functions_with_op(graph: CallGraph, ms: ModelSlice,
                       op: str) -> List[Tuple[FunctionInfo, int]]:
    out = []
    for key in sorted(ms.keys):
        fn = graph.functions.get(key)
        if fn is None:
            continue
        for node in body_walk(fn.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == op
                    and "ledger" in (attribute_chain(node.func) or [])):
                out.append((fn, node.lineno))
                break
    return out


def _prove_token_conservation(graph: CallGraph, summarizer: Summarizer,
                              ms: ModelSlice) -> Proof:
    model = ms.model
    proof = Proof(protocol=model.protocol,
                  invariant="write-token conservation (n_token "
                            "returns to 0 on every flow)")
    ops = ms.full.ledger_ops
    if not ops:
        proof.obligations.append(Obligation(
            title="no write-token traffic",
            discharged=True,
            evidence=["the slice performs no ledger operations; "
                      "n_token is identically 0 — vacuously "
                      "conserved"],
        ))
        return proof
    grant_fns = _functions_with_op(graph, ms, "grant")
    ob = Obligation(
        title="every ledger.grant (+1) sits behind a blocking "
              "ledger.acquire in the same flow",
        discharged=True,
    )
    for fn, line in grant_fns:
        has_acquire = any(
            g_line < line for g_fn, g_line
            in _functions_with_op(graph, ms, "acquire")
            if g_fn.key == fn.key
        )
        ob.evidence.append(
            f"{fn.sf.path}:{line} ledger.grant — "
            + ("preceded by ledger.acquire in "
               f"{fn.qualname}" if has_acquire
               else "NO acquire precedes it")
        )
        ob.discharged = ob.discharged and has_acquire
    proof.obligations.append(ob)
    acquire_fns = _functions_with_op(graph, ms, "acquire")
    abort_ob = Obligation(
        title="every acquire flow restores n_token = 0 on failure "
              "(ledger.abort reachable)",
        discharged=True,
    )
    abort_keys = {fn.key for fn, _ in _functions_with_op(graph, ms,
                                                         "abort")}
    for fn, line in acquire_fns:
        has_abort = fn.key in abort_keys
        abort_ob.evidence.append(
            f"{fn.sf.path}:{line} ledger.acquire — "
            + (f"failure paths abort in {fn.qualname}" if has_abort
               else "NO abort in the same flow")
        )
        abort_ob.discharged = abort_ob.discharged and has_abort
    proof.obligations.append(abort_ob)
    release_ob = Obligation(
        title="a routed handler performs the release (−1) the "
              "holder's write-back triggers",
        discharged=False,
    )
    for handler_name, (fn, summary) in sorted(ms.handlers.items()):
        sites = summary.ledger_ops.get("release")
        if sites:
            path, line = sites[0]
            release_ob.discharged = True
            release_ob.evidence.append(
                f"{handler_name}() releases the token at "
                f"{path}:{line}"
            )
    if not release_ob.discharged:
        release_ob.evidence.append(
            "tokens are granted but no routed handler ever releases "
            "one — the counter can only grow"
        )
    proof.obligations.append(release_ob)
    return proof


def prove_invariants(graph: CallGraph, summarizer: Summarizer,
                     slices: Sequence[ModelSlice],
                     files: Sequence[SourceFile],
                     reporter: _Reporter) -> List[Proof]:
    """KHZ202 over every model; failed obligations become findings."""
    proofs: List[Proof] = []
    for ms in slices:
        for proof in (
            _prove_single_writer(graph, summarizer, ms),
            _prove_token_conservation(graph, summarizer, ms),
        ):
            proofs.append(proof)
            if proof.holds:
                continue
            sf = _sf_for(files, ms.model.path)
            for ob in proof.obligations:
                if ob.discharged:
                    continue
                reporter.flag(
                    sf, ms.model.line, "KHZ202", "unproved-invariant",
                    f"{ms.model.protocol}: cannot prove "
                    f"{proof.invariant}: {ob.title} — "
                    + "; ".join(ob.evidence),
                )
    return proofs
