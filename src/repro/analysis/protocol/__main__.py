"""CLI driver: ``python -m repro.analysis.protocol [paths...]``.

Exit status 1 when any finding survives suppression or an invariant
proof fails — the CI gate.

``--mutate drop-transition`` deletes the INVALIDATE entry from
crew's ``TRANSITIONS`` table in an in-memory copy before verifying:
the routed invalidation handler still fires the event, so KHZ203
must flag the now-undeclared state change (and KHZ201 the dead
route).  CI runs the verifier twice — once clean, once negated with
the mutation — so a verifier gone blind trips the gate, mirroring
the flow analyzer's descending-acquire self-check.

``--edges-out`` writes the KHZ204 edge list as JSON for the
conformance suite (and anything else) to diff coverage against.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import sources
from repro.analysis.protocol import verify
from repro.analysis.protocol.coverage import edge_report
from repro.analysis.protocol.report import render_json, render_text
from repro.analysis.sources import SourceFile

MUTATIONS = {
    "drop-transition": {
        "file": "consistency/crew.py",
        "needle": "        PageEvent.INVALIDATE: LocalPageState."
                  "INVALID,\n",
        "replacement": "",
    },
}


def _apply_mutation(files: List[SourceFile], name: str) -> None:
    spec = MUTATIONS[name]
    for index, sf in enumerate(files):
        if not sf.path.endswith(spec["file"]):
            continue
        if spec["needle"] not in sf.source:
            raise SystemExit(
                f"mutation {name}: needle {spec['needle']!r} not found "
                f"in {sf.path}; the mutation target moved — update "
                "MUTATIONS"
            )
        mutated = sf.source.replace(spec["needle"], spec["replacement"],
                                    1)
        files[index] = SourceFile.parse(sf.path, mutated)
        return
    raise SystemExit(
        f"mutation {name}: no analyzed file ends with {spec['file']!r}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.protocol",
        description="static consistency-automaton verification "
                    "(KHZ201-KHZ204)",
    )
    parser.add_argument("paths", nargs="*", default=["src/"],
                        help="files or directories to verify "
                             "(default: src/)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt")
    parser.add_argument("--out", default=None,
                        help="write the report to a file as well as "
                             "stdout summary")
    parser.add_argument("--edges-out", default=None,
                        help="write the KHZ204 automaton edge list "
                             "as JSON")
    parser.add_argument("--mutate", choices=sorted(MUTATIONS),
                        default=None,
                        help="seed a known bug before verifying (the "
                             "negated CI self-check)")
    args = parser.parse_args(argv)

    files = sources.collect(args.paths or ["src/"])
    if args.mutate:
        _apply_mutation(files, args.mutate)
    findings, models, proofs = verify(files)

    if args.edges_out:
        with open(args.edges_out, "w", encoding="utf-8") as handle:
            json.dump(edge_report(models), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")

    if args.fmt == "json":
        report = render_json(findings, models, proofs, len(files))
    else:
        report = render_text(findings, models, proofs, len(files))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(
            f"repro.analysis.protocol: {len(files)} file(s), "
            f"{len(models)} protocol(s), {len(findings)} finding(s) "
            f"-> {args.out}"
        )
    else:
        print(report)
    failed_proofs = any(not proof.holds for proof in proofs)
    return 1 if (findings or failed_proofs) else 0


if __name__ == "__main__":
    sys.exit(main())
