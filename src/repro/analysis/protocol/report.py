"""Report emission for the protocol verifier: text and SARIF JSON.

Same SARIF 2.1.0 shape as the flow analyzer's report so CI uploads
both as artifacts of the same kind; the verifier additionally embeds
its KHZ202 proof traces and the KHZ204 edge lists under the run's
``properties`` (SARIF's extension point), so the proof the
acceptance criteria ask for ships inside the machine-readable
artifact too.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.lint import Finding
from repro.analysis.protocol.coverage import edge_report
from repro.analysis.protocol.model import ProtocolModel
from repro.analysis.protocol.prove import Proof

RULES: Dict[str, Dict[str, str]] = {
    "KHZ201": {
        "name": "transition-completeness",
        "shortDescription": "every routed (protocol, MessageType) "
                            "pair must transition, nak, or carry an "
                            "annotated absorb; every fired event "
                            "must be declared and every declared "
                            "transition reachable",
    },
    "KHZ202": {
        "name": "invariant-proof",
        "shortDescription": "CREW single-writer and write-token "
                            "conservation must be statically "
                            "provable over the extracted automaton",
    },
    "KHZ203": {
        "name": "engine-contract",
        "shortDescription": "cm_dispatch handlers may only drive "
                            "engine primitives consistent with the "
                            "declared transition table",
    },
    "KHZ204": {
        "name": "model-coverage",
        "shortDescription": "the conformance matrix must exercise "
                            "the declared automaton edge list",
    },
}


def _summary_line(file_count: int, models: Sequence[ProtocolModel],
                  findings: Sequence[Finding]) -> str:
    return (
        f"repro.analysis.protocol: {file_count} file(s), "
        f"{len(models)} protocol(s), {len(findings)} finding(s)"
    )


def render_text(findings: Sequence[Finding],
                models: Sequence[ProtocolModel],
                proofs: Sequence[Proof],
                file_count: int) -> str:
    lines: List[str] = [finding.render() for finding in findings]
    for model in models:
        events = ", ".join(
            f"{t.event}->{t.target}" for t in model.transitions
        )
        lines.append(
            f"{model.protocol} ({model.class_name}): states "
            f"{{{', '.join(model.reachable_states)}}}; {events}"
        )
    for proof in proofs:
        lines.extend(proof.render())
    lines.append(_summary_line(file_count, models, findings))
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                models: Sequence[ProtocolModel],
                proofs: Sequence[Proof],
                file_count: int) -> str:
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {"startLine": finding.line},
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "version": "2.1.0",
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis.protocol",
                        "informationUri":
                            "docs/analysis.md#layer-5-protocol-"
                            "verification",
                        "rules": [
                            {
                                "id": rule_id,
                                "name": meta["name"],
                                "shortDescription": {
                                    "text": meta["shortDescription"]
                                },
                            }
                            for rule_id, meta in sorted(RULES.items())
                        ],
                    }
                },
                "properties": {
                    "fileCount": file_count,
                    "automata": edge_report(models),
                    "proofs": {
                        f"{proof.protocol}/{proof.invariant}": {
                            "holds": proof.holds,
                            "trace": proof.render(),
                        }
                        for proof in proofs
                    },
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
