"""repro.analysis.protocol — static verification of the CM automata.

Layer 5 of the correctness stack: above the per-file AST linter,
race detector, schedule explorer, and whole-program flow analyzer
sits a *protocol verifier* that never runs the system at all.  It
rebuilds each consistency manager's per-page automaton from two
literal, KHZ013-fenced surfaces — the CM's ``TRANSITIONS`` table and
``MessageRouter.wire``'s ``cm_dispatch`` registrations — then checks
the model, not the execution:

* KHZ201 (slugs ``absorb`` / ``undeclared-event`` /
  ``unreachable-transition`` / ``dynamic-event`` / ``static-table``)
  — transition completeness: no routed message can be silently
  dropped, no fired event can be undeclared, no declared transition
  can be dead.
* KHZ202 (slug ``unproved-invariant``) — abstract-interpretation
  proofs of CREW single-writer and write-token conservation, with a
  human-readable proof trace in the report.
* KHZ203 (slugs ``undeclared-transition`` / ``token-without-grant``
  / ``raw-page-state``) — engine-contract conformance for handlers
  reachable from ``cm_dispatch``.
* KHZ204 — the automaton edge list the conformance matrix measures
  its coverage against (``repro.analysis.protocol.coverage``).

Run it as ``python -m repro.analysis.protocol src/``.  Findings
honor the same ``# khz: allow-<slug>(reason)`` suppressions as the
linter, and ``--format json`` emits a SARIF-shaped report with the
proofs and edge lists embedded.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.lint import Finding, _Reporter
from repro.analysis.protocol.effects import ModelSlice, Summarizer, build_slice
from repro.analysis.protocol.model import (
    ProtocolModel,
    Route,
    extract_models,
    extract_routes,
)
from repro.analysis.protocol.prove import Proof, prove_invariants
from repro.analysis.protocol.rules import (
    check_completeness,
    check_engine_contract,
)
from repro.analysis.sources import SourceFile

__all__ = ["verify", "Finding", "ProtocolModel", "Proof", "Route"]


def verify(
    files: Sequence[SourceFile],
) -> Tuple[List[Finding], List[ProtocolModel], List[Proof]]:
    """Extract every CM automaton from ``files`` and verify it."""
    graph = CallGraph(files)
    summarizer = Summarizer(graph)
    models = extract_models(graph)
    routes = extract_routes(graph)
    slices: List[ModelSlice] = [
        build_slice(graph, summarizer, model, routes)
        for model in models
    ]
    reporter = _Reporter()
    check_completeness(graph, slices, routes, files, reporter)
    check_engine_contract(graph, slices, routes, files, reporter)
    proofs = prove_invariants(graph, summarizer, slices, files,
                              reporter)
    reporter.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return reporter.findings, models, proofs
