"""Per-CM effect summaries over the flow call graph.

Every KHZ20x rule asks the same question about different effects:
*starting from this method of this consistency manager, what can the
code reach?*  :class:`Summarizer` answers it by walking the call
graph in the context of one CM class — virtual dispatch on the
``ConsistencyManager`` family is narrowed to that class's MRO, so
crew's directory traffic is never attributed to release — and
folding what it finds into an :class:`EffectSummary`:

* ``fires``: page-state events driven through ``pages.fire`` (the
  only legal way to move a page between states);
* ``var_fires``: ``fire`` sites whose event is a parameter — the
  table-driven installers — resolved to constants via their in-slice
  callers by :func:`resolve_fire_events`;
* ``naks`` / ``replies``: whether a request can be answered;
* ``ledger_ops``: write-token traffic (KHZ202's counters);
* ``guards``: serialization evidence (ledger acquire, home
  transaction, home grant request) that KHZ202's proofs discharge
  write-grant obligations against;
* ``mutations``: any other observable host effect, which is what
  separates a deliberate one-way absorb from a silent drop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionInfo,
    attribute_chain,
    body_walk,
    map_args,
)
from repro.analysis.protocol.model import CM_BASE, ProtocolModel, Route

#: Host/engine calls that observably change node state without going
#: through ``pages.fire`` — a handler reaching one of these is doing
#: real work, not silently dropping the message.
MUTATION_METHODS = frozenset({
    "store_local_page", "drop_local_page", "mark_clean",
    "record_sharer", "forget_sharer", "set_owner", "take_ownership",
})

#: Message types whose home round-trip grants write access; a reply
#: to one of these is serialization evidence for KHZ202.
GRANT_REQUEST_TYPES = frozenset({"LOCK_REQUEST", "TOKEN_ACQUIRE_BATCH"})

MAX_DEPTH = 10

Site = Tuple[str, int]           # (path, line)


@dataclass(frozen=True)
class Guard:
    """One piece of write-serialization evidence."""

    kind: str                    # ledger-acquire | home-transaction | ...
    path: str
    line: int
    detail: str


@dataclass(frozen=True)
class VarFire:
    """A ``pages.fire(addr, event)`` site with a non-constant event."""

    fn_key: Tuple[str, str]
    path: str
    line: int
    var_name: Optional[str]      # None: not even a plain name


@dataclass
class EffectSummary:
    fires: Dict[str, Site] = field(default_factory=dict)
    var_fires: List[VarFire] = field(default_factory=list)
    naks: List[Site] = field(default_factory=list)
    replies: List[Site] = field(default_factory=list)
    ledger_ops: Dict[str, List[Site]] = field(default_factory=dict)
    guards: List[Guard] = field(default_factory=list)
    mutations: List[Site] = field(default_factory=list)
    reached: Set[Tuple[str, str]] = field(default_factory=set)

    def merge(self, other: "EffectSummary") -> None:
        for event, site in other.fires.items():
            self.fires.setdefault(event, site)
        self.var_fires.extend(
            v for v in other.var_fires if v not in self.var_fires
        )
        self.naks.extend(s for s in other.naks if s not in self.naks)
        self.replies.extend(s for s in other.replies
                            if s not in self.replies)
        for op, sites in other.ledger_ops.items():
            known = self.ledger_ops.setdefault(op, [])
            known.extend(s for s in sites if s not in known)
        self.guards.extend(g for g in other.guards
                           if g not in self.guards)
        self.mutations.extend(s for s in other.mutations
                              if s not in self.mutations)
        self.reached |= other.reached

    def reaches(self, func_name: str) -> bool:
        return any(qual.split(".")[-1] == func_name
                   for _, qual in self.reached)


def fire_event_constants(expr: ast.expr) -> Optional[List[str]]:
    """Constant events an event argument can evaluate to, if literal."""
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "PageEvent"):
        return [expr.attr]
    if isinstance(expr, ast.IfExp):
        branches = []
        for branch in (expr.body, expr.orelse):
            sub = fire_event_constants(branch)
            if sub is None:
                return None
            branches.extend(sub)
        return branches
    return None


class Summarizer:
    """Context-narrowed transitive effect summaries, cached per
    (function, CM class)."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._cache: Dict[Tuple[Tuple[str, str], str], EffectSummary] = {}
        self._cm_family = graph.subclasses(CM_BASE) | {CM_BASE}

    # -- dispatch narrowing ---------------------------------------------

    def _mro_order(self, cm_class: str) -> List[str]:
        """Subclass-first linearization (good enough for this
        single-inheritance codebase)."""
        out: List[str] = []
        frontier = [cm_class]
        while frontier:
            name = frontier.pop(0)
            if name in out:
                continue
            out.append(name)
            for ci in self.graph.class_infos(name):
                frontier.extend(ci.bases)
        return out

    def _mro_names(self, cm_class: str) -> Set[str]:
        return set(self._mro_order(cm_class))

    def _narrow(self, hits: Sequence[FunctionInfo],
                cm_class: str) -> List[FunctionInfo]:
        """Drop sibling-CM overrides when resolving in ``cm_class``
        context; keep the MRO-nearest definition."""
        family_hits = [h for h in hits if h.cls is not None
                       and h.cls.name in self._cm_family]
        if not family_hits:
            return list(hits)
        mro = self._mro_names(cm_class)
        in_mro = [h for h in family_hits if h.cls.name in mro]
        others = [h for h in hits if h.cls is None
                  or h.cls.name not in self._cm_family]
        if in_mro:
            # Prefer the subclass override over the base default.
            chosen = [h for h in in_mro if h.cls.name == cm_class]
            return (chosen or in_mro[:1]) + others
        return others

    # -- summarization ---------------------------------------------------

    def summarize(self, fn: FunctionInfo, cm_class: str,
                  _depth: int = 0) -> EffectSummary:
        key = (fn.key, cm_class)
        if key in self._cache:
            return self._cache[key]
        summary = EffectSummary()
        summary.reached.add(fn.key)
        # Break cycles: an in-progress function contributes what has
        # been folded in so far (its direct effects land below).
        self._cache[key] = summary
        if _depth > MAX_DEPTH:
            return summary
        for node in body_walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            self._direct_effects(summary, fn, node)
            for callee in self._narrow(
                    self.graph.resolve_call(node, fn), cm_class):
                if callee.key == fn.key:
                    continue
                summary.merge(
                    self.summarize(callee, cm_class, _depth + 1)
                )
        return summary

    def _direct_effects(self, summary: EffectSummary, fn: FunctionInfo,
                        call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        chain = attribute_chain(func) or []
        site: Site = (fn.sf.path, call.lineno)
        attr = func.attr
        if attr == "fire" and "pages" in chain and len(call.args) >= 2:
            events = fire_event_constants(call.args[1])
            if events is not None:
                for event in events:
                    summary.fires.setdefault(event, site)
            else:
                var = (call.args[1].id
                       if isinstance(call.args[1], ast.Name) else None)
                vf = VarFire(fn_key=fn.key, path=fn.sf.path,
                             line=call.lineno, var_name=var)
                if vf not in summary.var_fires:
                    summary.var_fires.append(vf)
            return
        if attr == "drop" and "pages" in chain:
            summary.mutations.append(site)
            return
        if attr == "nak":
            summary.naks.append(site)
            return
        if attr == "reply":
            summary.replies.append(site)
            return
        if attr in ("acquire", "grant", "release", "abort") \
                and "ledger" in chain:
            summary.ledger_ops.setdefault(attr, []).append(site)
            if attr == "acquire":
                summary.guards.append(Guard(
                    "ledger-acquire", fn.sf.path, call.lineno,
                    "CopysetLedger.acquire blocks until the write "
                    "token is free",
                ))
            return
        if attr == "run" and "home" in chain:
            summary.guards.append(Guard(
                "home-transaction", fn.sf.path, call.lineno,
                "HomeTransactions.run serializes grants per page",
            ))
            return
        # Any call sending a grant-class request (request_home, or a
        # CM's own wrapper around it) is serialization evidence: write
        # access only arrives as the serializing home's reply.
        for arg in call.args:
            if (isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "MessageType"
                    and arg.attr in GRANT_REQUEST_TYPES):
                summary.guards.append(Guard(
                    "home-grant-reply", fn.sf.path, call.lineno,
                    f"write access arrives as a MessageType."
                    f"{arg.attr} reply from the serializing home",
                ))
                break
        if attr in MUTATION_METHODS:
            summary.mutations.append(site)


def resolve_fire_events(
    graph: CallGraph, site: VarFire, slice_keys: Set[Tuple[str, str]],
) -> Optional[List[Tuple[str, List[FunctionInfo]]]]:
    """Constant events a variable-event ``fire`` site can carry.

    Walks in-slice callers mapping arguments onto the event
    parameter; returns ``(event, caller_chain)`` pairs — the chain is
    the guard-search context for KHZ202 — or ``None`` when any path
    stays unresolvable (a KHZ201 finding: the automaton input is no
    longer static).
    """
    fn = graph.functions.get(site.fn_key)
    if fn is None or site.var_name is None:
        return None
    out: List[Tuple[str, List[FunctionInfo]]] = []

    def walk(target: FunctionInfo, var: str,
             chain: List[FunctionInfo], depth: int) -> bool:
        if depth > 5:
            return False
        callers = [
            (caller, call) for caller, call in graph.callers_of(target)
            if caller.key in slice_keys and caller.key != target.key
        ]
        if not callers:
            return False
        ok = True
        for caller, call in callers:
            arg = map_args(call, target).get(var)
            if arg is None:
                ok = False
                continue
            events = fire_event_constants(arg)
            if events is not None:
                for event in events:
                    out.append((event, chain + [caller]))
                continue
            if isinstance(arg, ast.Name):
                if not walk(caller, arg.id, chain + [caller], depth + 1):
                    ok = False
                continue
            ok = False
        return ok

    if not walk(fn, site.var_name, [fn], 0):
        return None
    return out


@dataclass
class ModelSlice:
    """Everything the rules need about one CM: its model, the routed
    handler summaries, and the union summary over every method."""

    model: ProtocolModel
    handlers: Dict[str, Tuple[FunctionInfo, EffectSummary]]
    full: EffectSummary
    keys: Set[Tuple[str, str]]

    def resolved_fires(self, graph: CallGraph,
                       summary: EffectSummary
                       ) -> Tuple[Dict[str, Site], List[VarFire]]:
        """``summary.fires`` plus var-fire instantiations; unresolved
        sites come back separately."""
        fires = dict(summary.fires)
        unresolved: List[VarFire] = []
        for vf in summary.var_fires:
            hits = resolve_fire_events(graph, vf, self.keys)
            if hits is None:
                unresolved.append(vf)
                continue
            for event, _chain in hits:
                fires.setdefault(event, (vf.path, vf.line))
        return fires, unresolved


def build_slice(graph: CallGraph, summarizer: Summarizer,
                model: ProtocolModel,
                routes: Sequence[Route]) -> ModelSlice:
    handlers: Dict[str, Tuple[FunctionInfo, EffectSummary]] = {}
    full = EffectSummary()
    for route in routes:
        hits = graph.lookup_method(model.class_name, route.handler,
                                   virtual=False)
        if not hits:
            continue
        fn = hits[0]
        summary = summarizer.summarize(fn, model.class_name)
        handlers[route.handler] = (fn, summary)
        full.merge(summary)
    # Client-side paths (acquire/release/evict/tick/...) complete the
    # slice: KHZ201's undeclared-event check covers both sides.
    seen: Set[str] = set()
    for name in summarizer._mro_order(model.class_name):
        for ci in graph.class_infos(name):
            for method_name, fn in ci.methods.items():
                if method_name in seen:
                    continue   # subclass override already folded in
                seen.add(method_name)
                full.merge(summarizer.summarize(fn, model.class_name))
    return ModelSlice(model=model, handlers=handlers, full=full,
                      keys=set(full.reached))
