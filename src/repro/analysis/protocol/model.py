"""Static extraction of each CM's per-page protocol automaton.

Two literal surfaces feed the verifier, both CI-fenced by lint rule
KHZ013 so they stay statically extractable:

* every :class:`~repro.consistency.manager.ConsistencyManager`
  subclass declares a literal ``TRANSITIONS`` dict —
  ``{PageEvent.X: LocalPageState.Y, ...}`` — which *is* the
  protocol's automaton (states x events);
* ``MessageRouter.wire`` registers the CM-facing dispatch surface as
  literal ``reg(MessageType.X, self.cm_dispatch("handle_y"), ...)``
  calls; ``dedup=True`` marks request-class routes (the sender blocks
  on a reply), its absence marks one-way notifications.

The product of the two — which message types can reach which handler
under which declared transitions — is the model every KHZ20x rule
checks against.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.flow.callgraph import CallGraph, ClassInfo

#: States every automaton starts from: a page nobody fetched yet.
INITIAL_STATE = "INVALID"

#: The base class whose subclasses are protocol policy modules, and
#: the router class whose ``wire`` method is the dispatch surface.
CM_BASE = "ConsistencyManager"
ROUTER_CLASS = "MessageRouter"


@dataclass(frozen=True)
class Transition:
    """One declared ``PageEvent -> LocalPageState`` table entry."""

    event: str
    target: str
    line: int


@dataclass(frozen=True)
class Route:
    """One ``reg(MessageType.X, cm_dispatch("handle_y"), ...)`` call."""

    message_type: str
    handler: str
    dedup: bool          # request-class: the sender blocks on a reply
    line: int
    path: str


@dataclass
class ProtocolModel:
    """The statically recovered automaton of one consistency manager."""

    class_name: str
    protocol: str
    path: str
    line: int
    transitions: List[Transition] = field(default_factory=list)
    #: Extraction problems (non-literal table entries); reported as
    #: findings by the caller because they break every later rule.
    extraction_errors: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def declared_events(self) -> Dict[str, str]:
        return {t.event: t.target for t in self.transitions}

    @property
    def reachable_states(self) -> List[str]:
        """States reachable from INVALID under the declared table.

        ``fire`` consults only the event (the table is total per
        event), so one declared event reaches its target from *any*
        state; reachability is INITIAL plus every target.
        """
        out = [INITIAL_STATE]
        for t in self.transitions:
            if t.target not in out:
                out.append(t.target)
        return out


def _enum_attr(node: ast.expr, enum_name: str) -> Optional[str]:
    """``PageEvent.X`` -> ``"X"`` when the value chain names the enum."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == enum_name):
        return node.attr
    return None


def _extract_table(model: ProtocolModel, assign: ast.Assign) -> None:
    value = assign.value
    if not isinstance(value, ast.Dict):
        model.extraction_errors.append(
            (assign.lineno,
             "TRANSITIONS must be a literal dict (KHZ013): found "
             f"{type(value).__name__}")
        )
        return
    for key, val in zip(value.keys, value.values):
        if key is None:   # ``{**other}`` unpacking
            model.extraction_errors.append(
                (value.lineno, "TRANSITIONS must not unpack another "
                               "mapping (KHZ013)")
            )
            continue
        event = _enum_attr(key, "PageEvent")
        target = _enum_attr(val, "LocalPageState")
        if event is None or target is None:
            model.extraction_errors.append(
                (key.lineno,
                 "TRANSITIONS entries must be literal "
                 "PageEvent.X: LocalPageState.Y pairs (KHZ013)")
            )
            continue
        model.transitions.append(
            Transition(event=event, target=target, line=key.lineno)
        )


def _literal_protocol_name(ci: ClassInfo) -> Optional[Tuple[str, int]]:
    for stmt in ci.node.body:
        if (isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "protocol_name"
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
                and stmt.value.value):
            return stmt.value.value, stmt.lineno
    return None


def extract_models(graph: CallGraph) -> List[ProtocolModel]:
    """One :class:`ProtocolModel` per registered CM subclass."""
    models: List[ProtocolModel] = []
    for name in sorted(graph.subclasses(CM_BASE)):
        for ci in graph.class_infos(name):
            named = _literal_protocol_name(ci)
            if named is None:
                continue   # abstract intermediates never register
            protocol, line = named
            model = ProtocolModel(
                class_name=name, protocol=protocol,
                path=ci.sf.path, line=ci.node.lineno,
            )
            for stmt in ci.node.body:
                if (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.targets[0].id == "TRANSITIONS"):
                    _extract_table(model, stmt)
            models.append(model)
    models.sort(key=lambda m: m.protocol)
    return models


def extract_routes(graph: CallGraph) -> List[Route]:
    """The CM dispatch surface from ``MessageRouter.wire``."""
    routes: List[Route] = []
    for ci in graph.class_infos(ROUTER_CLASS):
        wire = ci.methods.get("wire")
        if wire is None:
            continue
        for node in ast.walk(wire.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "reg"):
                continue
            keywords = {kw.arg: kw.value for kw in node.keywords}
            cm_kw = keywords.get("cm")
            if not (isinstance(cm_kw, ast.Constant) and cm_kw.value is True):
                continue
            if len(node.args) < 2:
                continue
            message_type = _enum_attr(node.args[0], "MessageType")
            handler = None
            dispatch = node.args[1]
            if (isinstance(dispatch, ast.Call)
                    and isinstance(dispatch.func, ast.Attribute)
                    and dispatch.func.attr == "cm_dispatch"
                    and dispatch.args
                    and isinstance(dispatch.args[0], ast.Constant)
                    and isinstance(dispatch.args[0].value, str)):
                handler = dispatch.args[0].value
            if message_type is None or handler is None:
                continue   # KHZ013 flags non-literal registrations
            dedup_kw = keywords.get("dedup")
            dedup = (isinstance(dedup_kw, ast.Constant)
                     and dedup_kw.value is True)
            routes.append(Route(
                message_type=message_type, handler=handler,
                dedup=dedup, line=node.lineno, path=ci.sf.path,
            ))
    routes.sort(key=lambda r: r.line)
    return routes
