"""KHZ201 transition completeness and KHZ203 engine conformance.

KHZ201 asks the model-level question PR 7 answered the hard way:
*can this CM receive a routed message and do nothing?*  Every
(protocol, MessageType) pair must answer a request (reply or nak on
some path), give one-way traffic an observable effect, fire only
declared events on the client side, and use every declared
transition somewhere.  A deliberate absorb must say so:
``# khz: allow-absorb(reason)`` on the handler's ``def`` line.

KHZ203 extends KHZ007's "no raw wire in policy modules" to "no
undeclared state change": a handler reachable from ``cm_dispatch``
may only fire events its own ``TRANSITIONS`` table declares, may not
move write tokens unless the table has a ``WRITE_GRANT`` state to
account for them, and may never bypass the state machine by writing
``page_state`` entries directly.
"""

from __future__ import annotations

import ast
from typing import Dict, Sequence, Tuple

from repro.analysis.flow.callgraph import (
    CallGraph,
    attribute_chain,
    body_walk,
)
from repro.analysis.lint import _Reporter
from repro.analysis.protocol.effects import EffectSummary, ModelSlice
from repro.analysis.protocol.model import CM_BASE, Route
from repro.analysis.sources import SourceFile


def _sf_for(files: Sequence[SourceFile], path: str) -> SourceFile:
    for sf in files:
        if sf.path == path:
            return sf
    raise KeyError(path)   # every slice function came from ``files``


def _nak_only_default(fn, summary: EffectSummary) -> bool:
    """True for the base class's catch-all handlers: they nak
    "unhandled" and do nothing else."""
    if fn.cls is None or fn.cls.name != CM_BASE:
        return False
    return bool(summary.naks) and not (
        summary.replies or summary.mutations
        or summary.fires or summary.var_fires
    )


def _sent_types(graph: CallGraph, ms: ModelSlice,
                routed: set) -> Dict[str, Tuple[str, int]]:
    """Routed MessageTypes this CM's own slice puts on the wire."""
    out: Dict[str, Tuple[str, int]] = {}
    for key in sorted(ms.keys):
        fn = graph.functions.get(key)
        if fn is None:
            continue
        for node in body_walk(fn.node):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "MessageType"
                    and node.attr in routed):
                out.setdefault(node.attr, (fn.sf.path, node.lineno))
    return out


def check_completeness(graph: CallGraph, slices: Sequence[ModelSlice],
                       routes: Sequence[Route],
                       files: Sequence[SourceFile],
                       reporter: _Reporter) -> None:
    """KHZ201 over every (CM, route) pair and the full CM slice."""
    for ms in slices:
        model = ms.model
        sf = _sf_for(files, model.path)
        declared = model.declared_events
        for line, message in model.extraction_errors:
            reporter.flag(sf, line, "KHZ201", "static-table", message)

        handler_events: set = set()
        flagged_dynamic: set = set()
        for route in routes:
            entry = ms.handlers.get(route.handler)
            if entry is None:
                reporter.flag(
                    sf, model.line, "KHZ201", "absorb",
                    f"{model.protocol}: MessageType.{route.message_type} "
                    f"routes to {route.handler}() but no definition is "
                    f"reachable on {model.class_name}",
                )
                continue
            fn, summary = entry
            fires, unresolved = ms.resolved_fires(graph, summary)
            handler_events |= set(fires)
            handler_sf = _sf_for(files, fn.sf.path)
            for vf in unresolved:
                if (vf.path, vf.line) in flagged_dynamic:
                    continue
                flagged_dynamic.add((vf.path, vf.line))
                reporter.flag(
                    _sf_for(files, vf.path), vf.line, "KHZ201",
                    "dynamic-event",
                    f"{model.protocol}: cannot statically resolve the "
                    "event fired here — pass a literal PageEvent so the "
                    "automaton stays verifiable",
                )
            if route.dedup:
                if not (summary.replies or summary.naks):
                    reporter.flag(
                        handler_sf, fn.node.lineno, "KHZ201", "absorb",
                        f"{model.protocol}: request MessageType."
                        f"{route.message_type} is absorbed — "
                        f"{route.handler}() reaches no reply and no nak, "
                        "so the sender blocks forever (PR 7 class of "
                        "bug); nak it or annotate allow-absorb",
                    )
            else:
                observable = (
                    set(fires) & set(declared)
                    or summary.naks or summary.replies
                    or summary.mutations
                )
                if not observable:
                    reporter.flag(
                        handler_sf, fn.node.lineno, "KHZ201", "absorb",
                        f"{model.protocol}: one-way MessageType."
                        f"{route.message_type} is silently dropped — "
                        f"{route.handler}() fires no declared transition "
                        "and mutates nothing; annotate allow-absorb if "
                        "that is the design",
                    )

        # A protocol whose own client path sends a message type its
        # home side always naks as "unhandled" can never complete
        # that operation — the nak is explicit, but the pairing is a
        # defect only the model view can see.
        sent = _sent_types(graph, ms,
                           {r.message_type for r in routes})
        for route in routes:
            entry = ms.handlers.get(route.handler)
            if entry is None or route.message_type not in sent:
                continue
            fn, summary = entry
            if _nak_only_default(fn, summary):
                path, line = sent[route.message_type]
                reporter.flag(
                    _sf_for(files, path), line, "KHZ201", "self-nak",
                    f"{model.protocol}: sends MessageType."
                    f"{route.message_type} here but its own "
                    f"{route.handler}() is the base nak-only default "
                    "— the request can never succeed under this "
                    "protocol",
                )

        full_fires, full_unresolved = ms.resolved_fires(graph, ms.full)
        for vf in full_unresolved:
            if (vf.path, vf.line) in flagged_dynamic:
                continue
            flagged_dynamic.add((vf.path, vf.line))
            reporter.flag(
                _sf_for(files, vf.path), vf.line, "KHZ201",
                "dynamic-event",
                f"{model.protocol}: cannot statically resolve the event "
                "fired here — pass a literal PageEvent so the automaton "
                "stays verifiable",
            )
        # Client-side undeclared fires (handlers are KHZ203's half).
        for event, (path, line) in sorted(full_fires.items()):
            if event in declared or event in handler_events:
                continue
            reporter.flag(
                _sf_for(files, path), line, "KHZ201", "undeclared-event",
                f"{model.protocol}: fires PageEvent.{event} which the "
                "TRANSITIONS table does not declare — the fire would "
                "KeyError at runtime",
            )
        # Declared transitions no code path can exercise.
        for transition in model.transitions:
            if transition.event not in full_fires:
                reporter.flag(
                    sf, transition.line, "KHZ201",
                    "unreachable-transition",
                    f"{model.protocol}: declares PageEvent."
                    f"{transition.event} but no client or handler path "
                    "ever fires it — dead table entry or missing logic",
                )


def check_engine_contract(graph: CallGraph,
                          slices: Sequence[ModelSlice],
                          routes: Sequence[Route],
                          files: Sequence[SourceFile],
                          reporter: _Reporter) -> None:
    """KHZ203 over every handler reachable from ``cm_dispatch``."""
    routed: Dict[str, str] = {r.handler: r.message_type for r in routes}
    for ms in slices:
        model = ms.model
        declared = model.declared_events
        for handler_name, (fn, summary) in sorted(ms.handlers.items()):
            fires, _unresolved = ms.resolved_fires(graph, summary)
            for event, (path, line) in sorted(fires.items()):
                if event in declared:
                    continue
                reporter.flag(
                    _sf_for(files, path), line, "KHZ203",
                    "undeclared-transition",
                    f"{model.protocol}: {handler_name}() (MessageType."
                    f"{routed.get(handler_name, '?')}) can fire "
                    f"PageEvent.{event}, which the TRANSITIONS table "
                    "does not declare — undeclared state change",
                )
            if summary.ledger_ops and "WRITE_GRANT" not in declared:
                op, sites = sorted(summary.ledger_ops.items())[0]
                path, line = sites[0]
                reporter.flag(
                    _sf_for(files, path), line, "KHZ203",
                    "token-without-grant",
                    f"{model.protocol}: {handler_name}() moves write "
                    f"tokens (ledger.{op}) but the TRANSITIONS table "
                    "declares no WRITE_GRANT state to account for them",
                )
        # No handler may bypass the machine with a raw state write.
        for key in sorted(
                {k for _fn, s in ms.handlers.values() for k in s.reached}):
            target = graph.functions.get(key)
            if target is None or target.sf.path.endswith("engine/state.py"):
                continue
            for node in body_walk(target.node):
                if not isinstance(node, ast.Assign):
                    continue
                for tgt in node.targets:
                    if not isinstance(tgt, ast.Subscript):
                        continue
                    chain = attribute_chain(tgt.value) or []
                    if "page_state" in chain:
                        reporter.flag(
                            _sf_for(files, target.sf.path),
                            node.lineno, "KHZ203", "raw-page-state",
                            f"{model.protocol}: assigns page_state "
                            "directly instead of going through "
                            "pages.fire — the automaton cannot see "
                            "this state change",
                        )
