"""Twin/diff machinery for write-shared updates.

The classic Munin-style mechanism: a writer keeps a *twin* (pristine
copy) of each page it write-shares, and at release pushes only the
byte ranges that differ; the home applies those runs to its own copy,
so non-overlapping concurrent writes both survive.  Kept independent
of any one protocol so future write-shared or entry-consistency
policies can reuse it.

Zero-copy invariants (see docs/performance.md): a stored page's buffer
is frozen — writers *replace* the buffer, never mutate it in place —
so :meth:`TwinStore.remember` may alias the stored buffer instead of
copying it, and ``twin is current`` proves a page unchanged without
scanning a byte.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Differing pages are scanned per-byte only inside blocks of this
#: size; equal blocks are skipped with one C-level compare.
_SCAN_BLOCK = 64


def compute_diff(twin: Any, current: Any) -> List[Tuple[int, bytes]]:
    """Byte ranges of ``current`` that differ from ``twin``.

    Returns maximal runs as ``(offset, data)`` pairs — the classic
    twin/diff mechanism used by write-shared protocols.  Accepts any
    bytes-like objects and scans them through ``memoryview`` slices:
    identical inputs (or an aliased twin, see the module invariants)
    cost one identity/equality check, and unchanged blocks of a dirty
    page are skipped without per-byte work.
    """
    if twin is current:
        return []
    if len(twin) != len(current):
        return [(0, bytes(current))]  # khz: allow-copy(whole page replaced; the wire item must own its bytes)
    if twin == current:
        return []
    tv, cv = memoryview(twin), memoryview(current)
    runs: List[Tuple[int, bytes]] = []
    start: Optional[int] = None
    n = len(cv)
    i = 0
    while i < n:
        j = min(i + _SCAN_BLOCK, n)
        if tv[i:j] == cv[i:j]:
            if start is not None:
                runs.append((start, bytes(cv[start:i])))  # khz: allow-copy(diff run becomes a wire item and must outlive the scan)
                start = None
            i = j
            continue
        for k in range(i, j):
            if tv[k] != cv[k]:
                if start is None:
                    start = k
            elif start is not None:
                runs.append((start, bytes(cv[start:k])))  # khz: allow-copy(diff run becomes a wire item and must outlive the scan)
                start = None
        i = j
    if start is not None:
        runs.append((start, bytes(cv[start:])))  # khz: allow-copy(diff run becomes a wire item and must outlive the scan)
    return runs


def apply_diff(base: Any, diff: List[Tuple[int, bytes]]) -> bytearray:
    """Apply ``(offset, data)`` runs to ``base``.

    Returns a fresh patched ``bytearray`` the caller owns outright (it
    may be stored directly without another copy; ``base`` itself is
    never mutated).
    """
    page = bytearray(base)
    for offset, data in diff:
        end = offset + len(data)
        if end > len(page):
            page.extend(b"\x00" * (end - len(page)))
        page[offset:end] = data
    return page


class TwinStore:
    """Per-(context, page) twins for write-shared lock ranges."""

    def __init__(self) -> None:
        self._twins: Dict[Tuple[int, int], Any] = {}

    def remember(self, ctx_id: int, page_addr: int, data: Any) -> None:
        """Keep ``data`` as the page's pristine twin.

        The buffer is aliased, not copied: stored page buffers are
        frozen (writers replace them), so the reference *is* a stable
        snapshot — and ``twin is current`` at release proves the page
        untouched for free.
        """
        self._twins[(ctx_id, page_addr)] = data

    def pop(self, ctx_id: int, page_addr: int) -> Optional[Any]:
        return self._twins.pop((ctx_id, page_addr), None)

    def diff_update(self, storage: Any, ctx_id: int,
                    page_addr: int) -> Optional[Dict[str, Any]]:
        """The update-push item for one write-shared release: pop the
        twin, diff it against the current bytes, or None when nothing
        changed (or the page vanished).  A page whose buffer was never
        replaced is a no-op write: no scan, no copy, no push."""
        twin = self.pop(ctx_id, page_addr)
        if twin is None:
            return None
        page = storage.peek(page_addr)
        if page is None:
            return None
        current = page.data
        if current is twin:
            return None   # buffer never replaced: the page is untouched
        diff = compute_diff(twin, current)
        if not diff:
            return None
        return {"page": page_addr, "diff": diff, "release_token": False}
