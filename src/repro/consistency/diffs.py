"""Twin/diff machinery for write-shared updates.

The classic Munin-style mechanism: a writer keeps a *twin* (pristine
copy) of each page it write-shares, and at release pushes only the
byte ranges that differ; the home applies those runs to its own copy,
so non-overlapping concurrent writes both survive.  Kept independent
of any one protocol so future write-shared or entry-consistency
policies can reuse it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


def compute_diff(twin: bytes, current: bytes) -> List[Tuple[int, bytes]]:
    """Byte ranges of ``current`` that differ from ``twin``.

    Returns maximal runs as ``(offset, data)`` pairs — the classic
    twin/diff mechanism used by write-shared protocols.
    """
    if len(twin) != len(current):
        return [(0, current)]
    runs: List[Tuple[int, bytes]] = []
    start: Optional[int] = None
    for i in range(len(current)):
        if twin[i] != current[i]:
            if start is None:
                start = i
        elif start is not None:
            runs.append((start, current[start:i]))
            start = None
    if start is not None:
        runs.append((start, current[start:]))
    return runs


def apply_diff(base: bytes, diff: List[Tuple[int, bytes]]) -> bytes:
    """Apply ``(offset, data)`` runs to ``base``."""
    page = bytearray(base)
    for offset, data in diff:
        end = offset + len(data)
        if end > len(page):
            page.extend(b"\x00" * (end - len(page)))
        page[offset:end] = data
    return bytes(page)


class TwinStore:
    """Per-(context, page) twins for write-shared lock ranges."""

    def __init__(self) -> None:
        self._twins: Dict[Tuple[int, int], bytes] = {}

    def remember(self, ctx_id: int, page_addr: int, data: bytes) -> None:
        self._twins[(ctx_id, page_addr)] = data

    def pop(self, ctx_id: int, page_addr: int) -> Optional[bytes]:
        return self._twins.pop((ctx_id, page_addr), None)

    def diff_update(self, storage: Any, ctx_id: int,
                    page_addr: int) -> Optional[Dict[str, Any]]:
        """The update-push item for one write-shared release: pop the
        twin, diff it against the current bytes, or None when nothing
        changed (or the page vanished)."""
        twin = self.pop(ctx_id, page_addr)
        if twin is None:
            return None
        page = storage.peek(page_addr)
        if page is None:
            return None
        diff = compute_diff(twin, page.data)
        if not diff:
            return None
        return {"page": page_addr, "diff": diff, "release_token": False}
