"""Shared replica-update install path.

Release, eventual, and mobile all apply pushed updates to replica
sites the same way: never under an open local lock context (defer
until unlocked), re-check recency at apply time, record the new
version/stamp, then store the bytes in a background task.  Only the
recency rule and the bookkeeping differ per protocol, so they arrive
as callbacks.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.region import RegionDescriptor

ProtocolGen = Any   # Generator[Future, Any, Any]


def install_replica_update(
    cm: Any,
    desc: RegionDescriptor,
    page_addr: int,
    data: bytes,
    *,
    fresh: Callable[[], bool],
    commit: Callable[[], None],
    require_resident: bool = True,
    op: str = "replica-store",
    on_stored: Optional[Callable[[], None]] = None,
) -> None:
    """Apply a propagated update to the local replica of ``page_addr``.

    ``fresh()`` re-checks recency at apply time (the local copy may
    have advanced while the update waited out a lock context);
    ``commit()`` records the new version/stamp before the store task
    runs; ``on_stored()`` runs after the bytes land.  With
    ``require_resident`` (the home-centred protocols), pages this node
    no longer replicates are ignored.
    """
    host = cm.host

    def apply() -> None:
        if not fresh():
            return   # stale push, already newer locally
        if require_resident and not host.storage.contains(page_addr):
            return   # we no longer replicate this page; ignore
        commit()

        def store() -> ProtocolGen:
            yield from host.store_local_page(
                desc, page_addr, data, dirty=False
            )
            if on_stored is not None:
                on_stored()

        cm.engine.spawn(store(), op)

    if host.lock_table.page_locked(page_addr):
        # Never change a page under an open local context.
        cm.defer_until_unlocked(page_addr, apply)
    else:
        apply()
