"""Per-protocol counters for engine-mediated work.

One :class:`EngineCounters` lives on every :class:`ProtocolEngine`
(one per daemon × protocol).  ``tools/inspect.py`` renders them next
to the latency report so operators can see how much protocol traffic
was coalesced, retried per page, or rolled back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class EngineCounters:
    #: Home-side request transactions spawned through the engine.
    home_transactions: int = 0
    #: Batched (``*_BATCH``) requests sent on behalf of the policy.
    batch_fanouts: int = 0
    #: Pages handed to the background per-page retry fallback after a
    #: batch could not reach its home.
    per_page_fallbacks: int = 0
    #: Multi-page acquires unwound by the data plane after a partial
    #: failure (no page stays pinned).
    rollbacks: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "home_transactions": self.home_transactions,
            "batch_fanouts": self.batch_fanouts,
            "per_page_fallbacks": self.per_page_fallbacks,
            "rollbacks": self.rollbacks,
        }
