"""The consistency protocol engine.

Shared mechanism under the four policy modules (crew, release,
eventual, mobile): every protocol is a thin, declarative layer over
the primitives exported here —

- :class:`PageStateMachine` / :class:`PageEvent` / :class:`LocalPageState`
  — explicit per-protocol MSI transition tables (``engine.state``);
- :class:`KeyedMutex` / :class:`HomeTransactions` — serialised
  home-side directory transactions (``engine.home``);
- :class:`CopysetLedger` — write-token bookkeeping with the
  probe-before-mutex-release ordering built in (``engine.ledger``);
- :class:`BatchPlanner` — group-by-home batching, per-page retry
  fallback, partial-failure error items (``engine.batch``);
- :class:`DirectoryCoherence` — owner/copyset copy movement
  (``engine.directory``);
- :func:`install_replica_update` — the defer-while-locked replica
  install shared by the update-propagating protocols
  (``engine.replicas``);
- :class:`ProtocolEngine` — the wire primitives (request, send,
  reply, NAK, home failover, batch fan-out) that KHZ007 makes the
  only road from consistency code to ``host.rpc`` (``engine.wire``).
"""

from repro.consistency.engine.batch import BatchPlanner
from repro.consistency.engine.counters import EngineCounters
from repro.consistency.engine.directory import DirectoryCoherence
from repro.consistency.engine.home import HomeTransactions, KeyedMutex
from repro.consistency.engine.ledger import CopysetLedger
from repro.consistency.engine.replicas import install_replica_update
from repro.consistency.engine.state import (
    LocalPageState,
    PageEvent,
    PageStateMachine,
)
from repro.consistency.engine.wire import (
    BATCH_REQUESTS,
    WIRE_OPS,
    ProtocolEngine,
    transaction_label,
    typed_denial,
    wire_op,
)

__all__ = [
    "BATCH_REQUESTS",
    "BatchPlanner",
    "CopysetLedger",
    "DirectoryCoherence",
    "EngineCounters",
    "HomeTransactions",
    "KeyedMutex",
    "LocalPageState",
    "PageEvent",
    "PageStateMachine",
    "ProtocolEngine",
    "WIRE_OPS",
    "install_replica_update",
    "transaction_label",
    "typed_denial",
    "wire_op",
]
