"""Write-token and copyset bookkeeping in one place.

The ledger owns the per-page write-token mutex *and* the record of
who holds each token, and it fires the race-detector probes in the
one order that is safe: ``token_released`` strictly before the mutex
release (releasing may resume the next waiter synchronously, and its
``token_granted`` must come after).  ``analysis/invariants.py`` reads
``holders()`` to check token conservation instead of re-deriving it
per protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set

from repro.consistency.engine.home import KeyedMutex
from repro.net.tasks import Future

if TYPE_CHECKING:
    from repro.core.cmhost import CMHost

#: Test-only fault switches for the schedule explorer's mutation proof
#: (``repro.analysis.explore``).  Each name re-introduces a known,
#: previously-fixed ordering bug so the explorer can demonstrate it
#: finds and replays the violation.  Production code never adds to
#: this set; the explorer clears it in a ``finally``.
ACTIVE_MUTATIONS: Set[str] = set()

#: Releases the per-page token mutex *before* clearing the holder
#: record and firing the release probe — the exact bug the detector
#: caught during its own bring-up: the release resumes the next
#: waiter synchronously, so its grant lands while the old holder is
#: still recorded (a double grant, schedule permitting).
MUTATE_EARLY_MUTEX_RELEASE = "early-mutex-release"

KNOWN_MUTATIONS = frozenset({MUTATE_EARLY_MUTEX_RELEASE})


class CopysetLedger:
    """Per-page write tokens plus the holder each was granted to."""

    def __init__(self, host: "CMHost") -> None:
        self.host = host
        self._mutex = KeyedMutex()
        self._holders: Dict[int, int] = {}   # page -> holder node

    def acquire(self, page_addr: int) -> Future:
        """Future resolving when the token mutex is held locally."""
        return self._mutex.acquire(page_addr)

    def grant(self, page_addr: int, holder: int) -> None:
        """Record the token as belonging to ``holder`` (probe fires
        here, so call only after any reply the grant rides on)."""
        self._holders[page_addr] = holder
        if self.host.probe.enabled:
            self.host.probe.token_granted(
                self.host.node_id, page_addr, holder
            )

    def release(self, page_addr: int, holder: int) -> None:
        """Return ``holder``'s token and wake the next waiter."""
        if MUTATE_EARLY_MUTEX_RELEASE in ACTIVE_MUTATIONS:
            self._mutex.release(page_addr)
        self._holders.pop(page_addr, None)
        # Probe before the mutex release: releasing may resume the
        # next waiter synchronously, and its grant event must come
        # after this release event.
        if self.host.probe.enabled:
            self.host.probe.token_released(
                self.host.node_id, page_addr, holder
            )
        if MUTATE_EARLY_MUTEX_RELEASE not in ACTIVE_MUTATIONS:
            self._mutex.release(page_addr)

    def abort(self, page_addr: int) -> None:
        """Give back a mutex acquired for a grant that never happened
        (denied or crashed transaction) — no probe, no holder."""
        self._mutex.release(page_addr)

    def locked(self, page_addr: int) -> bool:
        return self._mutex.locked(page_addr)

    def holders(self) -> Dict[int, int]:
        """Snapshot of page -> holder for the conservation invariant."""
        return dict(self._holders)
