"""Owner/copyset coherence transactions for home-directory protocols.

The mechanism half of a CREW-style grant: fetch the current bytes
(from the local store or the remote owner), demote or revoke the
owner, invalidate the copyset, and wait out local lock contexts.  The
policy half — *when* to invalidate whom — stays in the protocol
module; these helpers only know how to move copies safely.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.consistency.engine.state import LocalPageState, PageEvent
from repro.core.errors import KhazanaError, NotAllocated
from repro.core.locks import LockMode
from repro.core.region import RegionDescriptor
from repro.net.message import MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout
from repro.net.tasks import Future, gather_settled

ProtocolGen = Any   # Generator[Future, Any, Any]


class DirectoryCoherence:
    """Copy-movement transactions run at a page's home node."""

    def __init__(self, engine: Any,
                 policy: Optional[RetryPolicy] = None) -> None:
        self.engine = engine
        self.host = engine.host
        #: RetryPolicy for the constituent RPCs; set by the protocol.
        self.policy = policy

    def wait_local_unlocked(self, page_addr: int,
                            mode: LockMode) -> ProtocolGen:
        """Suspend until no local context conflicts with ``mode``."""
        cm = self.engine.cm
        while self.host.lock_table.conflicts(page_addr, mode):
            gate = Future(label=f"local-unlock:{page_addr:#x}")
            cm.defer_until_unlocked(page_addr, lambda: gate.set_result(None))
            yield gate

    def read_copy(self, desc: RegionDescriptor, entry: Any) -> ProtocolGen:
        """Bytes of the page, fetching from a remote owner if the home
        copy is stale (owner holds it EXCLUSIVE)."""
        cm = self.engine.cm
        me = self.host.node_id
        page_addr = entry.address
        if entry.owner == me or me in entry.sharers:
            # A local write context is mid-modification; the CM
            # "delays granting the locks until the conflict is
            # resolved" (3.3) for remote readers too.
            yield from self.wait_local_unlocked(page_addr, LockMode.READ)
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is not None:
                return data
        if entry.owner is not None and entry.owner != me:
            try:
                reply = yield self.engine.request(
                    entry.owner,
                    MessageType.PAGE_FETCH,
                    {"rid": desc.rid, "page": page_addr, "demote": True},
                    policy=self.policy,
                )
                data = reply.payload["data"]
                yield from self.host.store_local_page(
                    desc, page_addr, data, dirty=False
                )
                entry.record_sharer(me)
                cm.pages.fire(page_addr, PageEvent.READ_FILL)
                return data
            except (RpcTimeout, RemoteError):
                entry.forget_sharer(entry.owner)
        # Fall back to whatever the home has (zero-filled if untouched).
        data = yield from self.host.local_page_bytes(desc, page_addr)
        if data is None:
            raise KhazanaError(
                f"home node lost page {page_addr:#x} and owner is gone"
            )
        entry.owner = me
        entry.record_sharer(me)
        return data

    def take_local_copy(self, desc: RegionDescriptor, page_addr: int,
                        invalidate: bool) -> ProtocolGen:
        """Home surrenders its own copy (waiting out local locks)."""
        yield from self.wait_local_unlocked(page_addr, LockMode.WRITE)
        data = yield from self.host.local_page_bytes(desc, page_addr)
        if data is None:
            raise KhazanaError(f"home has no copy of page {page_addr:#x}")
        if invalidate:
            self.host.drop_local_page(page_addr)
            self.engine.cm.pages.fire(page_addr, PageEvent.INVALIDATE)
        return data

    def revoke_owner(self, desc: RegionDescriptor, entry: Any,
                     page_addr: int, owner: int) -> ProtocolGen:
        try:
            reply = yield self.engine.request(
                owner,
                MessageType.PAGE_FETCH,
                {"rid": desc.rid, "page": page_addr, "revoke": True},
                policy=self.policy,
            )
            return reply.payload["data"]
        except (RpcTimeout, RemoteError):
            entry.forget_sharer(owner)
            return None

    def invalidate_nodes(self, desc: RegionDescriptor, entry: Any,
                         page_addr: int, victims: List[int]) -> ProtocolGen:
        cm = self.engine.cm
        me = self.host.node_id
        requests = []
        for node in victims:
            if node == me:
                yield from self.wait_local_unlocked(page_addr, LockMode.WRITE)
                self.host.drop_local_page(page_addr)
                cm.pages.fire(page_addr, PageEvent.INVALIDATE)
                entry.forget_sharer(me)
                continue
            requests.append(
                (node, self.engine.request(
                    node,
                    MessageType.INVALIDATE,
                    {"rid": desc.rid, "page": page_addr},
                    policy=self.policy,
                ))
            )
        if requests:
            outcomes = yield gather_settled(
                [future for _node, future in requests], label="invalidate"
            )
            for (node, _future), (ok, _value) in zip(requests, outcomes):
                # Whether acked or unreachable, the node no longer
                # counts as a sharer; a crashed node's copy dies with it.
                entry.forget_sharer(node)

    def serve_owner_read(self, desc: RegionDescriptor, msg: Any,
                         page_addr: int) -> None:
        """Owner side of a direct read (Figure 2 fast path): wait out
        local writers, register the requester with the home, demote,
        grant.  NAKs ``not_responsible`` when the hint is stale."""
        engine = self.engine
        cm = engine.cm
        me = self.host.node_id
        entry = self.host.page_directory.get(page_addr)
        if (entry is None or entry.owner != me
                or cm.pages.state(page_addr) is LocalPageState.INVALID):
            engine.nak(msg, "not_responsible", "stale owner hint")
            return

        def serve() -> ProtocolGen:
            yield from self.wait_local_unlocked(page_addr, LockMode.READ)
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is None:
                engine.nak(msg, "not_responsible", "owner copy evicted")
                return
            # Register the requester in the home's copyset *before*
            # handing out the copy (steps 7-9 of Figure 2): if the
            # registration raced a later write's invalidation round,
            # the requester could keep a stale copy forever.
            home = desc.primary_home
            if home != me:
                try:
                    yield engine.request(
                        home, MessageType.SHARER_REGISTER,
                        {"rid": desc.rid, "page": page_addr,
                         "sharer": msg.src},
                        policy=self.policy,
                    )
                except (RpcTimeout, RemoteError):
                    engine.nak(
                        msg, "not_responsible",
                        "could not register the new sharer with the home"
                    )
                    return
            # Demote to shared, then grant.
            cm.pages.fire(page_addr, PageEvent.DEMOTE)
            engine.reply(msg, MessageType.LOCK_REPLY,
                         {"data": data, "owner": me})

        engine.spawn_handler(msg, serve(), "direct-read")

    def serve_owner_fetch(self, desc: RegionDescriptor, msg: Any) -> None:
        """Owner side of a home's PAGE_FETCH: serve the current bytes,
        optionally revoking or demoting the local copy first."""
        engine = self.engine
        cm = engine.cm
        page_addr = msg.payload["page"]
        revoke = bool(msg.payload.get("revoke"))
        demote = bool(msg.payload.get("demote"))

        def serve() -> ProtocolGen:
            wait_mode = LockMode.WRITE if revoke else LockMode.READ
            yield from self.wait_local_unlocked(page_addr, wait_mode)
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is None:
                engine.nak(msg, "not_responsible", "no local copy")
                return
            if revoke:
                self.host.drop_local_page(page_addr)
                cm.pages.fire(page_addr, PageEvent.INVALIDATE)
            elif demote:
                cm.pages.fire(page_addr, PageEvent.DEMOTE)
                self.host.storage.mark_clean(page_addr)
            engine.reply(msg, MessageType.PAGE_DATA, {"data": data})

        engine.spawn_handler(msg, serve(), "fetch")

    def serve_invalidate(self, desc: RegionDescriptor, msg: Any) -> None:
        """Destroy the local copy and ack — but only once local
        readers finish: the CM "delays granting" conflicting
        operations (paper 3.3), and symmetrically an invalidation
        waits for local contexts before the copy is destroyed."""
        cm = self.engine.cm
        page_addr = msg.payload["page"]

        def apply() -> None:
            self.host.drop_local_page(page_addr)
            cm.pages.fire(page_addr, PageEvent.INVALIDATE)
            self.engine.reply(msg, MessageType.INVALIDATE_ACK, {})

        if self.host.lock_table.page_locked(page_addr):
            cm.defer_until_unlocked(page_addr, apply)
        else:
            apply()

    def home_grant(self, desc: RegionDescriptor, page_addr: int,
                   mode: LockMode, requester: int) -> ProtocolGen:
        """One home-side grant transaction: bootstrap ownership, then
        hand out a read copy or claim exclusivity for the requester.
        Run it under :class:`HomeTransactions` so grants serialize.
        """
        cm = self.engine.cm
        me = self.host.node_id
        entry = self.host.page_directory.ensure(page_addr, desc.rid,
                                                homed=True)
        if not entry.allocated:
            raise NotAllocated(
                f"page {page_addr:#x} of region {desc.rid:#x} has no "
                "allocated storage"
            )
        if entry.owner is None:
            entry.owner = me
            entry.record_sharer(me)
        if mode is LockMode.READ:
            data = yield from self.read_copy(desc, entry)
            entry.record_sharer(requester)
            if requester != me and cm.pages.state(page_addr) is (
                LocalPageState.EXCLUSIVE
            ):
                # Handing out a read copy ends local exclusivity; a
                # later local write must invalidate the new sharer.
                cm.pages.fire(page_addr, PageEvent.DEMOTE)
            return data
        data = yield from self.claim_for_writer(desc, entry, page_addr,
                                                requester)
        return data

    def claim_for_writer(self, desc: RegionDescriptor, entry: Any,
                         page_addr: int, requester: int) -> ProtocolGen:
        """Invalidate every cached copy except the requester's, then
        move ownership (and data, if needed) to the requester."""
        me = self.host.node_id
        data: Optional[bytes] = None
        victims = [
            node for node in sorted(entry.sharers)
            if node not in (requester, entry.owner)
        ]
        yield from self.invalidate_nodes(desc, entry, page_addr, victims)

        owner = entry.owner
        if owner == requester:
            pass   # upgrade: requester's copy is already current
        elif owner == me:
            data = yield from self.take_local_copy(
                desc, page_addr, invalidate=requester != me
            )
        else:
            data = yield from self.revoke_owner(desc, entry, page_addr, owner)
            if data is None:
                # Owner unreachable: fall back to the home's write-back
                # copy (paper 3.5: operations retried on known nodes,
                # availability preferred).
                data = yield from self.take_local_copy(
                    desc, page_addr, invalidate=requester != me
                )
        entry.owner = requester
        entry.sharers = {requester}
        if requester == me:
            entry.record_sharer(me)
        if self.host.probe.enabled:
            self.host.probe.exclusive_grant(me, page_addr, requester)
        return data
