"""Local page-state machine shared by every consistency protocol.

Each protocol declares an explicit MSI-style transition table — a
mapping from :class:`PageEvent` to the :class:`LocalPageState` the
page enters — instead of assigning ``page_state`` entries ad hoc.
The table *is* the protocol's coherence summary (docs/protocols.md
renders one per protocol), and an event a protocol never declared
fails loudly instead of silently corrupting the state map.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Mapping


class LocalPageState(enum.Enum):
    """Validity of this node's local copy of a page (MSI-style)."""

    INVALID = "invalid"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class PageEvent(enum.Enum):
    """Protocol-independent events that move a page between states."""

    #: A readable copy was installed or confirmed locally.
    READ_FILL = "read_fill"
    #: This node was granted exclusive write access.
    WRITE_GRANT = "write_grant"
    #: An exclusive copy was demoted to shared (a reader appeared).
    DEMOTE = "demote"
    #: The local copy was destroyed or declared stale.
    INVALIDATE = "invalidate"
    #: A durability write-back landed — bytes are stored but the copy
    #: is *not* coherent (the owner may keep writing silently).
    WRITEBACK_COPY = "writeback_copy"
    #: A peer's propagated update was applied to the local replica.
    REPLICA_APPLY = "replica_apply"


#: Transition observer: ``hook(label, before, event, after)`` where
#: ``label`` is the owning protocol's name.  The conformance matrix
#: registers one to measure automaton-edge coverage against the edge
#: list the static verifier (``repro.analysis.protocol``) emits.
TraceHook = Callable[[str, LocalPageState, PageEvent, LocalPageState], None]

_trace_hooks: List[TraceHook] = []


def add_trace_hook(hook: TraceHook) -> None:
    """Observe every ``fire`` on every machine (tests/coverage only)."""
    _trace_hooks.append(hook)


def remove_trace_hook(hook: TraceHook) -> None:
    _trace_hooks.remove(hook)


class PageStateMachine:
    """Explicit transition table over a CM's page-state dict.

    The dict itself stays owned by the CM — the data plane pops
    evicted pages straight out of ``cm.page_state`` — so the machine
    wraps that same object rather than keeping a private copy.
    """

    def __init__(
        self,
        pages: Dict[int, LocalPageState],
        table: Mapping[PageEvent, LocalPageState],
        label: str = "",
    ) -> None:
        self.pages = pages
        self.table = dict(table)
        self.label = label

    def state(self, page_addr: int) -> LocalPageState:
        return self.pages.get(page_addr, LocalPageState.INVALID)

    def fire(self, page_addr: int, event: PageEvent) -> LocalPageState:
        # An event missing from the protocol's declared table is a
        # protocol-author bug; the KeyError names the event.
        state = self.table[event]
        if _trace_hooks:
            before = self.pages.get(page_addr, LocalPageState.INVALID)
            for hook in _trace_hooks:
                hook(self.label, before, event, state)
        self.pages[page_addr] = state
        return state

    def drop(self, page_addr: int) -> None:
        self.pages.pop(page_addr, None)
