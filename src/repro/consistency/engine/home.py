"""Home-side transaction serialisation.

:class:`KeyedMutex` is the per-key FIFO mutex the protocols have
always used; :class:`HomeTransactions` packages the acquire /
``try``-``finally`` release discipline every home-side directory
transaction needs, so a policy can run its critical section as a
plain generator.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator

from repro.net.tasks import Future

ProtocolGen = Generator[Future, Any, Any]


class KeyedMutex:
    """Per-key FIFO mutex for serialising directory transactions.

    Home nodes must not interleave two ownership transfers for the
    same page; each transaction acquires the page's mutex first.
    """

    def __init__(self) -> None:
        self._waiting: Dict[Any, Deque[Future]] = {}
        self._held: Dict[Any, bool] = {}

    def acquire(self, key: Any) -> Future:
        """Future resolving when the caller holds the mutex for key."""
        future = Future(label=f"mutex:{key}")
        if not self._held.get(key):
            self._held[key] = True
            future.set_result(None)
        else:
            self._waiting.setdefault(key, deque()).append(future)
        return future

    def release(self, key: Any) -> None:
        queue = self._waiting.get(key)
        if queue:
            next_holder = queue.popleft()
            if not queue:
                del self._waiting[key]
            # Resolve last: the next holder's callbacks run
            # synchronously and may re-enter release() for this key.
            next_holder.set_result(None)
        else:
            self._held.pop(key, None)

    def locked(self, key: Any) -> bool:
        return bool(self._held.get(key))


class HomeTransactions:
    """Run home-side directory transactions one at a time per page."""

    def __init__(self) -> None:
        self._mutex = KeyedMutex()

    def run(self, key: Any, gen: ProtocolGen) -> ProtocolGen:
        """Drive ``gen`` while holding the mutex for ``key``.

        The mutex is released on every exit path — including the
        handler task being killed (GeneratorExit) — so a crashed
        transaction never wedges the page.
        """
        yield self._mutex.acquire(key)
        try:
            result = yield from gen
            return result
        finally:
            self._mutex.release(key)

    def locked(self, key: Any) -> bool:
        return self._mutex.locked(key)
