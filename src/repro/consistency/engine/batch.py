"""Batching decisions and fallbacks shared by every protocol.

The planner answers one question — "is this multi-page operation
worth a coalesced RPC?" — and owns the two recovery shapes batching
needs: the per-page background retry after an unreachable home, and
the per-page error items a home puts in a partial batch reply.  It
also serves the home side of ``PAGE_FETCH`` / ``PAGE_FETCH_BATCH``,
which is identical across protocols up to the reply payload.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.locks import LockMode
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType

ProtocolGen = Any   # Generator[Future, Any, Any]; kept loose to avoid churn


class BatchPlanner:
    """Group-by-home batching plans for ``acquire_many``/``release_many``."""

    def __init__(self, engine: Any) -> None:
        self.engine = engine

    def use_batch(self, desc: RegionDescriptor, pages: List[int],
                  *, home_local_fallback: bool = True) -> bool:
        """Whether a multi-page operation should coalesce its traffic.

        Home-local and trivial (single-page) ranges gain nothing from
        batching, and a daemon may disable it outright.  Protocols
        whose release path still batches at the home (CREW's
        write-back goes to the *other* homes) pass
        ``home_local_fallback=False``.
        """
        cm = self.engine.cm
        if home_local_fallback and cm.host.node_id == desc.primary_home:
            return False
        if len(pages) <= 1 or not cm.batching_enabled():
            return False
        return True

    def wait_conflicts(self, pages: List[int], mode: LockMode) -> ProtocolGen:
        """Wait out local lock-table conflicts for the whole range."""
        for page_addr in pages:
            yield from self.engine.host.wait_local_conflicts(page_addr, mode)

    def retry_per_page(
        self,
        desc: RegionDescriptor,
        updates: List[Dict[str, Any]],
        push: Callable[[RegionDescriptor, Dict[str, Any]], Any],
        label_prefix: str,
    ) -> None:
        """Queue one background push per update after a failed batch.

        ``push(desc, payload)`` is the protocol's single-page push
        generator; each payload is the batch item plus the region id.
        """
        for update in updates:
            payload = {"rid": desc.rid, **update}
            self.engine.counters.per_page_fallbacks += 1
            self.engine.host.retry_queue.enqueue(
                lambda payload=payload: push(desc, payload),
                label=f"{label_prefix}:{payload['page']:#x}",
            )

    @staticmethod
    def error_item(page_addr: int, error: Exception) -> Dict[str, Any]:
        """The per-page error entry of a partial batch reply."""
        return {
            "page": page_addr,
            "code": getattr(error, "code", "khazana_error"),
            "detail": str(error),
        }

    # -- home-side fetch service (shared shape) -------------------------

    def serve_fetch(
        self,
        desc: RegionDescriptor,
        msg: Message,
        item_payload: Callable[[int, bytes], Dict[str, Any]],
        *,
        missing_detail: Optional[Callable[[int], str]] = None,
        homed: bool = True,
    ) -> None:
        """Serve a single PAGE_FETCH: reply PAGE_DATA or NAK."""
        engine = self.engine
        host = engine.host
        page_addr = msg.payload["page"]
        if missing_detail is None:
            missing_detail = _no_storage_detail

        def serve() -> ProtocolGen:
            data = yield from host.local_page_bytes(desc, page_addr)
            if data is None:
                engine.nak(msg, "not_allocated", missing_detail(page_addr))
                return
            if msg.payload.get("register"):
                entry = host.page_directory.ensure(
                    page_addr, desc.rid, homed=homed
                )
                entry.record_sharer(msg.src)
            engine.reply(
                msg, MessageType.PAGE_DATA, item_payload(page_addr, data)
            )

        engine.spawn_handler(msg, serve(), "fetch")

    def serve_fetch_batch(
        self,
        desc: RegionDescriptor,
        msg: Message,
        item_payload: Callable[[int, bytes], Dict[str, Any]],
        *,
        homed: bool = True,
    ) -> None:
        """Serve a PAGE_FETCH_BATCH: per-page items plus error items."""
        engine = self.engine
        host = engine.host
        pages = [int(p) for p in msg.payload.get("pages", [])]

        def serve() -> ProtocolGen:
            served: List[Dict[str, Any]] = []
            errors: List[Dict[str, Any]] = []
            for page_addr in pages:
                data = yield from host.local_page_bytes(desc, page_addr)
                if data is None:
                    errors.append({
                        "page": page_addr, "code": "not_allocated",
                        "detail": _no_storage_detail(page_addr),
                    })
                    continue
                if msg.payload.get("register"):
                    entry = host.page_directory.ensure(
                        page_addr, desc.rid, homed=homed
                    )
                    entry.record_sharer(msg.src)
                served.append(item_payload(page_addr, data))
            engine.reply(
                msg, MessageType.PAGE_DATA_BATCH,
                {"pages": served, "errors": errors},
            )

        engine.spawn_handler(msg, serve(), "fetch-batch")


def _no_storage_detail(page_addr: int) -> str:
    return f"page {page_addr:#x} has no storage"
