"""Wire primitives: the only road from a consistency policy to the
network.

Lint rule KHZ007 forbids policy modules (everything under
``repro/consistency/`` outside this package) from touching
``host.rpc`` or ``host.reply_*`` directly; every request, one-way
send, reply, and NAK goes through a :class:`ProtocolEngine` primitive
so that retry policies, home failover, NAK classification
(:func:`typed_denial`), batching counters, and task labels are
uniform across protocols.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.consistency.engine.batch import BatchPlanner
from repro.consistency.engine.counters import EngineCounters
from repro.consistency.engine.directory import DirectoryCoherence
from repro.consistency.engine.home import HomeTransactions
from repro.consistency.engine.ledger import CopysetLedger
from repro.core.errors import ERROR_CODES, LockDenied, error_from_code
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout
from repro.net.tasks import Future, gather_settled

if TYPE_CHECKING:
    from repro.core.cmhost import CMHost

ProtocolGen = Generator[Future, Any, Any]

#: Coalesced request kinds, counted as batch fan-outs.
BATCH_REQUESTS = frozenset({
    MessageType.PAGE_FETCH_BATCH,
    MessageType.TOKEN_ACQUIRE_BATCH,
    MessageType.UPDATE_PUSH_BATCH,
})

#: Home NAK codes that mean "this node no longer serves the region" —
#: after a re-home the stale descriptor's first home answers with one
#: of these, and the ordered failover must keep trying later
#: candidates even in ``nak="raise"`` mode instead of surfacing a
#: denial for what is merely a moved region.
STALE_HOME_NAKS = frozenset({"not_responsible", "region_not_found"})

#: Wire message kind -> engine operation, for uniform trace grouping.
WIRE_OPS: Dict[MessageType, str] = {
    MessageType.LOCK_REQUEST: "grant",
    MessageType.LOCK_REPLY: "grant",
    MessageType.TOKEN_ACQUIRE_BATCH: "grant",
    MessageType.TOKEN_GRANT_BATCH: "grant",
    MessageType.PAGE_FETCH: "fetch",
    MessageType.PAGE_DATA: "fetch",
    MessageType.PAGE_FETCH_BATCH: "fetch",
    MessageType.PAGE_DATA_BATCH: "fetch",
    MessageType.UPDATE_PUSH: "update",
    MessageType.UPDATE_ACK: "update",
    MessageType.UPDATE_PUSH_BATCH: "update",
    MessageType.UPDATE_ACK_BATCH: "update",
    MessageType.INVALIDATE: "invalidate",
    MessageType.INVALIDATE_ACK: "invalidate",
    MessageType.SHARER_REGISTER: "copyset",
    MessageType.SHARER_UNREGISTER: "copyset",
}


def wire_op(msg_type: MessageType) -> Optional[str]:
    """The engine operation a wire message kind belongs to, if any."""
    return WIRE_OPS.get(msg_type)


def transaction_label(protocol: str, op: str, detail: str = "") -> str:
    """Uniform task label for engine-run protocol transactions.

    ``detail`` (e.g. the wire message kind a handler serves) keeps
    labels distinguishable for the schedule explorer's coverage and
    trace grouping without breaking the stable ``cm:{protocol}:{op}``
    prefix.
    """
    label = f"cm:{protocol}:{op}"
    return f"{label}:{detail}" if detail else label


def typed_denial(error: Any) -> Exception:
    """Turn a peer's NAK into the most specific client-facing error.

    Known Khazana codes (access_denied, not_allocated, ...) surface as
    their typed exceptions; anything else becomes LockDenied.
    """
    if getattr(error, "code", None) in ERROR_CODES:
        return error_from_code(error.code, error.detail)
    return LockDenied(str(error))


class ProtocolEngine:
    """Shared mechanism under one consistency manager.

    One engine per (daemon, protocol); the policy reaches every
    subsystem through it: ``engine.home`` (per-page transaction
    mutex), ``engine.ledger`` (write tokens + probe ordering),
    ``engine.batch`` (multi-page planning), ``engine.directory``
    (owner/copyset coherence), plus the wire primitives below.
    """

    def __init__(self, cm: Any) -> None:
        self.cm = cm
        self.host: "CMHost" = cm.host
        self.counters = EngineCounters()
        self.home = HomeTransactions()
        self.ledger = CopysetLedger(self.host)
        self.batch = BatchPlanner(self)
        self.directory = DirectoryCoherence(self)

    # -- outbound --------------------------------------------------------

    def request(self, dst: int, msg_type: MessageType,
                payload: Optional[Dict[str, Any]] = None,
                policy: Optional[RetryPolicy] = None) -> Future:
        """An acknowledged request to one peer."""
        if msg_type in BATCH_REQUESTS:
            self.counters.batch_fanouts += 1
        return self.host.rpc.request(dst, msg_type, payload, policy=policy)

    def send(self, dst: int, msg_type: MessageType,
             payload: Dict[str, Any]) -> None:
        """A one-way (fire-and-forget) message to one peer."""
        self.host.rpc.send(
            Message(
                msg_type=msg_type,
                src=self.host.node_id,
                dst=dst,
                payload=payload,
            )
        )

    # -- replies ---------------------------------------------------------

    def reply(self, msg: Message, msg_type: MessageType,
              payload: Optional[Dict[str, Any]] = None) -> None:
        """Answer a request (no-op for one-way messages)."""
        self.host.reply_request(msg, msg_type, payload)

    def nak(self, msg: Message, code: str, detail: str = "") -> None:
        """Refuse a request with a typed error code."""
        self.host.reply_error(msg, code, detail)

    # -- home fan-out ----------------------------------------------------

    def request_home(
        self,
        desc: RegionDescriptor,
        msg_type: MessageType,
        payload: Dict[str, Any],
        *,
        policy: Optional[RetryPolicy],
        fail: str,
        nak: str = "raise",
    ) -> ProtocolGen:
        """Ask the region's home candidates (in order) until one
        answers.

        The candidate order comes from the host's placement strategy
        (:meth:`~repro.core.kernel.NodeKernel.home_order`): normally
        the descriptor's own home list, but after a re-home the
        strategy may promote or append the region's *current* home so
        in-flight traffic survives a migration the caller has not
        heard about yet.

        Timeouts always fail over to the next candidate (paper 3.5),
        and so do the stale-home NAKs in :data:`STALE_HOME_NAKS` — a
        former home saying "not mine any more" is a redirect, not a
        denial.  Any other NAK either surfaces immediately as its
        typed denial (``nak="raise"``, the token protocols) or also
        fails over (``nak="skip"``, availability-first protocols).
        ``fail`` is the LockDenied template for total failure,
        formatted with ``rid`` and ``error``.
        """
        last_error: Optional[Exception] = None
        for home in self.host.home_order(desc):
            if home == self.host.node_id:
                continue
            try:
                reply = yield self.request(
                    home, msg_type, payload, policy=policy
                )
                return reply
            except RpcTimeout as error:
                last_error = error   # try the next home (Section 3.5)
            except RemoteError as error:
                if nak == "skip" or error.code in STALE_HOME_NAKS:
                    last_error = error
                    continue
                raise typed_denial(error) from error
        if nak != "skip" and isinstance(last_error, RemoteError):
            # Every candidate redirected us away: surface the typed
            # denial the pre-failover path would have raised.
            raise typed_denial(last_error) from last_error
        raise LockDenied(fail.format(rid=desc.rid, error=last_error))

    def request_any(
        self,
        candidates: List[int],
        msg_type: MessageType,
        payload: Dict[str, Any],
        *,
        policy: Optional[RetryPolicy] = None,
    ) -> ProtocolGen:
        """Try each candidate peer in order; None when all fail."""
        for peer in candidates:
            try:
                reply = yield self.request(
                    peer, msg_type, payload, policy=policy
                )
                return reply
            except (RpcTimeout, RemoteError):
                continue
        return None

    def push_homes(
        self,
        desc: RegionDescriptor,
        msg_type: MessageType,
        payload: Dict[str, Any],
        *,
        policy: Optional[RetryPolicy],
        label: str,
    ) -> ProtocolGen:
        """Best-effort push to every non-self home, settled together.

        Unreachable homes are repaired by replica maintenance, not by
        failing the caller (release-type errors never surface, 3.5).
        """
        pushes = []
        for home in desc.home_nodes:
            if home == self.host.node_id:
                continue
            pushes.append(self.request(home, msg_type, payload, policy=policy))
        if pushes:
            yield gather_settled(pushes, label=label)

    def fanout_update(self, entry: Any, payload: Dict[str, Any],
                      exclude: Any) -> None:
        """One-way UPDATE_PUSH to every copyset member except those in
        ``exclude`` (replicas that miss one catch up at next fetch)."""
        for sharer in entry.copyset_excluding(self.host.node_id):
            if sharer in exclude:
                continue
            self.send(sharer, MessageType.UPDATE_PUSH, payload)

    def serve_token_grants(
        self,
        desc: RegionDescriptor,
        msg: Message,
        pages: List[int],
        item_payload: Any,
        reply: Any,
        op: str,
    ) -> None:
        """Home-side all-or-nothing token grant over the ledger.

        Acquire every page's write token in order, serve the current
        bytes (``item_payload(page, data)`` builds each granted item),
        send ``reply(granted)``, then record the grants — the grant
        probe must fire *after* the reply it rides on.  Any failure
        aborts every token held so far: a denied or killed grant
        leaves no residue (token conservation).
        """
        ledger = self.ledger
        host = self.host

        def grant() -> ProtocolGen:
            held: List[int] = []
            granted: List[Dict[str, Any]] = []
            try:
                for page_addr in pages:
                    yield ledger.acquire(page_addr)
                    held.append(page_addr)
                    data = yield from host.local_page_bytes(desc, page_addr)
                    if data is None:
                        for token_page in held:
                            ledger.abort(token_page)
                        self.nak(msg, "not_allocated",
                                 f"page {page_addr:#x} has no storage")
                        return
                    granted.append(item_payload(page_addr, data))
            except BaseException:
                # Cleanup-then-reraise: must also run when the handler
                # task is killed (GeneratorExit), or held tokens leak.
                for token_page in held:
                    ledger.abort(token_page)
                raise
            for page_addr in pages:
                entry = host.page_directory.ensure(page_addr, desc.rid,
                                                   homed=True)
                entry.record_sharer(msg.src)
            reply(granted)
            # Tokens now belong to msg.src until its update push with
            # release_token=True arrives.
            for page_addr in pages:
                ledger.grant(page_addr, msg.src)

        self.spawn_handler(msg, grant(), op)

    def raise_batch_errors(self, reply: Message) -> None:
        """Surface the first per-page error of a partial batch reply."""
        errors = reply.payload.get("errors") or []
        if errors:
            first = errors[0]
            raise error_from_code(first["code"], first.get("detail", ""))

    # -- pipelining ------------------------------------------------------

    def pipeline(self, gens: List[ProtocolGen], *, op: str) -> ProtocolGen:
        """Run independent protocol generators with a bounded in-flight
        window; resolves to ``[(ok, value-or-exc), ...]`` in input
        order, never raising (the caller decides what a failure means).

        The serial loops this replaces awaited each page's full round
        trip before issuing the next request; here up to
        ``config.pipeline_window`` transactions run at once, so one
        reply's latency hides the others'.  A window of <= 1 (or a
        single generator) degrades to the exact serial behaviour.

        The generators must be mutually independent: anything
        order-dependent — WRITE-token acquisition takes tokens in
        ascending page order to stay deadlock-free — must not come
        through here.
        """
        results: List[Any] = [None] * len(gens)
        window = int(getattr(self.host.config, "pipeline_window", 1) or 1)
        if window <= 1 or len(gens) <= 1:
            for index, gen in enumerate(gens):
                try:
                    value = yield from gen
                    results[index] = (True, value)
                except Exception as error:  # khz: allow-broad-except(failure is handed to the caller in the settled results, mirroring the windowed path)
                    results[index] = (False, error)
            return results
        label = transaction_label(self.cm.protocol_name, op)
        state = {"pending": 0, "gate": None}

        def settle(index: int, future: Future) -> None:
            error = future.exception()
            results[index] = (
                (False, error) if error is not None
                else (True, future.result())
            )
            state["pending"] -= 1
            gate = state["gate"]
            if gate is not None and not gate.done:
                gate.set_result(None)

        next_index = 0
        total = len(gens)
        while next_index < total or state["pending"]:
            while next_index < total and state["pending"] < window:
                state["pending"] += 1
                future = self.host.spawn(
                    gens[next_index], label=f"{label}#{next_index}"
                )
                future.add_callback(
                    lambda f, i=next_index: settle(i, f)
                )
                next_index += 1
            if state["pending"]:
                # Nothing progresses between here and the yield (the
                # scheduler is single-threaded), so the first settling
                # task is guaranteed to find and fire this gate.
                gate = Future(label=f"{label}:window")
                state["gate"] = gate
                yield gate
                state["gate"] = None
        return results

    # -- task plumbing ---------------------------------------------------

    def spawn(self, gen: ProtocolGen, op: str) -> None:
        """Run a background protocol task under a uniform label."""
        self.host.spawn(
            gen, label=transaction_label(self.cm.protocol_name, op)
        )

    def spawn_handler(self, msg: Message, gen: ProtocolGen, op: str) -> None:
        """Run a request handler; uncaught errors NAK the request."""
        self.counters.home_transactions += 1
        self.host.spawn_handler(
            msg, gen,
            label=transaction_label(self.cm.protocol_name, op,
                                    detail=msg.msg_type.value),
        )
