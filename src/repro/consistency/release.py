"""Release consistency.

"For example, for the address map tree nodes, we use a release
consistent protocol" (paper Section 3.3, citing Gharachorloo et al.).

Semantics implemented here, in the DSM tradition the authors come
from (Munin/TreadMarks):

- A *read* lock is satisfied from any local replica, however stale;
  a node with no replica fetches one from the home node.
- A *write* lock acquires a per-page write token from the home node,
  which also supplies the latest page contents — so writers are
  serialised and always start from the newest version.
- A *write-shared* lock takes no token: concurrent writers keep a twin
  of the page and push byte-range diffs at release, which the home
  merges — non-overlapping concurrent writes both survive.
- At *release*, dirty data goes to the home node, which bumps the page
  version and propagates the update to every registered replica site
  ("Eventually, the other CMs notify their Khazana daemon of the
  change, causing it to update its replica", Section 3.3).

Updates arriving at a replica while a local context covers the page
are deferred until that context is released, so a reader never sees a
page change underneath an open lock.
"""

from __future__ import annotations

import logging

from typing import Any, Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.consistency.manager import (
    ConsistencyManager,
    KeyedMutex,
    LocalPageState,
    ProtocolGen,
    _typed_denial,
    register_protocol,
)
from repro.core.errors import KhazanaError, LockDenied
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout

if TYPE_CHECKING:
    from repro.core.cmhost import CMHost

TOKEN_POLICY = RetryPolicy(timeout=10.0, retries=2, backoff=1.5)

logger = logging.getLogger(__name__)


def compute_diff(twin: bytes, current: bytes) -> List[Tuple[int, bytes]]:
    """Byte ranges of ``current`` that differ from ``twin``.

    Returns maximal runs as ``(offset, data)`` pairs — the classic
    twin/diff mechanism used by write-shared protocols.
    """
    if len(twin) != len(current):
        return [(0, current)]
    runs: List[Tuple[int, bytes]] = []
    start: Optional[int] = None
    for i in range(len(current)):
        if twin[i] != current[i]:
            if start is None:
                start = i
        elif start is not None:
            runs.append((start, current[start:i]))
            start = None
    if start is not None:
        runs.append((start, current[start:]))
    return runs


def apply_diff(base: bytes, diff: List[Tuple[int, bytes]]) -> bytes:
    """Apply ``(offset, data)`` runs to ``base``."""
    page = bytearray(base)
    for offset, data in diff:
        end = offset + len(data)
        if end > len(page):
            page.extend(b"\x00" * (end - len(page)))
        page[offset:end] = data
    return bytes(page)


@register_protocol
class ReleaseManager(ConsistencyManager):
    """Consistency manager implementing release consistency."""

    protocol_name = "release"

    def __init__(self, host: "CMHost") -> None:
        super().__init__(host)
        self._tokens = KeyedMutex()        # home-side write tokens
        self._versions: Dict[int, int] = {}   # page -> version (home: authoritative)
        self._twins: Dict[Tuple[int, int], bytes] = {}  # (ctx, page) -> twin

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def acquire(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        mode: LockMode,
        ctx: LockContext,
    ) -> ProtocolGen:
        me = self.host.node_id
        home = desc.primary_home

        if mode is LockMode.READ:
            if self.host.storage.contains(page_addr):
                return  # any replica satisfies a read acquire
            if me == home:
                data = yield from self.host.local_page_bytes(desc, page_addr)
                if data is None:
                    raise KhazanaError(
                        f"home lost page {page_addr:#x} of region {desc.rid:#x}"
                    )
                return
            yield from self._fetch_replica(desc, page_addr, ctx.principal)
            return

        if mode is LockMode.WRITE:
            yield from self._acquire_token(desc, page_addr, ctx.principal)
            return

        # WRITE_SHARED: no token; remember a twin for diffing.
        data = yield from self._ensure_local_copy(desc, page_addr)
        self._twins[(ctx.ctx_id, page_addr)] = data

    def _fetch_replica(self, desc: RegionDescriptor, page_addr: int,
                       principal: str = "_khazana") -> ProtocolGen:
        reply = yield from self._home_request(
            desc, MessageType.PAGE_FETCH,
            {"rid": desc.rid, "page": page_addr, "register": True,
             "principal": principal},
        )
        data = reply.payload["data"]
        yield from self.host.store_local_page(desc, page_addr, data, dirty=False)
        self._versions[page_addr] = reply.payload.get("version", 0)
        self.page_state[page_addr] = LocalPageState.SHARED
        entry = self.host.page_directory.ensure(page_addr, desc.rid, homed=False)
        entry.allocated = True

    def _ensure_local_copy(self, desc: RegionDescriptor, page_addr: int) -> ProtocolGen:
        if not self.host.storage.contains(page_addr):
            if self.host.node_id == desc.primary_home:
                data = yield from self.host.local_page_bytes(desc, page_addr)
                if data is None:
                    raise KhazanaError(f"home lost page {page_addr:#x}")
                return data
            yield from self._fetch_replica(desc, page_addr)
        data = yield from self.host.local_page_bytes(desc, page_addr)
        return data

    def _acquire_token(self, desc: RegionDescriptor, page_addr: int,
                       principal: str = "_khazana") -> ProtocolGen:
        me = self.host.node_id
        if me == desc.primary_home:
            yield self._tokens.acquire(page_addr)
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is None:
                self._tokens.release(page_addr)
                raise KhazanaError(f"home lost page {page_addr:#x}")
            if self.host.probe.enabled:
                self.host.probe.token_granted(me, page_addr, me)
            self.page_state[page_addr] = LocalPageState.EXCLUSIVE
            return
        reply = yield from self._home_request(
            desc, MessageType.LOCK_REQUEST,
            {"rid": desc.rid, "page": page_addr,
             "mode": LockMode.WRITE.value, "principal": principal},
        )
        data = reply.payload["data"]
        yield from self.host.store_local_page(desc, page_addr, data, dirty=False)
        self._versions[page_addr] = reply.payload.get("version", 0)
        self.page_state[page_addr] = LocalPageState.EXCLUSIVE
        entry = self.host.page_directory.ensure(page_addr, desc.rid, homed=False)
        entry.allocated = True

    def _home_request(self, desc: RegionDescriptor, msg_type: MessageType,
                      payload: Dict[str, Any]) -> ProtocolGen:
        last_error: Optional[Exception] = None
        for home in desc.home_nodes:
            if home == self.host.node_id:
                continue
            try:
                reply = yield self.host.rpc.request(
                    home, msg_type, payload, policy=TOKEN_POLICY
                )
                return reply
            except RpcTimeout as error:
                last_error = error
            except RemoteError as error:
                raise _typed_denial(error) from error
        raise LockDenied(
            f"no home node of region {desc.rid:#x} answered: {last_error}"
        )

    def release(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        ctx: LockContext,
    ) -> ProtocolGen:
        me = self.host.node_id
        twin_key = (ctx.ctx_id, page_addr)
        twin = self._twins.pop(twin_key, None)

        if ctx.mode is LockMode.WRITE_SHARED:
            if twin is None:
                return
            page = self.host.storage.peek(page_addr)
            if page is None:
                return
            diff = compute_diff(twin, page.data)
            if not diff:
                return
            if me == desc.primary_home:
                yield from self._apply_update_at_home(
                    desc, page_addr, diff=diff, data=None, writer=me
                )
            else:
                yield from self._push_home(
                    desc, page_addr,
                    {"rid": desc.rid, "page": page_addr, "diff": diff,
                     "release_token": False},
                )
            return

        if ctx.mode is not LockMode.WRITE:
            return

        dirty = page_addr in ctx.dirty_pages
        if me == desc.primary_home:
            if dirty:
                page = self.host.storage.peek(page_addr)
                if page is not None:
                    yield from self._apply_update_at_home(
                        desc, page_addr, diff=None, data=page.data, writer=me
                    )
            # Probe before the mutex release: releasing may resume the
            # next waiter synchronously, and its grant event must come
            # after this release event.
            if self.host.probe.enabled:
                self.host.probe.token_released(me, page_addr, me)
            self._tokens.release(page_addr)
            return

        page = self.host.storage.peek(page_addr) if dirty else None
        payload: Dict[str, Any] = {
            "rid": desc.rid,
            "page": page_addr,
            "release_token": True,
        }
        if page is not None:
            payload["data"] = page.data
        try:
            yield from self._push_home(desc, page_addr, payload)
            self.host.storage.mark_clean(page_addr)
        except LockDenied:
            # Token release must not be lost; hand it to the
            # background retry queue (paper 3.5: release-type errors
            # are retried until they succeed, never surfaced).
            self.host.retry_queue.enqueue(
                lambda: self._push_home(desc, page_addr, payload),
                label=f"release-token:{page_addr:#x}",
            )

    def _push_home(self, desc: RegionDescriptor, page_addr: int,
                   payload: Dict[str, Any]) -> ProtocolGen:
        yield from self._home_request(desc, MessageType.UPDATE_PUSH, payload)

    # ------------------------------------------------------------------
    # Batched multi-page path
    # ------------------------------------------------------------------

    def acquire_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        mode: LockMode,
        ctx: LockContext,
        note_acquired: Any,
    ) -> ProtocolGen:
        me = self.host.node_id
        if (me == desc.primary_home or len(pages) <= 1
                or not self.batching_enabled()):
            # Home-local or trivial ranges gain nothing from batching.
            yield from super().acquire_many(desc, pages, mode, ctx,
                                            note_acquired)
            return
        for page_addr in pages:
            yield from self.host.wait_local_conflicts(page_addr, mode)
        if mode is LockMode.READ:
            missing = [p for p in pages
                       if not self.host.storage.contains(p)]
            if missing:
                yield from self._fetch_replica_batch(desc, missing,
                                                     ctx.principal)
        elif mode is LockMode.WRITE:
            yield from self._acquire_token_batch(desc, pages, ctx.principal)
        else:  # WRITE_SHARED: no tokens; twin every page for diffing.
            missing = [p for p in pages
                       if not self.host.storage.contains(p)]
            if missing:
                yield from self._fetch_replica_batch(desc, missing,
                                                     ctx.principal)
            for page_addr in pages:
                data = yield from self.host.local_page_bytes(desc, page_addr)
                if data is None:
                    raise KhazanaError(
                        f"page {page_addr:#x} vanished during write-shared "
                        f"acquire"
                    )
                self._twins[(ctx.ctx_id, page_addr)] = data
        for page_addr in pages:
            note_acquired(page_addr)

    def _fetch_replica_batch(self, desc: RegionDescriptor, pages: List[int],
                             principal: str = "_khazana") -> ProtocolGen:
        reply = yield from self._home_request(
            desc, MessageType.PAGE_FETCH_BATCH,
            {"rid": desc.rid, "pages": list(pages), "register": True,
             "principal": principal},
        )
        for item in reply.payload.get("pages", []):
            page_addr = int(item["page"])
            yield from self.host.store_local_page(
                desc, page_addr, item["data"], dirty=False
            )
            self._versions[page_addr] = item.get("version", 0)
            self.page_state[page_addr] = LocalPageState.SHARED
            entry = self.host.page_directory.ensure(
                page_addr, desc.rid, homed=False
            )
            entry.allocated = True
        errors = reply.payload.get("errors") or []
        if errors:
            from repro.core.errors import error_from_code

            first = errors[0]
            raise error_from_code(first["code"], first.get("detail", ""))

    def _acquire_token_batch(self, desc: RegionDescriptor, pages: List[int],
                             principal: str = "_khazana") -> ProtocolGen:
        # The home grants all tokens or none (it NAKs the whole batch),
        # so a denial leaves nothing to roll back remotely.
        reply = yield from self._home_request(
            desc, MessageType.TOKEN_ACQUIRE_BATCH,
            {"rid": desc.rid, "pages": list(pages),
             "mode": LockMode.WRITE.value, "principal": principal},
        )
        for item in reply.payload.get("pages", []):
            page_addr = int(item["page"])
            yield from self.host.store_local_page(
                desc, page_addr, item["data"], dirty=False
            )
            self._versions[page_addr] = item.get("version", 0)
            self.page_state[page_addr] = LocalPageState.EXCLUSIVE
            entry = self.host.page_directory.ensure(
                page_addr, desc.rid, homed=False
            )
            entry.allocated = True

    def release_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        ctx: LockContext,
    ) -> ProtocolGen:
        me = self.host.node_id
        if (me == desc.primary_home or len(pages) <= 1
                or not self.batching_enabled()):
            yield from super().release_many(desc, pages, ctx)
            return
        updates = []
        for page_addr in pages:
            update = self._release_update(desc, page_addr, ctx)
            if update is not None:
                updates.append(update)
        if not updates:
            return
        try:
            yield from self._home_request(
                desc, MessageType.UPDATE_PUSH_BATCH,
                {"rid": desc.rid, "updates": updates},
            )
        except KhazanaError:
            # Home unreachable (all _home_request failures surface as
            # KhazanaError): token releases and dirty data must not
            # be lost — fall back to one background retry per page.
            logger.warning(
                "batched release to home of region %#x failed; retrying "
                "%d page(s) individually in the background",
                desc.rid, len(updates), exc_info=True,
            )
            for update in updates:
                payload = {"rid": desc.rid, **update}
                self.host.retry_queue.enqueue(
                    lambda payload=payload: self._push_home(
                        desc, payload["page"], payload
                    ),
                    label=f"release-token:{payload['page']:#x}",
                )
            return
        for update in updates:
            if "data" in update or "diff" in update:
                self.host.storage.mark_clean(update["page"])

    def _release_update(self, desc: RegionDescriptor, page_addr: int,
                        ctx: LockContext) -> Optional[Dict[str, Any]]:
        """The per-page entry of an UPDATE_PUSH_BATCH, or None."""
        twin = self._twins.pop((ctx.ctx_id, page_addr), None)
        if ctx.mode is LockMode.WRITE_SHARED:
            if twin is None:
                return None
            page = self.host.storage.peek(page_addr)
            if page is None:
                return None
            diff = compute_diff(twin, page.data)
            if not diff:
                return None
            return {"page": page_addr, "diff": diff, "release_token": False}
        if ctx.mode is not LockMode.WRITE:
            return None
        update: Dict[str, Any] = {"page": page_addr, "release_token": True}
        if page_addr in ctx.dirty_pages:
            page = self.host.storage.peek(page_addr)
            if page is not None:
                update["data"] = page.data
        return update

    # ------------------------------------------------------------------
    # Home side
    # ------------------------------------------------------------------

    def handle_lock_request(self, desc: RegionDescriptor, msg: Message) -> None:
        if self.host.node_id != desc.primary_home:
            self.host.reply_error(msg, "not_responsible", "not primary home")
            return
        if not self.check_remote_access(desc, msg, LockMode.WRITE):
            return
        page_addr = msg.payload["page"]

        def grant() -> ProtocolGen:
            yield self._tokens.acquire(page_addr)
            try:
                data = yield from self.host.local_page_bytes(desc, page_addr)
            except BaseException:
                # Cleanup-then-reraise: must also run when the handler
                # task is killed (GeneratorExit), or the token leaks.
                self._tokens.release(page_addr)
                raise
            if data is None:
                self._tokens.release(page_addr)
                self.host.reply_error(msg, "not_allocated",
                                        f"page {page_addr:#x} has no storage")
                return
            entry = self.host.page_directory.ensure(
                page_addr, desc.rid, homed=True
            )
            entry.record_sharer(msg.src)
            self.host.reply_request(
                msg, MessageType.LOCK_REPLY,
                {"data": data, "version": self._versions.get(page_addr, 0)},
            )
            # Token now belongs to msg.src until its UPDATE_PUSH with
            # release_token=True arrives.
            if self.host.probe.enabled:
                self.host.probe.token_granted(
                    self.host.node_id, page_addr, msg.src
                )

        self.host.spawn_handler(msg, grant(), label="release-token-grant")

    def handle_page_fetch(self, desc: RegionDescriptor, msg: Message) -> None:
        if not self.check_remote_access(desc, msg, LockMode.READ):
            return
        page_addr = msg.payload["page"]

        def serve() -> ProtocolGen:
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is None:
                self.host.reply_error(msg, "not_allocated",
                                        f"page {page_addr:#x} has no storage")
                return
            if msg.payload.get("register"):
                entry = self.host.page_directory.ensure(
                    page_addr, desc.rid, homed=True
                )
                entry.record_sharer(msg.src)
            self.host.reply_request(
                msg, MessageType.PAGE_DATA,
                {"data": data, "version": self._versions.get(page_addr, 0)},
            )

        self.host.spawn_handler(msg, serve(), label="release-fetch")

    def handle_update(self, desc: RegionDescriptor, msg: Message) -> None:
        page_addr = msg.payload["page"]
        if self.host.node_id == desc.primary_home:
            def apply() -> ProtocolGen:
                yield from self._apply_update_at_home(
                    desc,
                    page_addr,
                    diff=msg.payload.get("diff"),
                    data=msg.payload.get("data"),
                    writer=msg.src,
                )
                if msg.payload.get("release_token"):
                    # Probe before the mutex release (it may resume the
                    # next waiter synchronously).
                    if self.host.probe.enabled:
                        self.host.probe.token_released(
                            self.host.node_id, page_addr, msg.src
                        )
                    self._tokens.release(page_addr)
                self.host.reply_request(msg, MessageType.UPDATE_ACK, {})

            self.host.spawn_handler(msg, apply(), label="release-apply")
            return
        # Replica side: a propagated update from the home node.
        self._apply_replica_update(desc, msg)

    def handle_page_fetch_batch(self, desc: RegionDescriptor,
                                msg: Message) -> None:
        if not self.check_remote_access(desc, msg, LockMode.READ):
            return
        pages = [int(p) for p in msg.payload.get("pages", [])]

        def serve() -> ProtocolGen:
            served: List[Dict[str, Any]] = []
            errors: List[Dict[str, Any]] = []
            for page_addr in pages:
                data = yield from self.host.local_page_bytes(desc, page_addr)
                if data is None:
                    errors.append({
                        "page": page_addr, "code": "not_allocated",
                        "detail": f"page {page_addr:#x} has no storage",
                    })
                    continue
                if msg.payload.get("register"):
                    entry = self.host.page_directory.ensure(
                        page_addr, desc.rid, homed=True
                    )
                    entry.record_sharer(msg.src)
                served.append({
                    "page": page_addr, "data": data,
                    "version": self._versions.get(page_addr, 0),
                })
            self.host.reply_request(
                msg, MessageType.PAGE_DATA_BATCH,
                {"pages": served, "errors": errors},
            )

        self.host.spawn_handler(msg, serve(), label="release-fetch-batch")

    def handle_lock_request_batch(self, desc: RegionDescriptor,
                                  msg: Message) -> None:
        if self.host.node_id != desc.primary_home:
            self.host.reply_error(msg, "not_responsible", "not primary home")
            return
        if not self.check_remote_access(desc, msg, LockMode.WRITE):
            return
        # Ascending order everywhere → concurrent batches cannot
        # deadlock on each other's tokens.
        pages = sorted(int(p) for p in msg.payload.get("pages", []))

        def grant() -> ProtocolGen:
            held: List[int] = []
            granted: List[Dict[str, Any]] = []
            try:
                for page_addr in pages:
                    yield self._tokens.acquire(page_addr)
                    held.append(page_addr)
                    data = yield from self.host.local_page_bytes(
                        desc, page_addr
                    )
                    if data is None:
                        # All-or-nothing: give back every token held so
                        # far so a denied batch leaves no residue.
                        for token_page in held:
                            self._tokens.release(token_page)
                        self.host.reply_error(
                            msg, "not_allocated",
                            f"page {page_addr:#x} has no storage",
                        )
                        return
                    granted.append({
                        "page": page_addr, "data": data,
                        "version": self._versions.get(page_addr, 0),
                    })
            except BaseException:
                # Cleanup-then-reraise: must also run when the handler
                # task is killed (GeneratorExit), or held tokens leak.
                for token_page in held:
                    self._tokens.release(token_page)
                raise
            for page_addr in pages:
                entry = self.host.page_directory.ensure(
                    page_addr, desc.rid, homed=True
                )
                entry.record_sharer(msg.src)
            self.host.reply_request(
                msg, MessageType.TOKEN_GRANT_BATCH, {"pages": granted}
            )
            # Tokens now belong to msg.src until its UPDATE_PUSH_BATCH
            # with release_token=True arrives.
            if self.host.probe.enabled:
                for page_addr in pages:
                    self.host.probe.token_granted(
                        self.host.node_id, page_addr, msg.src
                    )

        self.host.spawn_handler(msg, grant(), label="release-token-batch")

    def handle_update_batch(self, desc: RegionDescriptor,
                            msg: Message) -> None:
        if self.host.node_id != desc.primary_home:
            self.host.reply_error(msg, "not_responsible",
                                    "batched updates go to the primary home")
            return
        updates = msg.payload.get("updates", [])

        def apply() -> ProtocolGen:
            applied = 0
            for update in updates:
                page_addr = int(update["page"])
                yield from self._apply_update_at_home(
                    desc, page_addr,
                    diff=update.get("diff"),
                    data=update.get("data"),
                    writer=msg.src,
                )
                if update.get("release_token"):
                    # Probe before the mutex release (it may resume the
                    # next waiter synchronously).
                    if self.host.probe.enabled:
                        self.host.probe.token_released(
                            self.host.node_id, page_addr, msg.src
                        )
                    self._tokens.release(page_addr)
                applied += 1
            self.host.reply_request(
                msg, MessageType.UPDATE_ACK_BATCH, {"applied": applied}
            )

        self.host.spawn_handler(msg, apply(), label="release-apply-batch")

    def _apply_update_at_home(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        diff: Optional[List[Tuple[int, bytes]]],
        data: Optional[bytes],
        writer: int,
    ) -> ProtocolGen:
        if data is None and diff is not None:
            base = yield from self.host.local_page_bytes(desc, page_addr)
            if base is None:
                base = b"\x00" * desc.page_size
            data = apply_diff(base, [(int(o), bytes(d)) for o, d in diff])
        if data is None:
            return
        yield from self.host.store_local_page(desc, page_addr, data, dirty=False)
        version = self._versions.get(page_addr, 0) + 1
        self._versions[page_addr] = version
        entry = self.host.page_directory.ensure(page_addr, desc.rid, homed=True)
        entry.allocated = True
        entry.version = version
        # Propagate to every replica site except the writer (one-way;
        # replicas that miss an update catch up at their next fetch).
        for sharer in entry.copyset_excluding(self.host.node_id):
            if sharer == writer:
                continue
            self.host.rpc.send(
                Message(
                    msg_type=MessageType.UPDATE_PUSH,
                    src=self.host.node_id,
                    dst=sharer,
                    payload={"rid": desc.rid, "page": page_addr,
                             "data": data, "version": version,
                             "fanout": True},
                )
            )

    def _apply_replica_update(self, desc: RegionDescriptor, msg: Message) -> None:
        page_addr = msg.payload["page"]
        data = msg.payload.get("data")
        version = msg.payload.get("version", 0)
        if data is None:
            return

        def apply() -> None:
            if version <= self._versions.get(page_addr, -1):
                return  # stale fanout, already newer locally
            if not self.host.storage.contains(page_addr):
                # We no longer replicate this page; ignore.
                return
            self._versions[page_addr] = version

            def store() -> ProtocolGen:
                yield from self.host.store_local_page(
                    desc, page_addr, data, dirty=False
                )

            self.host.spawn(store(), label="release-replica-store")

        if self.host.lock_table.page_locked(page_addr):
            # Never change a page under an open local context.
            self.defer_until_unlocked(page_addr, apply)
        else:
            apply()

    def on_node_failure(self, node_id: int) -> None:
        self.host.page_directory.forget_node(node_id)
