"""Release consistency.

"For example, for the address map tree nodes, we use a release
consistent protocol" (paper Section 3.3, citing Gharachorloo et al.).
In the DSM tradition the authors come from (Munin/TreadMarks):

a *read* lock is satisfied from any local replica, however stale; a
*write* lock acquires a per-page write token from the home node (which
also supplies the latest contents, so writers serialize); a
*write-shared* lock takes no token — concurrent writers keep a twin
and push byte-range diffs at release, which the home merges.  At
*release*, dirty data goes to the home, which bumps the page version
and propagates the update to every registered replica site (3.3);
updates arriving under an open local context are deferred until that
context is released.

The write tokens live in the engine's
:class:`~repro.consistency.engine.CopysetLedger` (probe ordering +
conservation invariant); twins/diffs in :mod:`repro.consistency.diffs`.
"""

from __future__ import annotations

import logging

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.consistency.diffs import TwinStore, apply_diff, compute_diff
from repro.consistency.engine import PageEvent, install_replica_update
from repro.consistency.manager import (
    ConsistencyManager,
    LocalPageState,
    ProtocolGen,
    register_protocol,
)
from repro.core.errors import KhazanaError, LockDenied
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.rpc import RetryPolicy

if TYPE_CHECKING:
    from repro.core.cmhost import CMHost

TOKEN_POLICY = RetryPolicy(timeout=10.0, retries=2, backoff=1.5)

logger = logging.getLogger(__name__)

__all__ = ["ReleaseManager", "TOKEN_POLICY", "apply_diff", "compute_diff"]


@register_protocol
class ReleaseManager(ConsistencyManager):
    """Consistency manager implementing release consistency."""

    protocol_name = "release"

    #: Replicas are SHARED (stale reads allowed); the write token is
    #: EXCLUSIVE.  Pushed updates refresh replicas, never invalidate.
    TRANSITIONS = {
        PageEvent.READ_FILL: LocalPageState.SHARED,
        PageEvent.WRITE_GRANT: LocalPageState.EXCLUSIVE,
    }

    def __init__(self, host: "CMHost") -> None:
        super().__init__(host)
        self._versions: Dict[int, int] = {}   # page -> version (home: authoritative)
        self._twins = TwinStore()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def acquire(self, desc: RegionDescriptor, page_addr: int,
                mode: LockMode, ctx: LockContext) -> ProtocolGen:
        if mode is LockMode.READ:
            if self.host.storage.contains(page_addr):
                return  # any replica satisfies a read acquire
            if self.host.node_id == desc.primary_home:
                data = yield from self.host.local_page_bytes(desc, page_addr)
                if data is None:
                    raise KhazanaError(
                        f"home lost page {page_addr:#x} of region {desc.rid:#x}"
                    )
                return
            yield from self._fetch_replica(desc, page_addr, ctx.principal)
            return
        if mode is LockMode.WRITE:
            yield from self._acquire_token(desc, page_addr, ctx.principal)
            return
        # WRITE_SHARED: no token; remember a twin for diffing.
        data = yield from self._ensure_local_copy(desc, page_addr)
        self._twins.remember(ctx.ctx_id, page_addr, data)

    def _install_page(self, desc: RegionDescriptor, page_addr: int,
                      data: bytes, version: int,
                      event: PageEvent) -> ProtocolGen:
        """Store a home-served page locally and record its version;
        shared by the replica-fetch and token-acquire installs."""
        yield from self.host.store_local_page(desc, page_addr, data, dirty=False)
        self._versions[page_addr] = version
        self.pages.fire(page_addr, event)
        entry = self.host.page_directory.ensure(page_addr, desc.rid, homed=False)
        entry.allocated = True

    def _install_items(self, desc: RegionDescriptor, reply: Message,
                       event: PageEvent) -> ProtocolGen:
        for item in reply.payload.get("pages", []):
            yield from self._install_page(
                desc, int(item["page"]), item["data"],
                item.get("version", 0), event,
            )

    def _grant_from_home(self, desc: RegionDescriptor, page_addr: int,
                         msg_type: MessageType, payload: Dict[str, Any],
                         event: PageEvent) -> ProtocolGen:
        reply = yield from self._home_request(desc, msg_type, payload)
        yield from self._install_page(
            desc, page_addr, reply.payload["data"],
            reply.payload.get("version", 0), event)

    def _fetch_replica(self, desc: RegionDescriptor, page_addr: int,
                       principal: str = "_khazana") -> ProtocolGen:
        yield from self._grant_from_home(
            desc, page_addr, MessageType.PAGE_FETCH,
            {"rid": desc.rid, "page": page_addr, "register": True,
             "principal": principal},
            PageEvent.READ_FILL,
        )

    def _ensure_local_copy(self, desc: RegionDescriptor, page_addr: int) -> ProtocolGen:
        if not self.host.storage.contains(page_addr):
            if self.host.node_id == desc.primary_home:
                data = yield from self.host.local_page_bytes(desc, page_addr)
                if data is None:
                    raise KhazanaError(f"home lost page {page_addr:#x}")
                return data
            yield from self._fetch_replica(desc, page_addr)
        data = yield from self.host.local_page_bytes(desc, page_addr)
        return data

    def _acquire_token(self, desc: RegionDescriptor, page_addr: int,
                       principal: str = "_khazana") -> ProtocolGen:
        me = self.host.node_id
        if me == desc.primary_home:
            yield self.engine.ledger.acquire(page_addr)
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is None:
                self.engine.ledger.abort(page_addr)
                raise KhazanaError(f"home lost page {page_addr:#x}")
            self.engine.ledger.grant(page_addr, me)
            self.pages.fire(page_addr, PageEvent.WRITE_GRANT)
            return
        yield from self._grant_from_home(
            desc, page_addr, MessageType.LOCK_REQUEST,
            {"rid": desc.rid, "page": page_addr,
             "mode": LockMode.WRITE.value, "principal": principal},
            PageEvent.WRITE_GRANT,
        )

    def _home_request(self, desc: RegionDescriptor, msg_type: MessageType,
                      payload: Dict[str, Any]) -> ProtocolGen:
        return (yield from self.engine.request_home(
            desc, msg_type, payload, policy=TOKEN_POLICY,
            fail="no home node of region {rid:#x} answered: {error}",
        ))

    def release(self, desc: RegionDescriptor, page_addr: int,
                ctx: LockContext) -> ProtocolGen:
        update = self._release_update(desc, page_addr, ctx)
        if update is None:
            return
        if self.host.node_id == desc.primary_home:
            yield from self._apply_pushed(desc, page_addr, update,
                                          self.host.node_id)
            return
        payload: Dict[str, Any] = {"rid": desc.rid, **update}
        if ctx.mode is LockMode.WRITE_SHARED:
            yield from self._push_home(desc, page_addr, payload)
            return
        try:
            yield from self._push_home(desc, page_addr, payload)
            self.host.storage.mark_clean(page_addr)
        except LockDenied:
            # Token release must not be lost; retry in the background
            # (3.5: release-type errors never surface to clients).
            self.host.retry_queue.enqueue(
                lambda: self._push_home(desc, page_addr, payload),
                label=f"release-token:{page_addr:#x}",
            )

    def _push_home(self, desc: RegionDescriptor, page_addr: int,
                   payload: Dict[str, Any]) -> ProtocolGen:
        yield from self._home_request(desc, MessageType.UPDATE_PUSH, payload)

    def _retry_push(self, desc: RegionDescriptor,
                    payload: Dict[str, Any]) -> ProtocolGen:
        yield from self._push_home(desc, payload["page"], payload)

    # ------------------------------------------------------------------
    # Batched multi-page path
    # ------------------------------------------------------------------

    def acquire_many(self, desc: RegionDescriptor, pages: List[int],
                     mode: LockMode, ctx: LockContext,
                     note_acquired: Any) -> ProtocolGen:
        if not self.engine.batch.use_batch(desc, pages):
            # Home-local or trivial ranges gain nothing from batching.
            yield from super().acquire_many(desc, pages, mode, ctx,
                                            note_acquired)
            return
        yield from self.engine.batch.wait_conflicts(pages, mode)
        if mode is LockMode.WRITE:
            # The home grants all tokens or none (it NAKs the whole
            # batch), so a denial leaves nothing to roll back remotely.
            reply = yield from self._home_request(
                desc, MessageType.TOKEN_ACQUIRE_BATCH,
                {"rid": desc.rid, "pages": list(pages),
                 "mode": LockMode.WRITE.value, "principal": ctx.principal},
            )
            yield from self._install_items(desc, reply,
                                           PageEvent.WRITE_GRANT)
        else:
            missing = [p for p in pages
                       if not self.host.storage.contains(p)]
            if missing:
                yield from self._fetch_replica_batch(desc, missing,
                                                     ctx.principal)
            if mode is LockMode.WRITE_SHARED:   # twin every page
                for page_addr in pages:
                    data = yield from self.host.local_page_bytes(
                        desc, page_addr
                    )
                    if data is None:
                        raise KhazanaError(
                            f"page {page_addr:#x} vanished during "
                            f"write-shared acquire"
                        )
                    self._twins.remember(ctx.ctx_id, page_addr, data)
        for page_addr in pages:
            note_acquired(page_addr)

    def _fetch_replica_batch(self, desc: RegionDescriptor, pages: List[int],
                             principal: str = "_khazana") -> ProtocolGen:
        reply = yield from self._home_request(
            desc, MessageType.PAGE_FETCH_BATCH,
            {"rid": desc.rid, "pages": list(pages), "register": True,
             "principal": principal},
        )
        yield from self._install_items(desc, reply, PageEvent.READ_FILL)
        self.engine.raise_batch_errors(reply)

    def release_many(self, desc: RegionDescriptor, pages: List[int],
                     ctx: LockContext) -> ProtocolGen:
        if not self.engine.batch.use_batch(desc, pages):
            yield from super().release_many(desc, pages, ctx)
            return
        updates = []
        for page_addr in pages:
            update = self._release_update(desc, page_addr, ctx)
            if update is not None:
                updates.append(update)
        if not updates:
            return
        try:
            yield from self._home_request(
                desc, MessageType.UPDATE_PUSH_BATCH,
                {"rid": desc.rid, "updates": updates},
            )
        except KhazanaError:
            # Home unreachable (all _home_request failures surface as
            # KhazanaError): token releases and dirty data must not
            # be lost — fall back to one background retry per page.
            logger.warning(
                "batched release to home of region %#x failed; retrying "
                "%d page(s) individually in the background",
                desc.rid, len(updates), exc_info=True,
            )
            self.engine.batch.retry_per_page(
                desc, updates, self._retry_push, "release-token"
            )
            return
        for update in updates:
            if "data" in update or "diff" in update:
                self.host.storage.mark_clean(update["page"])

    def _release_update(self, desc: RegionDescriptor, page_addr: int,
                        ctx: LockContext) -> Optional[Dict[str, Any]]:
        """The per-page entry of an update push, or None."""
        if ctx.mode is LockMode.WRITE_SHARED:
            return self._twins.diff_update(self.host.storage, ctx.ctx_id,
                                           page_addr)
        self._twins.pop(ctx.ctx_id, page_addr)
        if ctx.mode is not LockMode.WRITE:
            return None
        update: Dict[str, Any] = {"page": page_addr, "release_token": True}
        if page_addr in ctx.dirty_pages:
            page = self.host.storage.peek(page_addr)
            if page is not None:
                update["data"] = page.data
        return update

    # ------------------------------------------------------------------
    # Home side
    # ------------------------------------------------------------------

    def _primary_only(self, desc: RegionDescriptor, msg: Message,
                      detail: str = "not primary home") -> bool:
        if self.host.node_id == desc.primary_home:
            return True
        self.engine.nak(msg, "not_responsible", detail)
        return False

    def handle_lock_request(self, desc: RegionDescriptor, msg: Message) -> None:
        if not self._primary_only(desc, msg):
            return
        if not self.check_remote_access(desc, msg, LockMode.WRITE):
            return
        self.engine.serve_token_grants(
            desc, msg, [msg.payload["page"]],
            lambda p, d: {"data": d, "version": self._versions.get(p, 0)},
            lambda granted: self.engine.reply(msg, MessageType.LOCK_REPLY,
                                              granted[0]),
            "grant",
        )

    def handle_lock_request_batch(self, desc: RegionDescriptor,
                                  msg: Message) -> None:
        if not self._primary_only(desc, msg):
            return
        if not self.check_remote_access(desc, msg, LockMode.WRITE):
            return
        # Ascending order everywhere → concurrent batches cannot
        # deadlock on each other's tokens.
        pages = sorted(int(p) for p in msg.payload.get("pages", []))
        self.engine.serve_token_grants(
            desc, msg, pages,
            lambda p, d: {"page": p, "data": d,
                          "version": self._versions.get(p, 0)},
            lambda granted: self.engine.reply(
                msg, MessageType.TOKEN_GRANT_BATCH, {"pages": granted}
            ),
            "grant-batch",
        )

    def handle_page_fetch(self, desc: RegionDescriptor, msg: Message) -> None:
        if not self.check_remote_access(desc, msg, LockMode.READ):
            return
        self.engine.batch.serve_fetch(
            desc, msg,
            lambda p, d: {"data": d, "version": self._versions.get(p, 0)},
        )

    def handle_page_fetch_batch(self, desc: RegionDescriptor,
                                msg: Message) -> None:
        if not self.check_remote_access(desc, msg, LockMode.READ):
            return
        self.engine.batch.serve_fetch_batch(
            desc, msg,
            lambda p, d: {"page": p, "data": d,
                          "version": self._versions.get(p, 0)},
        )

    def _apply_pushed(self, desc: RegionDescriptor, page_addr: int,
                      update: Dict[str, Any], writer: int) -> ProtocolGen:
        """One pushed update at the home, plus its token release."""
        yield from self._apply_update_at_home(
            desc, page_addr, diff=update.get("diff"),
            data=update.get("data"), writer=writer,
        )
        if update.get("release_token"):
            self.engine.ledger.release(page_addr, writer)

    def handle_update(self, desc: RegionDescriptor, msg: Message) -> None:
        page_addr = msg.payload["page"]
        if self.host.node_id == desc.primary_home:
            def apply() -> ProtocolGen:
                yield from self._apply_pushed(desc, page_addr, msg.payload,
                                              msg.src)
                self.engine.reply(msg, MessageType.UPDATE_ACK, {})

            self.engine.spawn_handler(msg, apply(), "apply")
            return
        if msg.request_id is not None:
            # A writer's push landed here through the ordered
            # request_home failover while this node is not the primary.
            # Applying it as a replica update would drop the version
            # and leave the writer hanging for a reply; nak so the
            # failover moves on (or surfaces the real outage).
            self.engine.nak(msg, "not_responsible",
                            "update push needs the primary home")
            return
        # Replica side: a propagated (one-way) update from the home.
        self._apply_replica_update(desc, msg)

    def handle_update_batch(self, desc: RegionDescriptor,
                            msg: Message) -> None:
        if not self._primary_only(desc, msg,
                                  "batched updates go to the primary home"):
            return
        updates = msg.payload.get("updates", [])

        def apply() -> ProtocolGen:
            for update in updates:
                yield from self._apply_pushed(desc, int(update["page"]),
                                              update, msg.src)
            self.engine.reply(
                msg, MessageType.UPDATE_ACK_BATCH,
                {"applied": len(updates)},
            )

        self.engine.spawn_handler(msg, apply(), "apply-batch")

    def _apply_update_at_home(
        self, desc: RegionDescriptor, page_addr: int,
        diff: Optional[List[Tuple[int, bytes]]],
        data: Optional[bytes], writer: int,
    ) -> ProtocolGen:
        if data is None and diff is not None:
            base = yield from self.host.local_page_bytes(desc, page_addr)
            if base is None:
                base = b"\x00" * desc.page_size
            data = apply_diff(base, [(int(o), bytes(d)) for o, d in diff])
        if data is None:
            return
        yield from self.host.store_local_page(desc, page_addr, data, dirty=False)
        version = self._versions.get(page_addr, 0) + 1
        self._versions[page_addr] = version
        entry = self.host.page_directory.ensure(page_addr, desc.rid, homed=True)
        entry.allocated = True
        entry.version = version
        # Propagate to every replica site except the writer (one-way;
        # replicas that miss an update catch up at their next fetch).
        self.engine.fanout_update(
            entry,
            {"rid": desc.rid, "page": page_addr,
             "data": data, "version": version, "fanout": True},
            exclude=(writer,),
        )

    def _apply_replica_update(self, desc: RegionDescriptor, msg: Message) -> None:
        page_addr = msg.payload["page"]
        data = msg.payload.get("data")
        version = msg.payload.get("version", 0)
        if data is None:
            return

        def commit() -> None:
            self._versions[page_addr] = version

        install_replica_update(
            self, desc, page_addr, data,
            fresh=lambda: version > self._versions.get(page_addr, -1),
            commit=commit,
            op="replica-store",
        )

    def on_node_failure(self, node_id: int) -> None:
        self.host.page_directory.forget_node(node_id)
