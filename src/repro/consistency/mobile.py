"""Mobile / disconnected-operation consistency, after Bayou.

Paper Section 7: "Bayou is a system designed to support data sharing
among mobile users ... It is most useful for disconnected operations
and uses a very specialized weak consistency protocol.  In the current
implementation, Khazana does not support disconnected operations or
such a protocol, although we are considering adding a coherence
protocol similar to Bayou's for mobile data."

This module adds that protocol.  Semantics:

- **Writes always succeed locally**, even while the writer is
  partitioned from every other replica — the defining property of
  disconnected operation.  Each committed write gets a Lamport-style
  stamp ``(counter, node_id)``.
- **Reads serve the local replica** (read-your-writes holds trivially);
  a node with no replica fetches one from the home or any known
  sharer, and only fails if it is completely disconnected.
- **Epidemic anti-entropy**: on every CM tick, replicas push their
  newest version of each mobile page to peers drawn from the copyset;
  a receiver holding something *newer* pushes back, so reconciliation
  is bidirectional and convergence needs only transitive connectivity
  — no home involvement (unlike the ``eventual`` protocol, whose
  propagation is home-centred).
- **Conflicts** resolve last-writer-wins by stamp, Bayou's default
  when no application merge procedure is supplied.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.consistency.manager import (
    ConsistencyManager,
    LocalPageState,
    ProtocolGen,
    register_protocol,
)
from repro.core.errors import LockDenied
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout

if TYPE_CHECKING:
    from repro.core.cmhost import CMHost

Stamp = Tuple[int, int]   # (lamport counter, writer node id)

FETCH_POLICY = RetryPolicy(timeout=1.0, retries=1, backoff=2.0)

#: How many peers each replica gossips with per anti-entropy round.
GOSSIP_FANOUT = 2


@register_protocol
class MobileManager(ConsistencyManager):
    """Consistency manager for disconnected (mobile) data."""

    protocol_name = "mobile"

    def __init__(self, host: "CMHost") -> None:
        super().__init__(host)
        self._stamps: Dict[int, Stamp] = {}      # page -> newest stamp held
        self._rids: Dict[int, int] = {}          # page -> region id
        self._descs: Dict[int, RegionDescriptor] = {}
        self._gossip_cursor = 0

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def acquire(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        mode: LockMode,
        ctx: LockContext,
    ) -> ProtocolGen:
        self._rids[page_addr] = desc.rid
        self._descs[desc.rid] = desc
        if self.host.storage.contains(page_addr):
            return   # disconnected or not, the local replica serves
        if self.host.node_id in desc.home_nodes:
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is not None:
                return
        fetched = yield from self._fetch_from_anyone(desc, page_addr)
        if fetched:
            return
        if mode.is_write:
            # Fully disconnected first touch: start from zeroes; the
            # write will be reconciled by stamp when connectivity
            # returns (Bayou's tentative-write spirit).
            yield from self.host.store_local_page(
                desc, page_addr, b"\x00" * desc.page_size, dirty=False
            )
            self.page_state[page_addr] = LocalPageState.SHARED
            return
        raise LockDenied(
            f"page {page_addr:#x}: no local replica and no reachable peer"
        )

    def _fetch_from_anyone(self, desc: RegionDescriptor,
                           page_addr: int) -> ProtocolGen:
        """Try the home nodes, then any hinted sharer."""
        entry = self.host.page_directory.get(page_addr)
        candidates: List[int] = [
            n for n in desc.home_nodes if n != self.host.node_id
        ]
        if entry is not None:
            candidates.extend(
                n for n in sorted(entry.sharers)
                if n not in candidates and n != self.host.node_id
            )
        for peer in candidates:
            try:
                reply = yield self.host.rpc.request(
                    peer, MessageType.PAGE_FETCH,
                    {"rid": desc.rid, "page": page_addr, "register": True},
                    policy=FETCH_POLICY,
                )
            except (RpcTimeout, RemoteError):
                continue
            data = reply.payload["data"]
            yield from self.host.store_local_page(
                desc, page_addr, data, dirty=False
            )
            stamp = reply.payload.get("stamp")
            if stamp:
                self._stamps[page_addr] = (int(stamp[0]), int(stamp[1]))
            self.page_state[page_addr] = LocalPageState.SHARED
            pd = self.host.page_directory.ensure(
                page_addr, desc.rid, homed=False
            )
            pd.record_sharer(peer)
            pd.allocated = True
            return True
        return False

    def release(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        ctx: LockContext,
    ) -> ProtocolGen:
        if page_addr not in ctx.dirty_pages:
            return
        counter, _node = self._stamps.get(page_addr, (0, 0))
        stamp = (counter + 1, self.host.node_id)
        self._stamps[page_addr] = stamp
        # Eager best-effort gossip; unreachable peers catch up via the
        # anti-entropy tick once connectivity returns.
        self._gossip_page(desc, page_addr)
        return
        yield  # pragma: no cover - generator form required

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------

    def _peers_for(self, desc: RegionDescriptor, page_addr: int) -> List[int]:
        me = self.host.node_id
        peers = [n for n in desc.home_nodes if n != me]
        entry = self.host.page_directory.get(page_addr)
        if entry is not None:
            peers.extend(
                n for n in sorted(entry.sharers)
                if n != me and n not in peers
            )
        return peers

    def _gossip_page(self, desc: RegionDescriptor, page_addr: int,
                     targets: Optional[List[int]] = None) -> None:
        page = self.host.storage.peek(page_addr)
        stamp = self._stamps.get(page_addr)
        if page is None or stamp is None:
            return
        peers = targets if targets is not None else self._peers_for(
            desc, page_addr
        )
        for peer in peers:
            self.host.rpc.send(
                Message(
                    msg_type=MessageType.UPDATE_PUSH,
                    src=self.host.node_id,
                    dst=peer,
                    payload={
                        "rid": desc.rid,
                        "page": page_addr,
                        "data": page.data,
                        "stamp": list(stamp),
                        "gossip": True,
                    },
                )
            )

    def tick(self) -> None:
        """One anti-entropy round: rotate gossip across known pages."""
        for page_addr, stamp in list(self._stamps.items()):
            rid = self._rids.get(page_addr)
            desc = self._descs.get(rid) if rid is not None else None
            if desc is None:
                continue
            peers = self._peers_for(desc, page_addr)
            if not peers:
                continue
            self._gossip_cursor += 1
            chosen = [
                peers[(self._gossip_cursor + i) % len(peers)]
                for i in range(min(GOSSIP_FANOUT, len(peers)))
            ]
            self._gossip_page(desc, page_addr, targets=sorted(set(chosen)))

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def handle_page_fetch(self, desc: RegionDescriptor, msg: Message) -> None:
        page_addr = msg.payload["page"]

        def serve() -> ProtocolGen:
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is None:
                self.host.reply_error(msg, "not_allocated",
                                        f"no replica of {page_addr:#x}")
                return
            if msg.payload.get("register"):
                entry = self.host.page_directory.ensure(
                    page_addr, desc.rid,
                    homed=self.host.node_id in desc.home_nodes,
                )
                entry.record_sharer(msg.src)
            stamp = self._stamps.get(page_addr, (0, 0))
            self.host.reply_request(
                msg, MessageType.PAGE_DATA,
                {"data": data, "stamp": list(stamp)},
            )

        self.host.spawn_handler(msg, serve(), label="mobile-fetch")

    def handle_update(self, desc: RegionDescriptor, msg: Message) -> None:
        page_addr = msg.payload["page"]
        incoming: Stamp = tuple(int(x) for x in msg.payload["stamp"])
        self._rids[page_addr] = desc.rid
        self._descs[desc.rid] = desc
        entry = self.host.page_directory.ensure(
            page_addr, desc.rid,
            homed=self.host.node_id in desc.home_nodes,
        )
        entry.record_sharer(msg.src)
        entry.allocated = True
        local = self._stamps.get(page_addr, (0, -1))

        if incoming <= local:
            if incoming < local:
                # Anti-entropy runs both ways: teach the sender.
                self._gossip_page(desc, page_addr, targets=[msg.src])
            if msg.request_id is not None:
                self.host.reply_request(msg, MessageType.UPDATE_ACK, {})
            return

        def apply() -> None:
            if incoming <= self._stamps.get(page_addr, (0, -1)):
                return
            self._stamps[page_addr] = incoming
            if self.host.probe.enabled:
                self.host.probe.remote_update(
                    self.host.node_id, page_addr, msg.src,
                    desc.attrs.protocol,
                )

            def store() -> ProtocolGen:
                yield from self.host.store_local_page(
                    desc, page_addr, msg.payload["data"], dirty=False
                )
                self.page_state[page_addr] = LocalPageState.SHARED

            self.host.spawn(store(), label="mobile-apply")

        if self.host.lock_table.page_locked(page_addr):
            self.defer_until_unlocked(page_addr, apply)
        else:
            apply()
        if msg.request_id is not None:
            self.host.reply_request(msg, MessageType.UPDATE_ACK, {})

    def on_node_failure(self, node_id: int) -> None:
        # Mobile replicas expect peers to vanish and return; keep the
        # copyset hints so gossip resumes after recovery.
        pass
