"""Mobile / disconnected-operation consistency, after Bayou.

Paper Section 7: "Bayou is a system designed to support data sharing
among mobile users ... It is most useful for disconnected operations
and uses a very specialized weak consistency protocol.  In the current
implementation, Khazana does not support disconnected operations or
such a protocol, although we are considering adding a coherence
protocol similar to Bayou's for mobile data."

This module adds that protocol.  Semantics:

- **Writes always succeed locally**, even while the writer is
  partitioned from every other replica — the defining property of
  disconnected operation.  Each committed write gets a Lamport-style
  stamp ``(counter, node_id)``.
- **Reads serve the local replica** (read-your-writes holds trivially);
  a node with no replica fetches one from the home or any known
  sharer, and only fails if it is completely disconnected.
- **Epidemic anti-entropy**: on every CM tick, replicas push their
  newest version of each mobile page to peers drawn from the copyset;
  a receiver holding something *newer* pushes back, so reconciliation
  is bidirectional and convergence needs only transitive connectivity
  — no home involvement (unlike the ``eventual`` protocol, whose
  propagation is home-centred).
- **Conflicts** resolve last-writer-wins by stamp, Bayou's default
  when no application merge procedure is supplied.

Multi-page lock ranges use the engine's
:class:`~repro.consistency.engine.BatchPlanner`: one
``PAGE_FETCH_BATCH`` per reachable peer instead of one ``PAGE_FETCH``
per page, and one ``UPDATE_PUSH_BATCH`` per gossip peer at release.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.consistency.engine import PageEvent, install_replica_update
from repro.consistency.manager import (
    ConsistencyManager,
    LocalPageState,
    ProtocolGen,
    register_protocol,
)
from repro.core.errors import LockDenied
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout

if TYPE_CHECKING:
    from repro.core.cmhost import CMHost

Stamp = Tuple[int, int]   # (lamport counter, writer node id)

FETCH_POLICY = RetryPolicy(timeout=1.0, retries=1, backoff=2.0)

#: How many peers each replica gossips with per anti-entropy round.
GOSSIP_FANOUT = 2


@register_protocol
class MobileManager(ConsistencyManager):
    """Consistency manager for disconnected (mobile) data."""

    protocol_name = "mobile"

    #: Replicas are only ever SHARED — writes never need a grant, and
    #: nothing is ever invalidated, only overwritten by newer stamps.
    TRANSITIONS = {
        PageEvent.READ_FILL: LocalPageState.SHARED,
        PageEvent.REPLICA_APPLY: LocalPageState.SHARED,
    }

    def __init__(self, host: "CMHost") -> None:
        super().__init__(host)
        self._stamps: Dict[int, Stamp] = {}      # page -> newest stamp held
        self._rids: Dict[int, int] = {}          # page -> region id
        self._descs: Dict[int, RegionDescriptor] = {}
        self._gossip_cursor = 0

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def acquire(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        mode: LockMode,
        ctx: LockContext,
    ) -> ProtocolGen:
        self._rids[page_addr] = desc.rid
        self._descs[desc.rid] = desc
        if self.host.storage.contains(page_addr):
            return   # disconnected or not, the local replica serves
        if self.host.node_id in desc.home_nodes:
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is not None:
                return
        fetched = yield from self._fetch_from_anyone(desc, page_addr)
        if fetched:
            return
        if mode.is_write:
            yield from self._first_touch(desc, page_addr)
            return
        raise LockDenied(
            f"page {page_addr:#x}: no local replica and no reachable peer"
        )

    def _first_touch(self, desc: RegionDescriptor,
                     page_addr: int) -> ProtocolGen:
        """Fully disconnected first touch: start from zeroes; the
        write will be reconciled by stamp when connectivity returns
        (Bayou's tentative-write spirit)."""
        yield from self.host.store_local_page(
            desc, page_addr, b"\x00" * desc.page_size, dirty=False
        )
        self.pages.fire(page_addr, PageEvent.READ_FILL)

    def _candidates(self, desc: RegionDescriptor,
                    pages: List[int]) -> List[int]:
        """Home nodes first, then any sharer hinted for the pages."""
        me = self.host.node_id
        candidates: List[int] = [n for n in desc.home_nodes if n != me]
        for page_addr in pages:
            entry = self.host.page_directory.get(page_addr)
            if entry is not None:
                candidates.extend(
                    n for n in sorted(entry.sharers)
                    if n not in candidates and n != me
                )
        return candidates

    def _install_fetched(self, desc: RegionDescriptor, page_addr: int,
                         data: bytes, stamp: Optional[List[int]],
                         peer: int) -> ProtocolGen:
        yield from self.host.store_local_page(
            desc, page_addr, data, dirty=False
        )
        if stamp:
            self._stamps[page_addr] = (int(stamp[0]), int(stamp[1]))
        self.pages.fire(page_addr, PageEvent.READ_FILL)
        pd = self.host.page_directory.ensure(
            page_addr, desc.rid, homed=False
        )
        pd.record_sharer(peer)
        pd.allocated = True

    def _fetch_from_anyone(self, desc: RegionDescriptor,
                           page_addr: int) -> ProtocolGen:
        """Try the home nodes, then any hinted sharer."""
        reply = yield from self.engine.request_any(
            self._candidates(desc, [page_addr]),
            MessageType.PAGE_FETCH,
            {"rid": desc.rid, "page": page_addr, "register": True},
            policy=FETCH_POLICY,
        )
        if reply is None:
            return False
        yield from self._install_fetched(
            desc, page_addr, reply.payload["data"],
            reply.payload.get("stamp"), reply.src,
        )
        return True

    def release(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        ctx: LockContext,
    ) -> ProtocolGen:
        if page_addr not in ctx.dirty_pages:
            return
        self._stamp_write(page_addr)
        # Eager best-effort gossip; unreachable peers catch up via the
        # anti-entropy tick once connectivity returns.
        self._gossip_page(desc, page_addr)
        return
        yield  # pragma: no cover - generator form required

    def _stamp_write(self, page_addr: int) -> Stamp:
        counter, _node = self._stamps.get(page_addr, (0, 0))
        stamp = (counter + 1, self.host.node_id)
        self._stamps[page_addr] = stamp
        return stamp

    def evict(
        self, desc: RegionDescriptor, page_addr: int, data: bytes, dirty: bool
    ) -> ProtocolGen:
        # The default evict pushes without a stamp, which a mobile peer
        # cannot order under last-writer-wins; gossip the replica's
        # stamped bytes one last time instead.
        if dirty:
            stamp = self._stamps.get(page_addr, (0, 0))
            yield self.engine.request(
                desc.primary_home,
                MessageType.UPDATE_PUSH,
                {
                    "rid": desc.rid,
                    "page": page_addr,
                    "data": data,
                    "stamp": list(stamp),
                },
            )
        self.engine.send(
            desc.primary_home,
            MessageType.SHARER_UNREGISTER,
            {"rid": desc.rid, "page": page_addr},
        )
        self._stamps.pop(page_addr, None)
        self.pages.drop(page_addr)

    # ------------------------------------------------------------------
    # Batched multi-page path
    # ------------------------------------------------------------------

    def acquire_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        mode: LockMode,
        ctx: LockContext,
        note_acquired: Callable[[int], None],
    ) -> ProtocolGen:
        # Mobile has no home-mediated path: even a home node fetches
        # from peers, so only range size / config gate the batch.
        if not self.engine.batch.use_batch(desc, pages,
                                           home_local_fallback=False):
            yield from super().acquire_many(desc, pages, mode, ctx,
                                            note_acquired)
            return
        yield from self.engine.batch.wait_conflicts(pages, mode)
        self._descs[desc.rid] = desc
        missing: List[int] = []
        for page_addr in pages:
            self._rids[page_addr] = desc.rid
            if self.host.storage.contains(page_addr):
                continue
            if self.host.node_id in desc.home_nodes:
                data = yield from self.host.local_page_bytes(desc, page_addr)
                if data is not None:
                    continue
            missing.append(page_addr)
        # One batched fetch per peer, narrowing to the still-missing
        # pages — a peer that replicates only part of the range serves
        # what it has and the next candidate fills the rest.
        remaining = list(missing)
        for peer in self._candidates(desc, missing):
            if not remaining:
                break
            try:
                reply = yield self.engine.request(
                    peer, MessageType.PAGE_FETCH_BATCH,
                    {"rid": desc.rid, "pages": list(remaining),
                     "register": True},
                    policy=FETCH_POLICY,
                )
            except (RpcTimeout, RemoteError):
                continue
            for item in reply.payload.get("pages", []):
                page_addr = int(item["page"])
                yield from self._install_fetched(
                    desc, page_addr, item["data"], item.get("stamp"), peer
                )
                remaining.remove(page_addr)
        for page_addr in remaining:
            if mode.is_write:
                yield from self._first_touch(desc, page_addr)
            else:
                raise LockDenied(
                    f"page {page_addr:#x}: no local replica and no "
                    "reachable peer"
                )
        for page_addr in pages:
            note_acquired(page_addr)

    def release_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        ctx: LockContext,
    ) -> ProtocolGen:
        if not self.engine.batch.use_batch(desc, pages,
                                           home_local_fallback=False):
            yield from super().release_many(desc, pages, ctx)
            return
        # One UPDATE_PUSH_BATCH per gossip peer instead of one
        # UPDATE_PUSH per (page, peer); each peer gets only the pages
        # it would have been gossiped under the per-page path.
        per_peer: Dict[int, List[Dict[str, Any]]] = {}
        for page_addr in pages:
            if page_addr not in ctx.dirty_pages:
                continue
            page = self.host.storage.peek(page_addr)
            if page is None:
                continue
            stamp = self._stamp_write(page_addr)
            update = {
                "page": page_addr, "data": page.data,
                "stamp": list(stamp), "gossip": True,
            }
            for peer in self._peers_for(desc, page_addr):
                per_peer.setdefault(peer, []).append(update)
        for peer in sorted(per_peer):
            self.engine.send(
                peer,
                MessageType.UPDATE_PUSH_BATCH,
                {"rid": desc.rid, "updates": per_peer[peer]},
            )
        return
        yield  # pragma: no cover - generator form required

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------

    def _peers_for(self, desc: RegionDescriptor, page_addr: int) -> List[int]:
        me = self.host.node_id
        peers = [n for n in desc.home_nodes if n != me]
        entry = self.host.page_directory.get(page_addr)
        if entry is not None:
            peers.extend(
                n for n in sorted(entry.sharers)
                if n != me and n not in peers
            )
        return peers

    def _gossip_page(self, desc: RegionDescriptor, page_addr: int,
                     targets: Optional[List[int]] = None) -> None:
        page = self.host.storage.peek(page_addr)
        stamp = self._stamps.get(page_addr)
        if page is None or stamp is None:
            return
        peers = targets if targets is not None else self._peers_for(
            desc, page_addr
        )
        for peer in peers:
            self.engine.send(
                peer,
                MessageType.UPDATE_PUSH,
                {
                    "rid": desc.rid,
                    "page": page_addr,
                    "data": page.data,
                    "stamp": list(stamp),
                    "gossip": True,
                },
            )

    def tick(self) -> None:
        """One anti-entropy round: rotate gossip across known pages."""
        for page_addr, stamp in list(self._stamps.items()):
            rid = self._rids.get(page_addr)
            desc = self._descs.get(rid) if rid is not None else None
            if desc is None:
                continue
            peers = self._peers_for(desc, page_addr)
            if not peers:
                continue
            self._gossip_cursor += 1
            chosen = [
                peers[(self._gossip_cursor + i) % len(peers)]
                for i in range(min(GOSSIP_FANOUT, len(peers)))
            ]
            self._gossip_page(desc, page_addr, targets=sorted(set(chosen)))

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def handle_page_fetch(self, desc: RegionDescriptor, msg: Message) -> None:
        def item_payload(page_addr: int, data: bytes) -> Dict[str, Any]:
            stamp = self._stamps.get(page_addr, (0, 0))
            return {"data": data, "stamp": list(stamp)}

        self.engine.batch.serve_fetch(
            desc, msg, item_payload,
            missing_detail=lambda page_addr: f"no replica of {page_addr:#x}",
            homed=self.host.node_id in desc.home_nodes,
        )

    def handle_page_fetch_batch(self, desc: RegionDescriptor,
                                msg: Message) -> None:
        def item_payload(page_addr: int, data: bytes) -> Dict[str, Any]:
            stamp = self._stamps.get(page_addr, (0, 0))
            return {"page": page_addr, "data": data, "stamp": list(stamp)}

        self.engine.batch.serve_fetch_batch(
            desc, msg, item_payload,
            homed=self.host.node_id in desc.home_nodes,
        )

    def _apply_gossip(self, desc: RegionDescriptor, page_addr: int,
                      data: bytes, incoming: Stamp, src: int) -> None:
        """LWW-apply one gossiped page version (shared by the per-page
        and batched update handlers)."""
        self._rids[page_addr] = desc.rid
        self._descs[desc.rid] = desc
        entry = self.host.page_directory.ensure(
            page_addr, desc.rid,
            homed=self.host.node_id in desc.home_nodes,
        )
        entry.record_sharer(src)
        entry.allocated = True
        local = self._stamps.get(page_addr, (0, -1))

        if incoming <= local:
            if incoming < local:
                # Anti-entropy runs both ways: teach the sender.
                self._gossip_page(desc, page_addr, targets=[src])
            return

        def commit() -> None:
            self._stamps[page_addr] = incoming
            if self.host.probe.enabled:
                self.host.probe.remote_update(
                    self.host.node_id, page_addr, src,
                    desc.attrs.protocol,
                )

        install_replica_update(
            self, desc, page_addr, data,
            fresh=lambda: incoming > self._stamps.get(page_addr, (0, -1)),
            commit=commit,
            require_resident=False,   # gossip may seed a new replica
            op="apply",
            on_stored=lambda: self.pages.fire(
                page_addr, PageEvent.REPLICA_APPLY
            ),
        )

    def handle_update(self, desc: RegionDescriptor, msg: Message) -> None:
        page_addr = msg.payload["page"]
        incoming: Stamp = tuple(int(x) for x in msg.payload["stamp"])
        self._apply_gossip(
            desc, page_addr, msg.payload["data"], incoming, msg.src
        )
        if msg.request_id is not None:
            self.engine.reply(msg, MessageType.UPDATE_ACK, {})

    def handle_update_batch(self, desc: RegionDescriptor,
                            msg: Message) -> None:
        updates = msg.payload.get("updates", [])
        for update in updates:
            incoming: Stamp = tuple(int(x) for x in update["stamp"])
            self._apply_gossip(
                desc, int(update["page"]), update["data"], incoming, msg.src
            )
        if msg.request_id is not None:
            self.engine.reply(
                msg, MessageType.UPDATE_ACK_BATCH, {"applied": len(updates)}
            )

    def on_node_failure(self, node_id: int) -> None:
        # Mobile replicas expect peers to vanish and return; keep the
        # copyset hints so gossip resumes after recovery.
        pass
