"""Consistency managers.

Paper Section 3.3: "Program modules called Consistency Managers (CMs)
run at each of the replica sites and cooperate to implement the
required level of consistency among the replicas ... Given this
consistency management framework, a variety of consistency protocols
can be implemented for use by the Khazana to suit various application
needs."

Three protocols ship, mirroring the paper:

- ``crew`` — Concurrent Read Exclusive Write, the strict protocol the
  prototype supports (Section 5), giving Lamport sequential
  consistency.
- ``release`` — release consistency, used for the address-map tree
  nodes (Section 3.3) and available to applications.
- ``eventual`` — the relaxed, bounded-staleness protocol the paper
  plans for web caches and query engines ("can tolerate data that is
  temporarily out-of-date (i.e., one or two versions old)").

New protocols plug in by registering with
:func:`repro.consistency.manager.register_protocol` — "plugging in new
protocols or consistency managers is only a matter of registering them
with Khazana" (Section 5).
"""

from repro.consistency.manager import (
    ConsistencyManager,
    available_protocols,
    create_manager,
    register_protocol,
)

# Importing the protocol modules registers them.
from repro.consistency import crew as _crew          # noqa: F401
from repro.consistency import release as _release    # noqa: F401
from repro.consistency import eventual as _eventual  # noqa: F401
from repro.consistency import mobile as _mobile      # noqa: F401

__all__ = [
    "ConsistencyManager",
    "available_protocols",
    "create_manager",
    "register_protocol",
]
