"""CREW: the Concurrent Read Exclusive Write protocol.

"The only consistency model we currently support is a Concurrent Read
Exclusive Write (CREW) protocol [Lamport 1979]" (paper Section 5).
This is the strict protocol behind ``ConsistencyLevel.STRICT``: many
nodes may cache a page for reading; a writer invalidates every cached
copy and becomes the page's exclusive owner, giving sequentially
consistent data.

The directory lives at the page's *home node* (the region's primary
home): its page-directory entry authoritatively records the current
owner and copyset, exactly as "each region has a home node that ...
keeps track of all the nodes maintaining copies of the region's data"
(Section 3.1).  Requesters with a cached owner hint may contact the
owner directly (the fast path of Figure 2); otherwise the home node
mediates.

Durability addition: because Khazana is a *persistent* store, dirty
pages are written back to every home node at lock release, so a
region with ``min_replicas`` > 1 home nodes survives the loss of any
owner or home (Section 3.5's availability goal).  Between writes and
release, data newer than the home copies exists only at the owner —
the same window the paper's prototype has.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from typing import TYPE_CHECKING

from repro.consistency.manager import (
    ConsistencyManager,
    KeyedMutex,
    LocalPageState,
    ProtocolGen,
    _typed_denial,
    register_protocol,
)
from repro.core.errors import (
    KhazanaError,
    LockDenied,
    NotAllocated,
)
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout
from repro.net.tasks import Future, gather_settled

if TYPE_CHECKING:
    from repro.core.cmhost import CMHost

#: Directory transactions can stall on a peer's open lock context, so
#: their constituent RPCs tolerate long waits before retransmitting.
TRANSACTION_POLICY = RetryPolicy(timeout=10.0, retries=2, backoff=1.5)


@register_protocol
class CrewManager(ConsistencyManager):
    """Consistency manager implementing CREW."""

    protocol_name = "crew"

    def __init__(self, host: "CMHost") -> None:
        super().__init__(host)
        #: Serialises home-side directory transactions per page.
        self._mutex = KeyedMutex()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def acquire(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        mode: LockMode,
        ctx: LockContext,
    ) -> ProtocolGen:
        if mode is LockMode.WRITE_SHARED:
            raise LockDenied(
                "CREW does not support write-shared intentions; "
                "use the release or eventual protocol"
            )
        state = self.page_state.get(page_addr, LocalPageState.INVALID)
        resident = self.host.storage.contains(page_addr)

        if mode is LockMode.READ:
            if state is not LocalPageState.INVALID and resident:
                return  # cached copy is valid for reading
            yield from self._acquire_read(desc, page_addr, ctx.principal)
            return

        # WRITE path
        entry = self.host.page_directory.get(page_addr)
        if (
            state is LocalPageState.EXCLUSIVE
            and resident
            and entry is not None
            and entry.owner == self.host.node_id
        ):
            return  # already the exclusive owner
        yield from self._acquire_write(desc, page_addr, ctx.principal)

    def _acquire_read(self, desc: RegionDescriptor, page_addr: int,
                      principal: str) -> ProtocolGen:
        me = self.host.node_id
        if me in desc.home_nodes and me == desc.primary_home:
            data = yield from self._home_grant(desc, page_addr, LockMode.READ, me)
            if data is not None:
                yield from self.host.store_local_page(
                    desc, page_addr, data, dirty=False
                )
            self.page_state[page_addr] = LocalPageState.SHARED
            return

        # Fast path (Figure 2): a page-directory hint names the owner;
        # ask it directly for a read copy.
        hint = self.host.page_directory.get(page_addr)
        owner_hint = hint.owner if hint is not None else None
        if owner_hint is not None and owner_hint not in (me, desc.primary_home):
            try:
                reply = yield self.host.rpc.request(
                    owner_hint,
                    MessageType.LOCK_REQUEST,
                    {"rid": desc.rid, "page": page_addr,
                     "mode": LockMode.READ.value, "direct": True,
                     "principal": principal},
                    policy=TRANSACTION_POLICY,
                )
            except (RpcTimeout, RemoteError):
                reply = None   # stale hint; fall back to the home node
            if reply is not None:
                yield from self._install_read_copy(desc, page_addr, reply)
                return

        reply = yield from self._request_home(
            desc, page_addr, LockMode.READ, principal
        )
        yield from self._install_read_copy(desc, page_addr, reply)

    def _install_read_copy(
        self, desc: RegionDescriptor, page_addr: int, reply: Message
    ) -> ProtocolGen:
        data = reply.payload.get("data")
        if data is not None:
            yield from self.host.store_local_page(
                desc, page_addr, data, dirty=False
            )
        entry = self.host.page_directory.ensure(
            page_addr, desc.rid, homed=False
        )
        owner = reply.payload.get("owner")
        if owner is not None:
            entry.owner = owner
        entry.allocated = True
        self.page_state[page_addr] = LocalPageState.SHARED

    def _acquire_write(self, desc: RegionDescriptor, page_addr: int,
                       principal: str) -> ProtocolGen:
        me = self.host.node_id
        if me == desc.primary_home:
            data = yield from self._home_grant(desc, page_addr, LockMode.WRITE, me)
            if data is not None:
                yield from self.host.store_local_page(
                    desc, page_addr, data, dirty=True
                )
            self.page_state[page_addr] = LocalPageState.EXCLUSIVE
            return
        reply = yield from self._request_home(desc, page_addr,
                                              LockMode.WRITE, principal)
        data = reply.payload.get("data")
        if data is not None:
            yield from self.host.store_local_page(
                desc, page_addr, data, dirty=True
            )
        elif not self.host.storage.contains(page_addr):
            raise KhazanaError(
                f"write grant for page {page_addr:#x} carried no data and "
                "no local copy exists"
            )
        entry = self.host.page_directory.ensure(
            page_addr, desc.rid, homed=False
        )
        entry.owner = me
        entry.allocated = True
        self.page_state[page_addr] = LocalPageState.EXCLUSIVE

    def _request_home(
        self, desc: RegionDescriptor, page_addr: int, mode: LockMode,
        principal: str,
    ) -> ProtocolGen:
        """Ask the region's home nodes (in order) for a lock grant."""
        last_error: Optional[Exception] = None
        for home in desc.home_nodes:
            if home == self.host.node_id:
                continue
            try:
                reply = yield self.host.rpc.request(
                    home,
                    MessageType.LOCK_REQUEST,
                    {"rid": desc.rid, "page": page_addr, "mode": mode.value,
                     "principal": principal},
                    policy=TRANSACTION_POLICY,
                )
                return reply
            except RpcTimeout as error:
                last_error = error   # try the next home (Section 3.5)
            except RemoteError as error:
                raise _typed_denial(error) from error
        raise LockDenied(
            f"no home node of region {desc.rid:#x} granted the lock: "
            f"{last_error}"
        )

    def release(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        ctx: LockContext,
    ) -> ProtocolGen:
        """Write dirty data back to every home node at unlock.

        CREW itself moves data only on demand; the write-back provides
        the persistence/availability the paper requires of Khazana's
        storage (home copies stay current so a crashed owner loses at
        most the current lock generation's writes).
        """
        if page_addr not in ctx.dirty_pages:
            return
        page = self.host.storage.peek(page_addr)
        if page is None:
            return
        pushes = []
        for home in desc.home_nodes:
            if home == self.host.node_id:
                continue
            pushes.append(
                self.host.rpc.request(
                    home,
                    MessageType.UPDATE_PUSH,
                    {
                        "rid": desc.rid,
                        "page": page_addr,
                        "data": page.data,
                        "release_token": False,
                    },
                    policy=TRANSACTION_POLICY,
                )
            )
        if pushes:
            # Best effort: unreachable homes are repaired by the
            # replica maintenance loop, not by failing the unlock
            # (release-type errors never surface to clients, 3.5).
            yield gather_settled(pushes, label="crew-writeback")
        if self.host.node_id == desc.primary_home:
            self.host.storage.mark_clean(page_addr)

    # ------------------------------------------------------------------
    # Batched multi-page path
    # ------------------------------------------------------------------

    def acquire_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        mode: LockMode,
        ctx: LockContext,
        note_acquired: Callable[[int], None],
    ) -> ProtocolGen:
        if mode is LockMode.WRITE_SHARED:
            raise LockDenied(
                "CREW does not support write-shared intentions; "
                "use the release or eventual protocol"
            )
        me = self.host.node_id
        if (me == desc.primary_home or len(pages) <= 1
                or not self.batching_enabled()):
            yield from super().acquire_many(desc, pages, mode, ctx,
                                            note_acquired)
            return
        for page_addr in pages:
            yield from self.host.wait_local_conflicts(page_addr, mode)
        batched: List[int] = []
        for page_addr in pages:
            state = self.page_state.get(page_addr, LocalPageState.INVALID)
            resident = self.host.storage.contains(page_addr)
            entry = self.host.page_directory.get(page_addr)
            if mode is LockMode.READ:
                if state is not LocalPageState.INVALID and resident:
                    continue   # cached copy is valid for reading
                owner_hint = entry.owner if entry is not None else None
                if owner_hint is not None and owner_hint not in (
                    me, desc.primary_home
                ):
                    # Figure 2's direct-owner fast path stays per-page;
                    # only home-mediated pages join the batch.
                    yield from self._acquire_read(desc, page_addr,
                                                  ctx.principal)
                    continue
                batched.append(page_addr)
            else:
                if (state is LocalPageState.EXCLUSIVE and resident
                        and entry is not None and entry.owner == me):
                    continue   # already the exclusive owner
                batched.append(page_addr)
        if batched:
            reply = yield from self._request_home_batch(
                desc, batched, mode, ctx.principal
            )
            yield from self._install_batch_grants(desc, mode, reply)
        for page_addr in pages:
            note_acquired(page_addr)

    def _request_home_batch(
        self, desc: RegionDescriptor, pages: List[int], mode: LockMode,
        principal: str,
    ) -> ProtocolGen:
        last_error: Optional[Exception] = None
        for home in desc.home_nodes:
            if home == self.host.node_id:
                continue
            try:
                reply = yield self.host.rpc.request(
                    home,
                    MessageType.TOKEN_ACQUIRE_BATCH,
                    {"rid": desc.rid, "pages": list(pages),
                     "mode": mode.value, "principal": principal},
                    policy=TRANSACTION_POLICY,
                )
                return reply
            except RpcTimeout as error:
                last_error = error   # try the next home (Section 3.5)
            except RemoteError as error:
                raise _typed_denial(error) from error
        raise LockDenied(
            f"no home node of region {desc.rid:#x} granted the batch: "
            f"{last_error}"
        )

    def _install_batch_grants(
        self, desc: RegionDescriptor, mode: LockMode, reply: Message
    ) -> ProtocolGen:
        me = self.host.node_id
        for item in reply.payload.get("pages", []):
            page_addr = int(item["page"])
            data = item.get("data")
            if mode is LockMode.READ:
                if data is not None:
                    yield from self.host.store_local_page(
                        desc, page_addr, data, dirty=False
                    )
                entry = self.host.page_directory.ensure(
                    page_addr, desc.rid, homed=False
                )
                owner = item.get("owner")
                if owner is not None:
                    entry.owner = owner
                entry.allocated = True
                self.page_state[page_addr] = LocalPageState.SHARED
            else:
                if data is not None:
                    yield from self.host.store_local_page(
                        desc, page_addr, data, dirty=True
                    )
                elif not self.host.storage.contains(page_addr):
                    raise KhazanaError(
                        f"write grant for page {page_addr:#x} carried no "
                        "data and no local copy exists"
                    )
                entry = self.host.page_directory.ensure(
                    page_addr, desc.rid, homed=False
                )
                entry.owner = me
                entry.allocated = True
                self.page_state[page_addr] = LocalPageState.EXCLUSIVE
        errors = reply.payload.get("errors") or []
        if errors:
            from repro.core.errors import error_from_code

            first = errors[0]
            raise error_from_code(first["code"], first.get("detail", ""))

    def release_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        ctx: LockContext,
    ) -> ProtocolGen:
        me = self.host.node_id
        if len(pages) <= 1 or not self.batching_enabled():
            yield from super().release_many(desc, pages, ctx)
            return
        updates: List[Dict[str, Any]] = []
        for page_addr in pages:
            if page_addr not in ctx.dirty_pages:
                continue
            page = self.host.storage.peek(page_addr)
            if page is None:
                continue
            updates.append({
                "page": page_addr, "data": page.data,
                "release_token": False,
            })
        if updates:
            # One coalesced write-back per home; distinct homes overlap.
            pushes = []
            for home in desc.home_nodes:
                if home == me:
                    continue
                pushes.append(
                    self.host.rpc.request(
                        home,
                        MessageType.UPDATE_PUSH_BATCH,
                        {"rid": desc.rid, "updates": updates},
                        policy=TRANSACTION_POLICY,
                    )
                )
            if pushes:
                yield gather_settled(pushes, label="crew-writeback-batch")
        if me == desc.primary_home:
            for update in updates:
                self.host.storage.mark_clean(update["page"])

    # ------------------------------------------------------------------
    # Home side
    # ------------------------------------------------------------------

    def _home_grant(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        mode: LockMode,
        requester: int,
    ) -> ProtocolGen:
        """Run a directory transaction at the home node.

        Returns the page bytes the requester needs (None when the
        requester already holds a current copy).
        """
        yield self._mutex.acquire(page_addr)
        try:
            result = yield from self._home_grant_locked(
                desc, page_addr, mode, requester
            )
            return result
        finally:
            self._mutex.release(page_addr)

    def _home_grant_locked(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        mode: LockMode,
        requester: int,
    ) -> ProtocolGen:
        me = self.host.node_id
        entry = self.host.page_directory.ensure(page_addr, desc.rid, homed=True)
        if not entry.allocated:
            raise NotAllocated(
                f"page {page_addr:#x} of region {desc.rid:#x} has no "
                "allocated storage"
            )
        if entry.owner is None:
            entry.owner = me
            entry.record_sharer(me)

        if mode is LockMode.READ:
            data = yield from self._current_data_for_read(desc, entry)
            entry.record_sharer(requester)
            if requester != me and self.page_state.get(page_addr) is (
                LocalPageState.EXCLUSIVE
            ):
                # Handing out a read copy ends our exclusivity; a later
                # local write must invalidate the new sharer.
                self.page_state[page_addr] = LocalPageState.SHARED
            return data

        # WRITE: invalidate every cached copy except the requester's,
        # then move ownership (and data, if needed) to the requester.
        data: Optional[bytes] = None
        victims = [
            node for node in sorted(entry.sharers)
            if node not in (requester, entry.owner)
        ]
        yield from self._invalidate_nodes(desc, entry, page_addr, victims)

        owner = entry.owner
        if owner == requester:
            pass   # upgrade: requester's copy is already current
        elif owner == me:
            data = yield from self._take_local_copy(desc, page_addr,
                                                    invalidate=requester != me)
        else:
            data = yield from self._revoke_owner(desc, entry, page_addr, owner)
            if data is None:
                # Owner unreachable: fall back to the home's write-back
                # copy (paper 3.5: operations retried on known nodes,
                # availability preferred).
                data = yield from self._take_local_copy(
                    desc, page_addr, invalidate=requester != me
                )
        entry.owner = requester
        entry.sharers = {requester}
        if requester == me:
            entry.record_sharer(me)
        if self.host.probe.enabled:
            self.host.probe.exclusive_grant(me, page_addr, requester)
        return data

    def _current_data_for_read(
        self, desc: RegionDescriptor, entry: Any
    ) -> ProtocolGen:
        """Bytes of the page, fetching from a remote owner if the home
        copy is stale (owner holds it EXCLUSIVE)."""
        me = self.host.node_id
        page_addr = entry.address
        if entry.owner == me or me in entry.sharers:
            # A local write context is mid-modification; the CM
            # "delays granting the locks until the conflict is
            # resolved" (3.3) for remote readers too.
            yield from self._wait_local_unlocked(page_addr, LockMode.READ)
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is not None:
                return data
        if entry.owner is not None and entry.owner != me:
            try:
                reply = yield self.host.rpc.request(
                    entry.owner,
                    MessageType.PAGE_FETCH,
                    {"rid": desc.rid, "page": page_addr, "demote": True},
                    policy=TRANSACTION_POLICY,
                )
                data = reply.payload["data"]
                yield from self.host.store_local_page(
                    desc, page_addr, data, dirty=False
                )
                entry.record_sharer(me)
                self.page_state[page_addr] = LocalPageState.SHARED
                return data
            except (RpcTimeout, RemoteError):
                entry.forget_sharer(entry.owner)
        # Fall back to whatever the home has (zero-filled if untouched).
        data = yield from self.host.local_page_bytes(desc, page_addr)
        if data is None:
            raise KhazanaError(
                f"home node lost page {page_addr:#x} and owner is gone"
            )
        entry.owner = me
        entry.record_sharer(me)
        return data

    def _take_local_copy(
        self, desc: RegionDescriptor, page_addr: int, invalidate: bool
    ) -> ProtocolGen:
        """Home surrenders its own copy (waiting out local locks)."""
        yield from self._wait_local_unlocked(page_addr, LockMode.WRITE)
        data = yield from self.host.local_page_bytes(desc, page_addr)
        if data is None:
            raise KhazanaError(f"home has no copy of page {page_addr:#x}")
        if invalidate:
            self.host.drop_local_page(page_addr)
            self.page_state[page_addr] = LocalPageState.INVALID
        return data

    def _revoke_owner(
        self, desc: RegionDescriptor, entry: Any, page_addr: int, owner: int
    ) -> ProtocolGen:
        try:
            reply = yield self.host.rpc.request(
                owner,
                MessageType.PAGE_FETCH,
                {"rid": desc.rid, "page": page_addr, "revoke": True},
                policy=TRANSACTION_POLICY,
            )
            return reply.payload["data"]
        except (RpcTimeout, RemoteError):
            entry.forget_sharer(owner)
            return None

    def _invalidate_nodes(
        self, desc: RegionDescriptor, entry: Any, page_addr: int,
        victims: List[int],
    ) -> ProtocolGen:
        me = self.host.node_id
        requests = []
        for node in victims:
            if node == me:
                yield from self._wait_local_unlocked(page_addr, LockMode.WRITE)
                self.host.drop_local_page(page_addr)
                self.page_state[page_addr] = LocalPageState.INVALID
                entry.forget_sharer(me)
                continue
            requests.append(
                (node, self.host.rpc.request(
                    node,
                    MessageType.INVALIDATE,
                    {"rid": desc.rid, "page": page_addr},
                    policy=TRANSACTION_POLICY,
                ))
            )
        if requests:
            outcomes = yield gather_settled(
                [future for _node, future in requests], label="invalidate"
            )
            for (node, _future), (ok, _value) in zip(requests, outcomes):
                # Whether acked or unreachable, the node no longer
                # counts as a sharer; a crashed node's copy dies with it.
                entry.forget_sharer(node)

    def _wait_local_unlocked(self, page_addr: int, mode: LockMode) -> ProtocolGen:
        """Suspend until no local context conflicts with ``mode``."""
        while self.host.lock_table.conflicts(page_addr, mode):
            gate = Future(label=f"local-unlock:{page_addr:#x}")
            self.defer_until_unlocked(page_addr, lambda: gate.set_result(None))
            yield gate

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def handle_lock_request(self, desc: RegionDescriptor, msg: Message) -> None:
        mode = LockMode(msg.payload["mode"])
        page_addr = msg.payload["page"]
        if not self.check_remote_access(desc, msg, mode):
            return
        if msg.payload.get("direct"):
            self._handle_direct_read(desc, msg, page_addr)
            return
        if self.host.node_id != desc.primary_home:
            self.host.reply_error(msg, "not_responsible",
                                    f"node {self.host.node_id} is not the "
                                    f"primary home of region {desc.rid:#x}")
            return

        def transaction() -> ProtocolGen:
            data = yield from self._home_grant(desc, page_addr, mode, msg.src)
            entry = self.host.page_directory.get(page_addr)
            owner = entry.owner if entry is not None else None
            self.host.reply_request(
                msg, MessageType.LOCK_REPLY,
                {"data": data, "owner": owner},
            )

        self.host.spawn_handler(msg, transaction(), label="crew-grant")

    def _handle_direct_read(
        self, desc: RegionDescriptor, msg: Message, page_addr: int
    ) -> None:
        """Fast-path read served straight from the owner (Figure 2)."""
        entry = self.host.page_directory.get(page_addr)
        state = self.page_state.get(page_addr, LocalPageState.INVALID)
        if (
            entry is None
            or entry.owner != self.host.node_id
            or state is LocalPageState.INVALID
        ):
            self.host.reply_error(msg, "not_responsible",
                                    "stale owner hint")
            return

        def serve() -> ProtocolGen:
            yield from self._wait_local_unlocked(page_addr, LockMode.READ)
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is None:
                self.host.reply_error(msg, "not_responsible",
                                        "owner copy evicted")
                return
            # Register the requester in the home's copyset *before*
            # handing out the copy (steps 7-9 of Figure 2): if the
            # registration raced a later write's invalidation round,
            # the requester could keep a stale copy forever.
            home = desc.primary_home
            if home != self.host.node_id:
                try:
                    yield self.host.rpc.request(
                        home, MessageType.SHARER_REGISTER,
                        {"rid": desc.rid, "page": page_addr,
                         "sharer": msg.src},
                        policy=TRANSACTION_POLICY,
                    )
                except (RpcTimeout, RemoteError):
                    self.host.reply_error(
                        msg, "not_responsible",
                        "could not register the new sharer with the home"
                    )
                    return
            # Demote to shared, then grant.
            self.page_state[page_addr] = LocalPageState.SHARED
            self.host.reply_request(
                msg, MessageType.LOCK_REPLY,
                {"data": data, "owner": self.host.node_id},
            )

        self.host.spawn_handler(msg, serve(), label="crew-direct-read")

    def handle_page_fetch(self, desc: RegionDescriptor, msg: Message) -> None:
        page_addr = msg.payload["page"]
        revoke = bool(msg.payload.get("revoke"))
        demote = bool(msg.payload.get("demote"))

        def serve() -> ProtocolGen:
            wait_mode = LockMode.WRITE if revoke else LockMode.READ
            yield from self._wait_local_unlocked(page_addr, wait_mode)
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is None:
                self.host.reply_error(msg, "not_responsible",
                                        "no local copy")
                return
            if revoke:
                self.host.drop_local_page(page_addr)
                self.page_state[page_addr] = LocalPageState.INVALID
            elif demote:
                self.page_state[page_addr] = LocalPageState.SHARED
                self.host.storage.mark_clean(page_addr)
            self.host.reply_request(
                msg, MessageType.PAGE_DATA, {"data": data}
            )

        self.host.spawn_handler(msg, serve(), label="crew-fetch")

    def handle_invalidate(self, desc: RegionDescriptor, msg: Message) -> None:
        page_addr = msg.payload["page"]

        def apply() -> None:
            self.host.drop_local_page(page_addr)
            self.page_state[page_addr] = LocalPageState.INVALID
            self.host.reply_request(msg, MessageType.INVALIDATE_ACK, {})

        # Paper 3.3: the CM "delays granting" conflicting operations;
        # symmetrically, an invalidation waits for local readers to
        # finish before the copy is destroyed.
        if self.host.lock_table.page_locked(page_addr):
            self.defer_until_unlocked(page_addr, apply)
        else:
            apply()

    def handle_update(self, desc: RegionDescriptor, msg: Message) -> None:
        """Write-back from an owner at lock release (home side)."""
        page_addr = msg.payload["page"]
        data = msg.payload["data"]

        def apply() -> ProtocolGen:
            yield from self.host.store_local_page(
                desc, page_addr, data, dirty=self.host.node_id != desc.primary_home
            )
            entry = self.host.page_directory.ensure(
                page_addr, desc.rid, homed=self.host.node_id in desc.home_nodes
            )
            entry.allocated = True
            if self.page_state.get(page_addr) in (None, LocalPageState.INVALID):
                # This is a durability write-back, not a coherent cached
                # copy: the owner may keep writing without telling us, so
                # we must not appear in the copyset.
                self.page_state[page_addr] = LocalPageState.INVALID
                entry.sharers.discard(self.host.node_id)
            self.host.reply_request(msg, MessageType.UPDATE_ACK, {})

        self.host.spawn_handler(msg, apply(), label="crew-writeback")

    def handle_lock_request_batch(self, desc: RegionDescriptor,
                                  msg: Message) -> None:
        mode = LockMode(msg.payload["mode"])
        if not self.check_remote_access(desc, msg, mode):
            return
        if self.host.node_id != desc.primary_home:
            self.host.reply_error(msg, "not_responsible",
                                    f"node {self.host.node_id} is not the "
                                    f"primary home of region {desc.rid:#x}")
            return
        pages = [int(p) for p in msg.payload.get("pages", [])]

        def transaction() -> ProtocolGen:
            granted: List[Dict[str, Any]] = []
            errors: List[Dict[str, Any]] = []
            for page_addr in pages:
                # Per-page grants with per-page errors: the same
                # partial semantics the sequential path has today (the
                # client rolls its side back on any error).
                try:
                    data = yield from self._home_grant(
                        desc, page_addr, mode, msg.src
                    )
                except KhazanaError as error:
                    errors.append({
                        "page": page_addr,
                        "code": getattr(error, "code", "khazana_error"),
                        "detail": str(error),
                    })
                    continue
                entry = self.host.page_directory.get(page_addr)
                owner = entry.owner if entry is not None else None
                granted.append({
                    "page": page_addr, "data": data, "owner": owner,
                })
            self.host.reply_request(
                msg, MessageType.TOKEN_GRANT_BATCH,
                {"pages": granted, "errors": errors},
            )

        self.host.spawn_handler(msg, transaction(), label="crew-grant-batch")

    def handle_update_batch(self, desc: RegionDescriptor,
                            msg: Message) -> None:
        """Coalesced write-back from an owner at lock release."""
        updates = msg.payload.get("updates", [])

        def apply() -> ProtocolGen:
            me = self.host.node_id
            for update in updates:
                page_addr = int(update["page"])
                yield from self.host.store_local_page(
                    desc, page_addr, update["data"],
                    dirty=me != desc.primary_home,
                )
                entry = self.host.page_directory.ensure(
                    page_addr, desc.rid, homed=me in desc.home_nodes
                )
                entry.allocated = True
                if self.page_state.get(page_addr) in (
                    None, LocalPageState.INVALID
                ):
                    # Durability write-back, not a coherent cached copy
                    # (same discipline as the per-page handler).
                    self.page_state[page_addr] = LocalPageState.INVALID
                    entry.sharers.discard(me)
            self.host.reply_request(
                msg, MessageType.UPDATE_ACK_BATCH, {"applied": len(updates)}
            )

        self.host.spawn_handler(msg, apply(), label="crew-writeback-batch")

    def on_node_failure(self, node_id: int) -> None:
        self.host.page_directory.forget_node(node_id)
