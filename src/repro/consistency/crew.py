"""CREW: the Concurrent Read Exclusive Write protocol.

"The only consistency model we currently support is a Concurrent Read
Exclusive Write (CREW) protocol [Lamport 1979]" (paper Section 5) —
the strict protocol behind ``ConsistencyLevel.STRICT``.  The page's
home node keeps the authoritative owner/copyset entry (Section 3.1);
requesters with a cached owner hint may contact the owner directly
(the fast path of Figure 2).  The copy movement itself — demote or
revoke the owner, invalidate the copyset, wait out local contexts —
is the engine's :class:`~repro.consistency.engine.DirectoryCoherence`;
this module keeps only the CREW policy decisions.

Durability addition: because Khazana is a *persistent* store, dirty
pages are written back to every home node at lock release, so a
region with ``min_replicas`` > 1 home nodes survives the loss of any
owner or home (Section 3.5's availability goal).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from typing import TYPE_CHECKING

from repro.consistency.engine import PageEvent
from repro.consistency.manager import (
    ConsistencyManager,
    LocalPageState,
    ProtocolGen,
    register_protocol,
)
from repro.core.errors import KhazanaError, LockDenied
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout

if TYPE_CHECKING:
    from repro.core.cmhost import CMHost

#: Directory transactions can stall on a peer's open lock context, so
#: their constituent RPCs tolerate long waits before retransmitting.
TRANSACTION_POLICY = RetryPolicy(timeout=10.0, retries=2, backoff=1.5)


@register_protocol
class CrewManager(ConsistencyManager):
    """Consistency manager implementing CREW."""

    protocol_name = "crew"

    #: Full MSI: read copies are SHARED, a write grant is EXCLUSIVE,
    #: handing out a read copy demotes, invalidations and durability
    #: write-backs leave the page INVALID locally.
    TRANSITIONS = {
        PageEvent.READ_FILL: LocalPageState.SHARED,
        PageEvent.WRITE_GRANT: LocalPageState.EXCLUSIVE,
        PageEvent.DEMOTE: LocalPageState.SHARED,
        PageEvent.INVALIDATE: LocalPageState.INVALID,
        PageEvent.WRITEBACK_COPY: LocalPageState.INVALID,
    }

    def __init__(self, host: "CMHost") -> None:
        super().__init__(host)
        self.engine.directory.policy = TRANSACTION_POLICY

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    @staticmethod
    def _reject_write_shared(mode: LockMode) -> None:
        if mode is LockMode.WRITE_SHARED:
            raise LockDenied(
                "CREW does not support write-shared intentions; "
                "use the release or eventual protocol"
            )

    def _satisfied_locally(self, desc: RegionDescriptor, page_addr: int,
                           mode: LockMode) -> bool:
        state = self.pages.state(page_addr)
        resident = self.host.storage.contains(page_addr)
        if mode is LockMode.READ:
            return state is not LocalPageState.INVALID and resident
        entry = self.host.page_directory.get(page_addr)
        return (state is LocalPageState.EXCLUSIVE and resident
                and entry is not None
                and entry.owner == self.host.node_id)

    def acquire(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        mode: LockMode,
        ctx: LockContext,
    ) -> ProtocolGen:
        self._reject_write_shared(mode)
        if self._satisfied_locally(desc, page_addr, mode):
            return
        yield from self._acquire(desc, page_addr, mode, ctx.principal)

    def _acquire(self, desc: RegionDescriptor, page_addr: int,
                 mode: LockMode, principal: str) -> ProtocolGen:
        me = self.host.node_id
        if me == desc.primary_home:
            data = yield from self._home_grant(desc, page_addr, mode, me)
            if data is not None:
                yield from self.host.store_local_page(
                    desc, page_addr, data, dirty=mode is not LockMode.READ
                )
            self.pages.fire(
                page_addr,
                PageEvent.READ_FILL if mode is LockMode.READ
                else PageEvent.WRITE_GRANT,
            )
            return
        if mode is LockMode.READ:
            served = yield from self._direct_read(desc, page_addr, principal)
            if served:
                return
        reply = yield from self.engine.request_home(
            desc,
            MessageType.LOCK_REQUEST,
            {"rid": desc.rid, "page": page_addr,
             "mode": mode.value, "principal": principal},
            policy=TRANSACTION_POLICY,
            fail="no home node of region {rid:#x} granted the lock: {error}",
        )
        yield from self._install_grant(
            desc, page_addr, mode,
            reply.payload.get("data"), reply.payload.get("owner"),
        )

    def _direct_read(self, desc: RegionDescriptor, page_addr: int,
                     principal: str) -> ProtocolGen:
        """Fast path (Figure 2): a page-directory hint names the
        owner; ask it directly for a read copy."""
        me = self.host.node_id
        hint = self.host.page_directory.get(page_addr)
        owner = hint.owner if hint is not None else None
        if owner is None or owner in (me, desc.primary_home):
            return False
        try:
            reply = yield self.engine.request(
                owner,
                MessageType.LOCK_REQUEST,
                {"rid": desc.rid, "page": page_addr,
                 "mode": LockMode.READ.value, "direct": True,
                 "principal": principal},
                policy=TRANSACTION_POLICY,
            )
        except (RpcTimeout, RemoteError):
            return False   # stale hint; fall back to the home node
        yield from self._install_grant(
            desc, page_addr, LockMode.READ,
            reply.payload.get("data"), reply.payload.get("owner"),
        )
        return True

    def _install_grant(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        mode: LockMode,
        data: Optional[bytes],
        owner: Optional[int],
    ) -> ProtocolGen:
        """Install a home/owner grant locally (read copy or write
        ownership); shared by the per-page and batched paths."""
        write = mode is not LockMode.READ
        if data is not None:
            yield from self.host.store_local_page(
                desc, page_addr, data, dirty=write
            )
        elif write and not self.host.storage.contains(page_addr):
            raise KhazanaError(
                f"write grant for page {page_addr:#x} carried no data and "
                "no local copy exists"
            )
        entry = self.host.page_directory.ensure(page_addr, desc.rid,
                                                homed=False)
        if write:
            entry.owner = self.host.node_id
        elif owner is not None:
            entry.owner = owner
        entry.allocated = True
        self.pages.fire(
            page_addr,
            PageEvent.WRITE_GRANT if write else PageEvent.READ_FILL,
        )

    def release(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        ctx: LockContext,
    ) -> ProtocolGen:
        """Write dirty data back to every home node at unlock.

        CREW itself moves data only on demand; the write-back provides
        the persistence the paper requires of Khazana's storage.  Best
        effort: unreachable homes are repaired by the replica
        maintenance loop, not by failing the unlock (3.5).
        """
        if page_addr not in ctx.dirty_pages:
            return
        page = self.host.storage.peek(page_addr)
        if page is None:
            return
        yield from self.engine.push_homes(
            desc,
            MessageType.UPDATE_PUSH,
            {"rid": desc.rid, "page": page_addr, "data": page.data,
             "release_token": False},
            policy=TRANSACTION_POLICY,
            label="crew-writeback",
        )
        if self.host.node_id == desc.primary_home:
            self.host.storage.mark_clean(page_addr)

    # ------------------------------------------------------------------
    # Batched multi-page path
    # ------------------------------------------------------------------

    def acquire_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        mode: LockMode,
        ctx: LockContext,
        note_acquired: Callable[[int], None],
    ) -> ProtocolGen:
        self._reject_write_shared(mode)
        me = self.host.node_id
        if not self.engine.batch.use_batch(desc, pages):
            yield from super().acquire_many(desc, pages, mode, ctx,
                                            note_acquired)
            return
        yield from self.engine.batch.wait_conflicts(pages, mode)
        batched: List[int] = []
        for page_addr in pages:
            if self._satisfied_locally(desc, page_addr, mode):
                continue
            entry = self.host.page_directory.get(page_addr)
            owner_hint = entry.owner if entry is not None else None
            if (mode is LockMode.READ and owner_hint is not None
                    and owner_hint not in (me, desc.primary_home)):
                # Figure 2's direct-owner fast path stays per-page;
                # only home-mediated pages join the batch.
                yield from self._acquire(desc, page_addr, mode,
                                         ctx.principal)
                continue
            batched.append(page_addr)
        if batched:
            reply = yield from self.engine.request_home(
                desc,
                MessageType.TOKEN_ACQUIRE_BATCH,
                {"rid": desc.rid, "pages": list(batched),
                 "mode": mode.value, "principal": ctx.principal},
                policy=TRANSACTION_POLICY,
                fail=("no home node of region {rid:#x} granted the batch: "
                      "{error}"),
            )
            for item in reply.payload.get("pages", []):
                yield from self._install_grant(
                    desc, int(item["page"]), mode,
                    item.get("data"), item.get("owner"),
                )
            self.engine.raise_batch_errors(reply)
        for page_addr in pages:
            note_acquired(page_addr)

    def release_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        ctx: LockContext,
    ) -> ProtocolGen:
        me = self.host.node_id
        # CREW's write-back goes to the *other* homes even from the
        # primary, so there is no home-local fallback here.
        if not self.engine.batch.use_batch(desc, pages,
                                           home_local_fallback=False):
            yield from super().release_many(desc, pages, ctx)
            return
        updates: List[Dict[str, Any]] = []
        for page_addr in pages:
            if page_addr not in ctx.dirty_pages:
                continue
            page = self.host.storage.peek(page_addr)
            if page is None:
                continue
            updates.append({"page": page_addr, "data": page.data,
                            "release_token": False})
        if updates:
            # One coalesced write-back per home; distinct homes overlap.
            yield from self.engine.push_homes(
                desc,
                MessageType.UPDATE_PUSH_BATCH,
                {"rid": desc.rid, "updates": updates},
                policy=TRANSACTION_POLICY,
                label="crew-writeback-batch",
            )
        if me == desc.primary_home:
            for update in updates:
                self.host.storage.mark_clean(update["page"])

    # ------------------------------------------------------------------
    # Home side
    # ------------------------------------------------------------------

    def _home_grant(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        mode: LockMode,
        requester: int,
    ) -> ProtocolGen:
        """Serialized directory transaction at the home node; returns
        the page bytes the requester needs (None when the requester
        already holds a current copy)."""
        result = yield from self.engine.home.run(
            page_addr,
            self.engine.directory.home_grant(desc, page_addr, mode,
                                             requester),
        )
        return result

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    def _primary_only(self, desc: RegionDescriptor, msg: Message) -> bool:
        if self.host.node_id == desc.primary_home:
            return True
        self.engine.nak(msg, "not_responsible",
                        f"node {self.host.node_id} is not the "
                        f"primary home of region {desc.rid:#x}")
        return False

    def handle_lock_request(self, desc: RegionDescriptor, msg: Message) -> None:
        mode = LockMode(msg.payload["mode"])
        page_addr = msg.payload["page"]
        if not self.check_remote_access(desc, msg, mode):
            return
        if msg.payload.get("direct"):
            self.engine.directory.serve_owner_read(desc, msg, page_addr)
            return
        if not self._primary_only(desc, msg):
            return

        def transaction() -> ProtocolGen:
            data = yield from self._home_grant(desc, page_addr, mode, msg.src)
            entry = self.host.page_directory.get(page_addr)
            owner = entry.owner if entry is not None else None
            self.engine.reply(msg, MessageType.LOCK_REPLY,
                              {"data": data, "owner": owner})

        self.engine.spawn_handler(msg, transaction(), "grant")

    def handle_page_fetch(self, desc: RegionDescriptor, msg: Message) -> None:
        self.engine.directory.serve_owner_fetch(desc, msg)

    def handle_invalidate(self, desc: RegionDescriptor, msg: Message) -> None:
        self.engine.directory.serve_invalidate(desc, msg)

    def _install_writeback(
        self, desc: RegionDescriptor, page_addr: int, data: bytes
    ) -> ProtocolGen:
        """Apply one owner write-back at a home (per-page and batched)."""
        me = self.host.node_id
        yield from self.host.store_local_page(
            desc, page_addr, data, dirty=me != desc.primary_home
        )
        entry = self.host.page_directory.ensure(
            page_addr, desc.rid, homed=me in desc.home_nodes
        )
        entry.allocated = True
        if self.pages.state(page_addr) is LocalPageState.INVALID:
            # This is a durability write-back, not a coherent cached
            # copy: the owner may keep writing without telling us, so
            # we must not appear in the copyset.
            self.pages.fire(page_addr, PageEvent.WRITEBACK_COPY)
            entry.sharers.discard(me)

    def handle_update(self, desc: RegionDescriptor, msg: Message) -> None:
        """Write-back from an owner at lock release (home side)."""

        def apply() -> ProtocolGen:
            yield from self._install_writeback(
                desc, msg.payload["page"], msg.payload["data"]
            )
            self.engine.reply(msg, MessageType.UPDATE_ACK, {})

        self.engine.spawn_handler(msg, apply(), "writeback")

    def handle_lock_request_batch(self, desc: RegionDescriptor,
                                  msg: Message) -> None:
        mode = LockMode(msg.payload["mode"])
        if not self.check_remote_access(desc, msg, mode):
            return
        if not self._primary_only(desc, msg):
            return
        pages = [int(p) for p in msg.payload.get("pages", [])]

        def transaction() -> ProtocolGen:
            granted: List[Dict[str, Any]] = []
            errors: List[Dict[str, Any]] = []
            for page_addr in pages:
                # Per-page grants with per-page errors: the same
                # partial semantics the sequential path has today (the
                # client rolls its side back on any error).
                try:
                    data = yield from self._home_grant(
                        desc, page_addr, mode, msg.src
                    )
                except KhazanaError as error:
                    errors.append(self.engine.batch.error_item(
                        page_addr, error
                    ))
                    continue
                entry = self.host.page_directory.get(page_addr)
                owner = entry.owner if entry is not None else None
                granted.append({"page": page_addr, "data": data,
                                "owner": owner})
            self.engine.reply(msg, MessageType.TOKEN_GRANT_BATCH,
                              {"pages": granted, "errors": errors})

        self.engine.spawn_handler(msg, transaction(), "grant-batch")

    def handle_update_batch(self, desc: RegionDescriptor,
                            msg: Message) -> None:
        """Coalesced write-back from an owner at lock release."""
        updates = msg.payload.get("updates", [])

        def apply() -> ProtocolGen:
            for update in updates:
                yield from self._install_writeback(
                    desc, int(update["page"]), update["data"]
                )
            self.engine.reply(
                msg, MessageType.UPDATE_ACK_BATCH, {"applied": len(updates)}
            )

        self.engine.spawn_handler(msg, apply(), "writeback-batch")

    def on_node_failure(self, node_id: int) -> None:
        self.host.page_directory.forget_node(node_id)
