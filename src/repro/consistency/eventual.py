"""Bounded-staleness ("eventual") consistency.

The paper plans this protocol for consumers beyond the prototype's
CREW: "We plan to experiment with even more relaxed models for
applications such as web caches and some database query engines for
which release consistency is overkill.  Such applications typically
can tolerate data that is temporarily out-of-date (i.e., one or two
versions old) as long as they get fast response." (Section 3.3)

Semantics:

- Reads are always served from the local replica when it is within the
  staleness bound (age in virtual seconds, and version lag at the time
  of last contact); otherwise the replica is refreshed from the home
  node — but if the home is unreachable the stale copy is served
  anyway, trading freshness for availability.
- Writes never take tokens; they apply locally and are pushed to the
  home at release, where last-writer-wins ordering by (version,
  writer id) resolves conflicts.
- The home batches fan-out: replicas receive updates on the CM's
  anti-entropy tick rather than per write, so bursts of writes cost
  one propagation round.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Set, Tuple

from typing import TYPE_CHECKING

from repro.consistency.engine import PageEvent, install_replica_update
from repro.consistency.manager import (
    ConsistencyManager,
    LocalPageState,
    ProtocolGen,
    register_protocol,
)
from repro.core.errors import KhazanaError, LockDenied
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout

if TYPE_CHECKING:
    from repro.core.cmhost import CMHost

#: Maximum age (virtual seconds) a local replica may have before a
#: read acquire refreshes it from the home node.
DEFAULT_STALENESS_BOUND = 2.0

#: How often the home pushes batched updates to replica sites.
ANTI_ENTROPY_PERIOD = 0.5

FETCH_POLICY = RetryPolicy(timeout=2.0, retries=1, backoff=2.0)


@register_protocol
class EventualManager(ConsistencyManager):
    """Consistency manager implementing bounded-staleness replication."""

    protocol_name = "eventual"

    #: Replicas are only ever SHARED: writes apply locally without a
    #: grant, and staleness is tracked by time/version, not by an
    #: EXCLUSIVE or INVALID state.
    TRANSITIONS = {
        PageEvent.READ_FILL: LocalPageState.SHARED,
    }

    def __init__(self, host: "CMHost",
                 staleness_bound: float = DEFAULT_STALENESS_BOUND) -> None:
        super().__init__(host)
        self.staleness_bound = staleness_bound
        self._versions: Dict[int, Tuple[int, int]] = {}  # page -> (ver, writer)
        self._refreshed_at: Dict[int, float] = {}        # page -> virtual time
        self._dirty_fanout: Set[int] = set()             # home: pages to push
        self._rids: Dict[int, int] = {}                  # page -> region id

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def acquire(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        mode: LockMode,
        ctx: LockContext,
    ) -> ProtocolGen:
        me = self.host.node_id
        self._rids[page_addr] = desc.rid
        if me == desc.primary_home:
            data = yield from self.host.local_page_bytes(desc, page_addr)
            if data is None:
                raise KhazanaError(f"home lost page {page_addr:#x}")
            return

        have_copy = self.host.storage.contains(page_addr)
        age = self.host.now - self._refreshed_at.get(
            page_addr, float("-inf")
        )
        if have_copy and age <= self.staleness_bound:
            return   # fresh enough; fast response (the whole point)
        try:
            yield from self._refresh(desc, page_addr, ctx.principal)
        except LockDenied:
            if not have_copy:
                raise
            # Home unreachable: serve the stale copy rather than fail
            # (availability over freshness for this protocol).

    def _install_refresh(self, desc: RegionDescriptor, page_addr: int,
                         data: bytes, version: int,
                         writer: int) -> ProtocolGen:
        """Install one home-served page and stamp its freshness."""
        yield from self.host.store_local_page(
            desc, page_addr, data, dirty=False
        )
        self._versions[page_addr] = (version, writer)
        self._refreshed_at[page_addr] = self.host.now
        self.pages.fire(page_addr, PageEvent.READ_FILL)
        entry = self.host.page_directory.ensure(
            page_addr, desc.rid, homed=False
        )
        entry.allocated = True

    def _refresh(self, desc: RegionDescriptor, page_addr: int,
                 principal: str = "_khazana") -> ProtocolGen:
        # NAKs fail over to the next home just like timeouts: this
        # protocol prefers availability over surfacing a denial.
        reply = yield from self.engine.request_home(
            desc, MessageType.PAGE_FETCH,
            {"rid": desc.rid, "page": page_addr, "register": True,
             "principal": principal},
            policy=FETCH_POLICY,
            fail="no home of region {rid:#x} reachable: {error}",
            nak="skip",
        )
        yield from self._install_refresh(
            desc, page_addr, reply.payload["data"],
            reply.payload.get("version", 0), reply.payload.get("writer", 0),
        )

    def release(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        ctx: LockContext,
    ) -> ProtocolGen:
        if page_addr not in ctx.dirty_pages:
            return
        me = self.host.node_id
        page = self.host.storage.peek(page_addr)
        if page is None:
            return
        version, _writer = self._versions.get(page_addr, (0, 0))
        version += 1
        self._versions[page_addr] = (version, me)
        self._refreshed_at[page_addr] = self.host.now
        if me == desc.primary_home:
            self._record_home_write(desc, page_addr, version, me)
            return
        payload = {
            "rid": desc.rid,
            "page": page_addr,
            "data": page.data,
            "version": version,
            "writer": me,
            "release_token": False,
        }
        try:
            yield self.engine.request(
                desc.primary_home, MessageType.UPDATE_PUSH, payload,
                policy=FETCH_POLICY,
            )
            self.host.storage.mark_clean(page_addr)
        except (RpcTimeout, RemoteError):
            # Release-type failure: hand to the background retry queue
            # (paper 3.5); the local copy stays dirty meanwhile.
            self.host.retry_queue.enqueue(
                lambda: self._retry_push(desc, payload),
                label=f"eventual-push:{page_addr:#x}",
            )

    def _retry_push(self, desc: RegionDescriptor, payload: Dict[str, Any]) -> ProtocolGen:
        yield self.engine.request(
            desc.primary_home, MessageType.UPDATE_PUSH, payload,
            policy=FETCH_POLICY,
        )
        self.host.storage.mark_clean(payload["page"])

    def _record_home_write(self, desc: RegionDescriptor, page_addr: int,
                           version: int, writer: int) -> None:
        entry = self.host.page_directory.ensure(page_addr, desc.rid, homed=True)
        entry.allocated = True
        entry.version = version
        self._dirty_fanout.add(page_addr)

    # ------------------------------------------------------------------
    # Batched multi-page path
    # ------------------------------------------------------------------

    def acquire_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        mode: LockMode,
        ctx: LockContext,
        note_acquired: Callable[[int], None],
    ) -> ProtocolGen:
        if not self.engine.batch.use_batch(desc, pages):
            yield from super().acquire_many(desc, pages, mode, ctx,
                                            note_acquired)
            return
        for page_addr in pages:
            yield from self.host.wait_local_conflicts(page_addr, mode)
            self._rids[page_addr] = desc.rid
        now = self.host.now
        stale = [
            p for p in pages
            if not (self.host.storage.contains(p)
                    and now - self._refreshed_at.get(p, float("-inf"))
                    <= self.staleness_bound)
        ]
        if stale:
            try:
                yield from self._refresh_batch(desc, stale, ctx.principal)
            except LockDenied:
                # Home unreachable: stale copies may still serve, but a
                # page we have never held is a hard failure.
                if any(not self.host.storage.contains(p) for p in stale):
                    raise
        for page_addr in pages:
            note_acquired(page_addr)

    def _refresh_batch(self, desc: RegionDescriptor, pages: List[int],
                       principal: str = "_khazana") -> ProtocolGen:
        reply = yield from self.engine.request_home(
            desc, MessageType.PAGE_FETCH_BATCH,
            {"rid": desc.rid, "pages": list(pages), "register": True,
             "principal": principal},
            policy=FETCH_POLICY,
            fail="no home of region {rid:#x} reachable: {error}",
            nak="skip",
        )
        for item in reply.payload.get("pages", []):
            yield from self._install_refresh(
                desc, int(item["page"]), item["data"],
                item.get("version", 0), item.get("writer", 0),
            )
        # Per-page errors are tolerable for pages we already replicate
        # (stale serve); not for pages we have never held.  This is a
        # softer rule than engine.raise_batch_errors.
        for err in reply.payload.get("errors") or []:
            if not self.host.storage.contains(int(err["page"])):
                raise LockDenied(
                    f"home refused page {int(err['page']):#x}: "
                    f"{err.get('detail', err.get('code', ''))}"
                )

    def release_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        ctx: LockContext,
    ) -> ProtocolGen:
        me = self.host.node_id
        if not self.engine.batch.use_batch(desc, pages):
            yield from super().release_many(desc, pages, ctx)
            return
        updates: List[Dict[str, Any]] = []
        for page_addr in pages:
            if page_addr not in ctx.dirty_pages:
                continue
            page = self.host.storage.peek(page_addr)
            if page is None:
                continue
            version, _writer = self._versions.get(page_addr, (0, 0))
            version += 1
            self._versions[page_addr] = (version, me)
            self._refreshed_at[page_addr] = self.host.now
            updates.append({
                "page": page_addr, "data": page.data,
                "version": version, "writer": me,
                "release_token": False,
            })
        if not updates:
            return
        try:
            yield self.engine.request(
                desc.primary_home, MessageType.UPDATE_PUSH_BATCH,
                {"rid": desc.rid, "updates": updates},
                policy=FETCH_POLICY,
            )
        except (RpcTimeout, RemoteError):
            # Home unreachable: fall back to one background retry per
            # page; local copies stay dirty until each push lands.
            self.engine.batch.retry_per_page(
                desc, updates, self._retry_push, "eventual-push"
            )
            return
        for update in updates:
            self.host.storage.mark_clean(update["page"])

    # ------------------------------------------------------------------
    # Home side
    # ------------------------------------------------------------------

    def handle_page_fetch(self, desc: RegionDescriptor, msg: Message) -> None:
        if not self.check_remote_access(desc, msg, LockMode.READ):
            return

        def item_payload(page_addr: int, data: bytes) -> Dict[str, Any]:
            version, writer = self._versions.get(page_addr, (0, 0))
            return {"data": data, "version": version, "writer": writer}

        self.engine.batch.serve_fetch(desc, msg, item_payload)

    def handle_update(self, desc: RegionDescriptor, msg: Message) -> None:
        if self.host.node_id == desc.primary_home:
            self._apply_at_home(desc, msg)
            return
        if msg.request_id is not None:
            # Same failover hole as the release protocol: a writer's
            # push that missed the primary must be refused, not
            # silently absorbed without a reply.
            self.engine.nak(msg, "not_responsible",
                            "update push needs the primary home")
            return
        self._apply_replica_update(desc, msg)

    def handle_page_fetch_batch(self, desc: RegionDescriptor,
                                msg: Message) -> None:
        if not self.check_remote_access(desc, msg, LockMode.READ):
            return

        def item_payload(page_addr: int, data: bytes) -> Dict[str, Any]:
            version, writer = self._versions.get(page_addr, (0, 0))
            return {"page": page_addr, "data": data,
                    "version": version, "writer": writer}

        self.engine.batch.serve_fetch_batch(desc, msg, item_payload)

    def handle_update_batch(self, desc: RegionDescriptor,
                            msg: Message) -> None:
        if self.host.node_id != desc.primary_home:
            self.engine.nak(msg, "not_responsible",
                            "batched updates go to the primary home")
            return
        updates = msg.payload.get("updates", [])

        def apply() -> ProtocolGen:
            applied = 0
            for update in updates:
                page_addr = int(update["page"])
                incoming = (update.get("version", 0), update.get("writer", 0))
                # Same last-writer-wins rule as the per-page handler.
                if incoming > self._versions.get(page_addr, (0, -1)):
                    yield from self.host.store_local_page(
                        desc, page_addr, update["data"], dirty=False
                    )
                    self._versions[page_addr] = incoming
                    self._record_home_write(
                        desc, page_addr, incoming[0], incoming[1]
                    )
                    if self.host.probe.enabled:
                        self.host.probe.remote_update(
                            self.host.node_id, page_addr, msg.src,
                            desc.attrs.protocol,
                        )
                self._rids[page_addr] = desc.rid
                applied += 1
            self.engine.reply(
                msg, MessageType.UPDATE_ACK_BATCH, {"applied": applied}
            )

        self.engine.spawn_handler(msg, apply(), "apply-batch")

    def _apply_at_home(self, desc: RegionDescriptor, msg: Message) -> None:
        page_addr = msg.payload["page"]
        incoming = (msg.payload.get("version", 0), msg.payload.get("writer", 0))
        current = self._versions.get(page_addr, (0, -1))

        def apply() -> ProtocolGen:
            # Last-writer-wins by (version, writer id): concurrent
            # writers converge on a single winner everywhere.
            if incoming > current:
                yield from self.host.store_local_page(
                    desc, page_addr, msg.payload["data"], dirty=False
                )
                self._versions[page_addr] = incoming
                self._record_home_write(
                    desc, page_addr, incoming[0], incoming[1]
                )
                if self.host.probe.enabled:
                    self.host.probe.remote_update(
                        self.host.node_id, page_addr, msg.src,
                        desc.attrs.protocol,
                    )
            self._rids[page_addr] = desc.rid
            self.engine.reply(msg, MessageType.UPDATE_ACK, {})

        self.engine.spawn_handler(msg, apply(), "apply")

    def _apply_replica_update(self, desc: RegionDescriptor, msg: Message) -> None:
        page_addr = msg.payload["page"]
        incoming = (msg.payload.get("version", 0), msg.payload.get("writer", 0))

        def commit() -> None:
            self._versions[page_addr] = incoming
            self._refreshed_at[page_addr] = self.host.now

        install_replica_update(
            self, desc, page_addr, msg.payload["data"],
            fresh=lambda: incoming > self._versions.get(page_addr, (0, -1)),
            commit=commit,
            op="replica-store",
        )

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Push batched updates from the home to replica sites."""
        if not self._dirty_fanout:
            return
        pages, self._dirty_fanout = self._dirty_fanout, set()
        for page_addr in sorted(pages):
            page = self.host.storage.peek(page_addr)
            entry = self.host.page_directory.get(page_addr)
            if page is None or entry is None:
                continue
            version, writer = self._versions.get(page_addr, (0, 0))
            for sharer in entry.copyset_excluding(self.host.node_id):
                self.engine.send(
                    sharer,
                    MessageType.UPDATE_PUSH,
                    {
                        "rid": entry.rid,
                        "page": page_addr,
                        "data": page.data,
                        "version": version,
                        "writer": writer,
                        "fanout": True,
                    },
                )

    def on_node_failure(self, node_id: int) -> None:
        self.host.page_directory.forget_node(node_id)
