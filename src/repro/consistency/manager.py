"""Consistency manager framework and protocol registry.

The CM sits between the daemon's lock machinery and its peers: "A
Khazana node treats lock requests on an object as indications of
intent to access the object in the specified mode ... It obtains the
local consistency manager's permission before granting such requests.
The CM, in response to such requests, checks if they conflict with
ongoing operations.  If necessary, it delays granting the locks until
the conflict is resolved." (paper Section 3.3)

A CM instance exists per (daemon, protocol).  All methods that may
need remote communication are protocol generators (they yield
Futures and are driven by the daemon's task runner).

Every CM owns a :class:`~repro.consistency.engine.ProtocolEngine`
(``self.engine``): the shared mechanism layer that carries all wire
traffic, home-side transactions, token bookkeeping, and batching.
Policy modules never touch ``host.rpc`` / ``host.reply_*`` directly
(lint rule KHZ007).
"""

from __future__ import annotations

import abc
import logging
from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, List, Mapping, Type

from repro.consistency.engine import (
    KeyedMutex,
    LocalPageState,
    PageEvent,
    PageStateMachine,
    ProtocolEngine,
    typed_denial,
)
from repro.core.errors import ProtocolUnknown
from repro.core.locks import LockContext, LockMode
from repro.core.region import RegionDescriptor
from repro.net.message import Message
from repro.net.tasks import Future

if TYPE_CHECKING:
    from repro.core.cmhost import CMHost

ProtocolGen = Generator[Future, Any, Any]

logger = logging.getLogger(__name__)

#: Engine-layer name; re-exported for callers predating the engine.
_typed_denial = typed_denial

__all__ = [
    "ConsistencyManager",
    "KeyedMutex",
    "LocalPageState",
    "ProtocolGen",
    "available_protocols",
    "create_manager",
    "register_protocol",
    "_typed_denial",
]


class ConsistencyManager(abc.ABC):
    """Base class for consistency protocols.

    ``host`` is the hosting node, seen only through the
    :class:`~repro.core.cmhost.CMHost` protocol — the RPC endpoint,
    page directory, lock table, storage hierarchy, and the reply /
    residency / conflict-wait helpers it names.  Subclasses implement
    the client-side ``acquire``/``release``/``evict`` path and the
    home/replica-side message handlers, reaching the wire only through
    ``self.engine``.
    """

    #: Registry name; subclasses must override.
    protocol_name = ""

    #: The protocol's page-state transition table: which
    #: :class:`PageEvent` moves a page into which
    #: :class:`LocalPageState`.  Subclasses declare theirs.
    TRANSITIONS: Mapping[PageEvent, LocalPageState] = {}

    def __init__(self, host: "CMHost") -> None:
        self.host = host
        #: Local validity of cached pages under this protocol.
        self.page_state: Dict[int, LocalPageState] = {}
        #: The explicit transition machine over ``page_state``.
        self.pages = PageStateMachine(self.page_state, self.TRANSITIONS,
                                      label=self.protocol_name)
        #: Shared mechanism: wire, home transactions, tokens, batching.
        self.engine = ProtocolEngine(self)
        #: Remote invalidations deferred because a local lock context
        #: still covers the page; drained by :meth:`notify_unlocked`.
        self._deferred: Dict[int, List[Callable[[], None]]] = {}

    # --- Client-side path (called by the daemon's lock machinery) ---------

    @abc.abstractmethod
    def acquire(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        mode: LockMode,
        ctx: LockContext,
    ) -> ProtocolGen:
        """Make the local copy of ``page_addr`` usable in ``mode``.

        Runs after local lock-table conflicts have cleared.  On return
        the page must be resident locally with sufficient rights.
        """

    @abc.abstractmethod
    def release(
        self,
        desc: RegionDescriptor,
        page_addr: int,
        ctx: LockContext,
    ) -> ProtocolGen:
        """Protocol work at unlock time (push updates, drop tokens)."""

    # --- Batched multi-page path -------------------------------------------

    def batching_enabled(self) -> bool:
        """Whether this daemon may coalesce multi-page protocol traffic."""
        return bool(self.host.config.enable_batching)

    def acquire_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        mode: LockMode,
        ctx: LockContext,
        note_acquired: Callable[[int], None],
    ) -> ProtocolGen:
        """Acquire every page of a lock range for one context.

        Default: the per-page path — wait out local conflicts, run
        :meth:`acquire`, and pin each page in turn.  Batch-aware
        protocols override this to group the pages by the home node
        that must serve them and issue one RPC per home.

        ``note_acquired(page)`` must be invoked the moment a page's
        acquisition is final: the daemon registers the page in its lock
        table there, and rolls exactly the noted pages back if the rest
        of the range fails (no page stays pinned after a partial
        failure).

        READ acquisitions of distinct pages are mutually independent,
        so they run through the engine's request pipeline (bounded by
        ``config.pipeline_window``) instead of awaiting each reply
        serially.  Write-intent modes stay strictly serial: write
        tokens are taken in ascending page order, which is what keeps
        concurrent multi-page lockers deadlock-free.
        """
        if (
            mode is LockMode.READ
            and len(pages) > 1
            and self.host.config.pipeline_window > 1
        ):
            def acquire_one(page_addr: int) -> ProtocolGen:
                yield from self.host.wait_local_conflicts(page_addr, mode)
                yield from self.acquire(desc, page_addr, mode, ctx)
                # Pin immediately on success: an unpinned-but-acquired
                # page would be a victimization candidate while its
                # siblings are still in flight.
                note_acquired(page_addr)

            settled = yield from self.engine.pipeline(
                [acquire_one(page_addr) for page_addr in pages],
                op="acquire-pipeline",
            )
            for ok, value in settled:
                if not ok:
                    raise value
            return
        for page_addr in pages:
            yield from self.host.wait_local_conflicts(page_addr, mode)
            yield from self.acquire(desc, page_addr, mode, ctx)
            note_acquired(page_addr)

    def release_many(
        self,
        desc: RegionDescriptor,
        pages: List[int],
        ctx: LockContext,
    ) -> ProtocolGen:
        """Release every page of a context (release-type: never raises).

        Default: per-page :meth:`release`, with failures handed to the
        background retry queue (paper 3.5).  Batch-aware protocols
        override this to coalesce the context's dirty pages into one
        ``UPDATE_PUSH_BATCH`` per home node, falling back to per-page
        retries when a home is unreachable.

        Per-page releases of distinct pages never wait on one another
        (release only gives things up), so multi-page releases run
        through the engine's request pipeline; each page's failure
        handling is unchanged.
        """

        if len(pages) > 1 and self.host.config.pipeline_window > 1:
            def release_one(page_addr: int) -> ProtocolGen:
                try:
                    yield from self.release(desc, page_addr, ctx)
                except Exception:  # khz: allow-broad-except(logged and queued for background retry in _queue_release_retry)
                    self._queue_release_retry(desc, page_addr, ctx)

            yield from self.engine.pipeline(
                [release_one(page_addr) for page_addr in pages],
                op="release-pipeline",
            )
            return
        for page_addr in pages:
            try:
                yield from self.release(desc, page_addr, ctx)
            except Exception:  # khz: allow-broad-except(logged and queued for background retry in _queue_release_retry)
                self._queue_release_retry(desc, page_addr, ctx)

    def _queue_release_retry(self, desc: RegionDescriptor, page_addr: int,
                             ctx: LockContext) -> None:
        """Hand one failed per-page release to the background queue.

        Release-type semantics: never surface, but say what is being
        retried so a wedged release is debuggable.
        """
        logger.warning(
            "node %d: release of page %#x failed; queued for "
            "background retry",
            self.host.node_id, page_addr, exc_info=True,
        )
        self.host.retry_queue.enqueue(
            lambda: self.release(desc, page_addr, ctx),
            label=f"cm-release:{page_addr:#x}",
        )

    def evict(
        self, desc: RegionDescriptor, page_addr: int, data: bytes, dirty: bool
    ) -> ProtocolGen:
        """Before the local copy leaves this node entirely: push dirty
        contents home and unregister from the copyset.  Default: write
        back to the home node and send a sharer-unregister."""
        yield from self._default_evict(desc, page_addr, data, dirty)

    def _default_evict(
        self, desc: RegionDescriptor, page_addr: int, data: bytes, dirty: bool
    ) -> ProtocolGen:
        from repro.net.message import MessageType  # local import: no cycle

        home = desc.primary_home
        if home == self.host.node_id:
            return
        if dirty:
            yield self.engine.request(
                home,
                MessageType.UPDATE_PUSH,
                {
                    "rid": desc.rid,
                    "page": page_addr,
                    "data": data,
                    "release_token": False,
                },
            )
        self.engine.send(
            home,
            MessageType.SHARER_UNREGISTER,
            {"rid": desc.rid, "page": page_addr},
        )
        self.pages.drop(page_addr)

    # --- Deferred-conflict machinery ---------------------------------------

    def defer_until_unlocked(self, page_addr: int,
                             action: Callable[[], None]) -> None:
        """Queue ``action`` to run once no local context covers the page
        ("it delays granting the locks until the conflict is
        resolved")."""
        self._deferred.setdefault(page_addr, []).append(action)

    def notify_unlocked(self, page_addr: int) -> None:
        """Called by the daemon whenever a lock context covering
        ``page_addr`` is released; drains deferred actions if the page
        is now free of conflicting contexts."""
        if self.host.lock_table.page_locked(page_addr):
            return
        actions = self._deferred.pop(page_addr, None)
        if not actions:
            return
        for action in actions:
            action()

    def has_deferred(self, page_addr: int) -> bool:
        return bool(self._deferred.get(page_addr))

    # --- Access control -------------------------------------------------------

    def check_remote_access(self, desc: RegionDescriptor, msg: Message,
                            mode: LockMode) -> bool:
        """Home-side ACL enforcement for remote lock/fetch requests.

        The requesting daemon already checked its (possibly stale)
        cached descriptor; the home re-checks against the
        authoritative one — "Khazana checks the region's access
        permissions" (paper 3.2).  NAKs and returns False on denial.
        Requests without a principal (inter-daemon maintenance
        traffic) pass as the system principal.
        """
        from repro.core.security import Right, SYSTEM_PRINCIPAL

        principal = msg.payload.get("principal", SYSTEM_PRINCIPAL)
        needed = Right.WRITE if mode.is_write else Right.READ
        if desc.attrs.acl.allows(principal, needed):
            return True
        self.engine.nak(
            msg, "access_denied",
            f"principal {principal!r} lacks {needed} on region "
            f"{desc.rid:#x}",
        )
        return False

    # --- Home/replica-side message handlers --------------------------------
    # Default implementations NAK; protocols override what they use.

    def handle_lock_request(self, desc: RegionDescriptor, msg: Message) -> None:
        self.engine.nak(msg, "unhandled", "lock_request")

    def handle_page_fetch(self, desc: RegionDescriptor, msg: Message) -> None:
        self.engine.nak(msg, "unhandled", "page_fetch")

    def handle_invalidate(self, desc: RegionDescriptor, msg: Message) -> None:
        self.engine.nak(msg, "unhandled", "invalidate")

    def handle_update(self, desc: RegionDescriptor, msg: Message) -> None:
        self.engine.nak(msg, "unhandled", "update_push")

    def handle_page_fetch_batch(self, desc: RegionDescriptor,
                                msg: Message) -> None:
        self.engine.nak(msg, "unhandled", "page_fetch_batch")

    def handle_lock_request_batch(self, desc: RegionDescriptor,
                                  msg: Message) -> None:
        self.engine.nak(msg, "unhandled", "token_acquire_batch")

    def handle_update_batch(self, desc: RegionDescriptor,
                            msg: Message) -> None:
        self.engine.nak(msg, "unhandled", "update_push_batch")

    def handle_sharer_register(self, desc: RegionDescriptor, msg: Message) -> None:
        entry = self.host.page_directory.ensure(
            msg.payload["page"], desc.rid, homed=True
        )
        # An owner serving a direct read registers the *requester* as
        # the new sharer (Figure 2 steps 7-9); without an explicit
        # field, the sender registers itself.
        entry.record_sharer(int(msg.payload.get("sharer", msg.src)))
        if msg.request_id is not None:
            from repro.net.message import MessageType

            self.engine.reply(msg, MessageType.UPDATE_ACK, {})

    def handle_sharer_unregister(self, desc: RegionDescriptor, msg: Message) -> None:
        entry = self.host.page_directory.get(msg.payload["page"])
        if entry is not None:
            entry.forget_sharer(msg.src)

    def on_node_failure(self, node_id: int) -> None:
        """A peer was declared dead; drop protocol state involving it."""

    # --- Periodic work --------------------------------------------------------

    def tick(self) -> None:
        """Called on the daemon's housekeeping timer (anti-entropy etc.)."""


# --- Protocol registry -----------------------------------------------------

_REGISTRY: Dict[str, Type[ConsistencyManager]] = {}


def register_protocol(cls: Type[ConsistencyManager]) -> Type[ConsistencyManager]:
    """Register a CM class under its ``protocol_name``.

    Usable as a class decorator.  Re-registration under the same name
    replaces the previous class (handy for tests plugging variants).
    """
    if not cls.protocol_name:
        raise ValueError(f"{cls.__name__} must define protocol_name")  # khz: allow-foreign-exception(import-time registration bug in the CM author's code, not a client-facing protocol failure)
    _REGISTRY[cls.protocol_name] = cls
    return cls


def create_manager(name: str, host: Any) -> ConsistencyManager:
    """Instantiate the CM registered under ``name`` for ``host``."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ProtocolUnknown(
            f"no consistency protocol registered under {name!r}; "
            f"known: {sorted(_REGISTRY)}"
        )
    return cls(host)


def available_protocols() -> List[str]:
    return sorted(_REGISTRY)
