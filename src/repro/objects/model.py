"""Object model for the Section 4.2 runtime.

A distributed object is a subclass of :class:`KhazanaObject` whose
methods take the object's mutable ``state`` dict as their first
argument.  Methods are assumed to mutate state unless marked
``@readonly``; the runtime maps this to Khazana lock modes ("ensuring
that the appropriate locking and data access operations are inserted
(transparently) into the object code").
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict


class ObjectError(Exception):
    """Errors raised by the object runtime."""


def readonly(method: Callable) -> Callable:
    """Mark a method as non-mutating: the runtime will take a READ
    lock and skip the write-back."""
    method._khazana_readonly = True
    return method


def is_readonly(method: Callable) -> bool:
    return bool(getattr(method, "_khazana_readonly", False))


class KhazanaObject:
    """Base class for objects stored in Khazana.

    Subclasses define ``initial_state()`` plus ordinary methods::

        class Counter(KhazanaObject):
            @staticmethod
            def initial_state():
                return {"count": 0}

            def increment(self, state, amount=1):
                state["count"] += amount
                return state["count"]

            @readonly
            def value(self, state):
                return state["count"]

    The class body holds *behaviour only*; all state lives in the
    ``state`` dict that Khazana replicates and keeps consistent.
    """

    #: Approximate serialized state budget; the runtime reserves a
    #: region of this many bytes (rounded up to a page).
    state_budget = 4096

    @staticmethod
    def initial_state() -> Dict[str, Any]:
        """Initial state for a fresh instance; override in subclasses."""
        return {}


def encode_state(state: Dict[str, Any], size: int) -> bytes:
    """Serialize object state into its region, NUL-padded."""
    blob = json.dumps(state, separators=(",", ":")).encode("utf-8")
    if len(blob) > size:
        raise ObjectError(
            f"object state needs {len(blob)} bytes; region holds {size}. "
            "Raise the class's state_budget."
        )
    return blob + b"\x00" * (size - len(blob))


def decode_state(data: bytes) -> Dict[str, Any]:
    blob = data.rstrip(b"\x00")
    if not blob:
        return {}
    try:
        return json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ObjectError(f"corrupt object state: {error}") from error
