"""Distributed object runtime: paper Section 4.2.

"To build a distributed object runtime system on top of Khazana, we
plan to use Khazana as the repository for object data and for
maintaining location information related to each object.  The object
runtime layer is responsible for determining the degree of consistency
needed for each object, ensuring that the appropriate locking and data
access operations are inserted (transparently) into the object code,
and determining when to create a local replica of an object rather
than using RPC to invoke a remote instance of the object."

This package implements that veneer:

- object state lives in a Khazana region, serialized by the runtime
  (Khazana itself never interprets it);
- method calls on a :class:`~repro.objects.proxy.Proxy` transparently
  perform lock/read/invoke/write/unlock;
- an invocation *policy* chooses, per call, between executing on a
  local replica and RPC-ing to a node where the object is already
  physically instantiated, using location information exported from
  Khazana;
- the runtime layers reference counting on top (the paper: "the
  object veneer would implement the more powerful semantics expected
  by users of distributed object systems, such as reference
  counting").

Substitution note (see DESIGN.md): the paper "downloads the code to be
executed along with the object instance".  Shipping Python bytecode
adds nothing to the systems questions, so classes are resolved by name
through a registry shared by all runtimes — the state still travels
through Khazana exactly as in the paper.
"""

from repro.objects.model import KhazanaObject, ObjectError, readonly
from repro.objects.proxy import Proxy
from repro.objects.registry import register_class, resolve_class
from repro.objects.runtime import InvocationPolicy, ObjectRef, ObjectRuntime
from repro.objects.transactions import TransactionView, atomically

__all__ = [
    "InvocationPolicy",
    "KhazanaObject",
    "ObjectError",
    "ObjectRef",
    "ObjectRuntime",
    "Proxy",
    "TransactionView",
    "atomically",
    "readonly",
    "register_class",
    "resolve_class",
]
