"""Client-side proxies.

A proxy makes a remote/replicated object look like a plain Python
object: attribute access yields bound callables whose invocation is
routed through the runtime's policy.  "All methods associated with the
object need to be translated to the Khazana interface of reads and
writes to the data contained within the object." (Section 4.2)
"""

from __future__ import annotations

from typing import Any, Callable

from repro.objects.model import ObjectError
from repro.objects.registry import resolve_class
from repro.objects.runtime import InvocationPolicy, ObjectRef, ObjectRuntime


class Proxy:
    """Method-call gateway for one object reference."""

    def __init__(self, runtime: ObjectRuntime, ref: ObjectRef,
                 policy: InvocationPolicy) -> None:
        # Set via __dict__ so __getattr__ stays clean.
        self.__dict__["_runtime"] = runtime
        self.__dict__["_ref"] = ref
        self.__dict__["_policy"] = policy

    @property
    def ref(self) -> ObjectRef:
        return self.__dict__["_ref"]

    @property
    def address(self) -> int:
        return self.ref.address

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name.startswith("_"):
            raise AttributeError(name)
        ref: ObjectRef = self.__dict__["_ref"]
        cls = resolve_class(ref.class_name)
        if not callable(getattr(cls, name, None)):
            raise ObjectError(
                f"{ref.class_name} has no method {name!r}"
            )
        runtime: ObjectRuntime = self.__dict__["_runtime"]
        policy: InvocationPolicy = self.__dict__["_policy"]

        def call(*args: Any, **kwargs: Any) -> Any:
            return runtime.invoke(ref, name, args, kwargs, policy=policy)

        call.__name__ = name
        return call

    def __setattr__(self, name: str, value: Any) -> None:
        raise ObjectError(
            "distributed objects expose behaviour, not attributes; "
            f"cannot set {name!r} on a proxy"
        )

    def __repr__(self) -> str:
        ref = self.ref
        return (
            f"<Proxy {ref.class_name}@{ref.address:#x} "
            f"policy={self.__dict__['_policy'].value}>"
        )
