"""Class registry: the stand-in for code downloading.

Paper Section 4.2: "Methods are invoked by downloading the code to be
executed along with the object instance, and invoking the code
locally."  In this reproduction classes register under a stable name
and every runtime resolves them locally; the object *state* still
travels through Khazana (the part with systems content), while the
*code* is assumed present everywhere — the same assumption a CORBA
deployment makes about stubs.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.objects.model import KhazanaObject, ObjectError

_CLASSES: Dict[str, Type[KhazanaObject]] = {}


def register_class(cls: Type[KhazanaObject],
                   name: str = "") -> Type[KhazanaObject]:
    """Register an object class (usable as a decorator).

    Re-registering the same name with a different class raises, which
    catches accidental collisions between applications.
    """
    key = name or cls.__name__
    existing = _CLASSES.get(key)
    if existing is not None and existing is not cls:
        raise ObjectError(
            f"class name {key!r} already registered by "
            f"{existing.__module__}.{existing.__qualname__}"
        )
    _CLASSES[key] = cls
    cls._khazana_class_name = key
    return cls


def resolve_class(name: str) -> Type[KhazanaObject]:
    cls = _CLASSES.get(name)
    if cls is None:
        raise ObjectError(
            f"object class {name!r} is not registered on this node"
        )
    return cls


def class_name_of(cls: Type[KhazanaObject]) -> str:
    name = getattr(cls, "_khazana_class_name", None)
    if name is None:
        raise ObjectError(
            f"{cls.__qualname__} is not registered; decorate it with "
            "@register_class"
        )
    return name


def registered_classes() -> List[str]:
    return sorted(_CLASSES)


def clear_registry() -> None:
    """Test hook: forget every registered class."""
    _CLASSES.clear()
