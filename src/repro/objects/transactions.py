"""Atomic multi-object operations for the object veneer.

Paper Section 4.2: "The object veneer would implement the more
powerful semantics expected by users of distributed object systems,
such as reference counting (or garbage collection) and transactional
behavior.  Khazana provides the hooks needed to support these higher
level semantics, but does not implement them directly."

This module is that veneer's transactional layer, built purely on the
hooks Khazana already provides:

- **strict two-phase locking** — every object touched by the
  transaction has its region write-locked up front;
- **deadlock avoidance by ordered acquisition** — regions lock in
  global-address order, so two transactions over the same object set
  can never wait on each other in a cycle;
- **atomicity** — all mutated states write back under the held locks,
  then everything unlocks; a body that raises writes back nothing.

Since the locked regions are CREW-consistent, the transaction is
serializable with every other lock-mediated access in the system.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Sequence

from repro.core.locks import LockMode
from repro.objects.model import ObjectError, decode_state, encode_state
from repro.objects.registry import resolve_class
from repro.objects.runtime import ObjectRef, ObjectRuntime


class TransactionView:
    """What the transaction body sees: live state dicts per object.

    Mutations to the dicts are written back atomically when the body
    returns; ``instance(ref)`` gives a behaviour object for calling
    methods against the in-transaction state.
    """

    def __init__(self, states: Dict[int, Dict[str, Any]],
                 refs: Dict[int, ObjectRef]) -> None:
        self._states = states
        self._refs = refs

    def state(self, ref: ObjectRef) -> Dict[str, Any]:
        """The (mutable) state dict of one enlisted object."""
        try:
            return self._states[ref.address]
        except KeyError:
            raise ObjectError(
                f"object {ref.address:#x} is not enlisted in this "
                "transaction"
            ) from None

    def call(self, ref: ObjectRef, method_name: str, *args: Any,
             **kwargs: Any) -> Any:
        """Invoke a method against the in-transaction state."""
        cls = resolve_class(ref.class_name)
        method = getattr(cls, method_name, None)
        if method is None or method_name.startswith("_"):
            raise ObjectError(
                f"{ref.class_name} has no invocable method {method_name!r}"
            )
        return method(cls(), self.state(ref), *args, **kwargs)


def atomically(
    runtime: ObjectRuntime,
    refs: Sequence[ObjectRef],
    body: Callable[[TransactionView], Any],
) -> Any:
    """Run ``body`` atomically over the given objects.

    All object regions are write-locked (in address order), their
    states materialised, ``body(view)`` executed, and every state
    written back before any lock releases.  If ``body`` raises, no
    write-back happens and the exception propagates after the locks
    are released.

    Returns whatever ``body`` returns.
    """
    if not refs:
        raise ObjectError("a transaction needs at least one object")
    by_addr: Dict[int, ObjectRef] = {}
    for ref in refs:
        by_addr[ref.address] = ref
    ordered = [by_addr[a] for a in sorted(by_addr)]

    session = runtime.session
    contexts = []
    try:
        # Growing phase: ordered write locks on every region.
        for ref in ordered:
            ctx = session.lock(ref.address, ref.region_size, LockMode.WRITE)
            contexts.append((ref, ctx))

        docs: Dict[int, Dict[str, Any]] = {}
        states: Dict[int, Dict[str, Any]] = {}
        for ref, ctx in contexts:
            raw = session.read(ctx, ref.address, ref.region_size)
            doc = decode_state(raw)
            docs[ref.address] = doc
            states[ref.address] = doc.setdefault("state", {})

        view = TransactionView(states, by_addr)
        result = body(view)

        # Commit: write every state back while all locks are held.
        for ref, ctx in contexts:
            session.write(
                ctx, ref.address,
                encode_state(docs[ref.address], ref.region_size),
            )
        return result
    finally:
        # Shrinking phase: release everything (unlock never raises).
        for _ref, ctx in contexts:
            session.unlock(ctx)
