"""The object runtime.

Each participating node hosts one :class:`ObjectRuntime` bound to a
Khazana session.  The runtime:

- **exports** objects: reserves a region sized by the class's
  ``state_budget``, stores the serialized state plus a small header
  (class name, reference count);
- **invokes** methods: either locally (lock → read state → run method
  → write back → unlock, so Khazana's consistency management does all
  the replica work), or remotely by RPC to a runtime on a node where
  the object is already physically instantiated — chosen per call by
  the :class:`InvocationPolicy`, using location information exported
  from Khazana (paper Section 4.2);
- maintains **reference counts** in the object header, releasing the
  region when the count reaches zero (the "more powerful semantics"
  the paper assigns to the object veneer, not to Khazana).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple, Type

from repro.core.addressing import DEFAULT_PAGE_SIZE, AddressRange
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.client import KhazanaSession
from repro.core.errors import KhazanaError
from repro.core.locks import LockMode
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcTimeout
from repro.net.tasks import Future
from repro.objects.model import (
    KhazanaObject,
    ObjectError,
    decode_state,
    encode_state,
    is_readonly,
)
from repro.objects.registry import class_name_of, resolve_class

ProtocolGen = Generator[Future, Any, Any]

INVOKE_POLICY = RetryPolicy(timeout=5.0, retries=1, backoff=2.0)

#: Adaptive policy localises an object after this many remote calls.
ADAPTIVE_LOCALIZE_AFTER = 3


class InvocationPolicy(str, enum.Enum):
    """How a proxy executes method calls."""

    LOCAL = "local"       # always pull a replica and run locally
    REMOTE = "remote"     # always RPC to the object's home node
    ADAPTIVE = "adaptive" # local when cached; otherwise remote, and
                          # localise after repeated use


@dataclass(frozen=True)
class ObjectRef:
    """A location-transparent handle: the object's Khazana address.

    "Khazana provides location transparency for the object by
    associating with each object a unique identifying Khazana
    address." (Section 4.2)
    """

    address: int
    class_name: str
    region_size: int

    def to_wire(self) -> Dict[str, Any]:
        return {
            "address": self.address,
            "class_name": self.class_name,
            "region_size": self.region_size,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ObjectRef":
        return cls(
            address=int(data["address"]),
            class_name=str(data["class_name"]),
            region_size=int(data["region_size"]),
        )


class ObjectRuntime:
    """Per-node distributed-object veneer over one Khazana session."""

    def __init__(self, session: KhazanaSession,
                 policy: InvocationPolicy = InvocationPolicy.ADAPTIVE) -> None:
        self.session = session
        self.policy = policy
        self._remote_calls: Dict[int, int] = {}   # address -> remote count
        self.stats = {"local_invocations": 0, "remote_invocations": 0,
                      "served_invocations": 0}
        session.daemon.rpc.on(MessageType.APP_REQUEST, self._handle_invoke)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def export(
        self,
        cls: Type[KhazanaObject],
        state: Optional[Dict[str, Any]] = None,
        consistency: ConsistencyLevel = ConsistencyLevel.STRICT,
        replicas: int = 1,
    ) -> ObjectRef:
        """Create a new object instance in global memory."""
        name = class_name_of(cls)
        size = max(
            DEFAULT_PAGE_SIZE,
            -(-cls.state_budget // DEFAULT_PAGE_SIZE) * DEFAULT_PAGE_SIZE,
        )
        region = self.session.reserve(
            size,
            RegionAttributes(
                consistency_level=consistency,
                min_replicas=replicas,
            ),
        )
        self.session.allocate(region.rid)
        doc = {
            "__class__": name,
            "__refs__": 1,
            "state": state if state is not None else cls.initial_state(),
        }
        self.session.write_at(region.rid, encode_state(doc, size))
        return ObjectRef(address=region.rid, class_name=name,
                         region_size=size)

    def attach(self, address: int) -> ObjectRef:
        """Build a reference to an existing object by address."""
        doc = decode_state(self.session.read_at(address, DEFAULT_PAGE_SIZE))
        name = doc.get("__class__")
        if not name:
            raise ObjectError(f"no object header at {address:#x}")
        cls = resolve_class(name)
        size = max(
            DEFAULT_PAGE_SIZE,
            -(-cls.state_budget // DEFAULT_PAGE_SIZE) * DEFAULT_PAGE_SIZE,
        )
        return ObjectRef(address=address, class_name=name, region_size=size)

    def proxy(self, ref: ObjectRef,
              policy: Optional[InvocationPolicy] = None) -> "Proxy":
        from repro.objects.proxy import Proxy

        return Proxy(self, ref, policy or self.policy)

    # ------------------------------------------------------------------
    # Reference counting (veneer semantics, Section 4.2)
    # ------------------------------------------------------------------

    def retain(self, ref: ObjectRef) -> int:
        """Increment the object's reference count."""
        return self._adjust_refs(ref, +1)

    def release(self, ref: ObjectRef) -> int:
        """Decrement the count; at zero the region is unreserved."""
        remaining = self._adjust_refs(ref, -1)
        if remaining <= 0:
            self.session.unreserve(ref.address)
        return remaining

    def _adjust_refs(self, ref: ObjectRef, delta: int) -> int:
        ctx = self.session.lock(ref.address, ref.region_size, LockMode.WRITE)
        try:
            doc = decode_state(
                self.session.read(ctx, ref.address, ref.region_size)
            )
            refs = int(doc.get("__refs__", 0)) + delta
            doc["__refs__"] = refs
            self.session.write(
                ctx, ref.address, encode_state(doc, ref.region_size)
            )
            return refs
        finally:
            self.session.unlock(ctx)

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    def invoke(self, ref: ObjectRef, method_name: str,
               args: Tuple, kwargs: Dict[str, Any],
               policy: Optional[InvocationPolicy] = None) -> Any:
        """Synchronous method invocation through the policy."""
        policy = policy or self.policy
        if self._should_run_locally(ref, policy):
            self.stats["local_invocations"] += 1
            outcome = self.session.daemon.spawn(
                self._invoke_local(ref, method_name, args, kwargs),
                label=f"obj-invoke:{method_name}",
            )
            return self.session.driver.wait(outcome)
        return self._invoke_remote(ref, method_name, args, kwargs)

    def _should_run_locally(self, ref: ObjectRef,
                            policy: InvocationPolicy) -> bool:
        if policy is InvocationPolicy.LOCAL:
            return True
        if policy is InvocationPolicy.REMOTE:
            return self._home_node(ref) == self.session.node_id
        # ADAPTIVE: run locally when the object is already cached here
        # or when repeated remote use says it is worth localising.
        if self.session.daemon.storage.contains(ref.address):
            return True
        if self._home_node(ref) == self.session.node_id:
            return True
        return self._remote_calls.get(ref.address, 0) >= ADAPTIVE_LOCALIZE_AFTER

    def _home_node(self, ref: ObjectRef) -> Optional[int]:
        """Location information exported from Khazana (Section 4.2)."""
        desc = self.session.daemon.region_directory.find_covering(ref.address)
        if desc is not None:
            return desc.primary_home
        daemon = self.session.daemon
        try:
            desc = self.session.driver.wait(
                daemon.spawn(
                    daemon.locate_region(ref.address), label="obj-locate"
                )
            )
        except (KhazanaError, RpcTimeout, RemoteError):
            # Location is advisory: an unlocatable object just falls
            # back to the policy's remote-invocation path.
            return None
        return desc.primary_home

    def _invoke_local(self, ref: ObjectRef, method_name: str,
                      args: Tuple, kwargs: Dict[str, Any]) -> ProtocolGen:
        """The transparent lock/read/run/write/unlock sequence."""
        cls = resolve_class(ref.class_name)
        method = getattr(cls, method_name, None)
        if method is None or method_name.startswith("_"):
            raise ObjectError(
                f"{ref.class_name} has no invocable method {method_name!r}"
            )
        mode = LockMode.READ if is_readonly(method) else LockMode.WRITE
        daemon = self.session.daemon
        target = AddressRange(ref.address, ref.region_size)
        ctx = yield from daemon.op_lock(target, mode, self.session.principal)
        try:
            raw = yield from daemon.op_read(ctx, target)
            doc = decode_state(raw)
            state = doc.setdefault("state", {})
            instance = cls()
            result = method(instance, state, *args, **kwargs)
            if mode is LockMode.WRITE:
                yield from daemon.op_write(
                    ctx, target, encode_state(doc, ref.region_size)
                )
            return result
        finally:
            yield from daemon.op_unlock(ctx)

    def _invoke_remote(self, ref: ObjectRef, method_name: str,
                       args: Tuple, kwargs: Dict[str, Any]) -> Any:
        """RPC to a runtime on a node that has the object instantiated."""
        target = self._home_node(ref)
        if target is None:
            target = self.session.daemon.config.bootstrap_node
        self.stats["remote_invocations"] += 1
        self._remote_calls[ref.address] = (
            self._remote_calls.get(ref.address, 0) + 1
        )
        future = self.session.daemon.rpc.request(
            target,
            MessageType.APP_REQUEST,
            {
                "ref": ref.to_wire(),
                "method": method_name,
                "args": list(args),
                "kwargs": kwargs,
            },
            policy=INVOKE_POLICY,
        )
        try:
            reply = self.session.driver.wait(future)
        except RemoteError as error:
            if error.code == "unhandled":
                # No runtime lives on the home node; fall back to a
                # local replica — exactly the trade the policy exists
                # to make.
                self.stats["remote_invocations"] -= 1
                self.stats["local_invocations"] += 1
                outcome = self.session.daemon.spawn(
                    self._invoke_local(ref, method_name, args, kwargs),
                    label=f"obj-invoke:{method_name}",
                )
                return self.session.driver.wait(outcome)
            raise ObjectError(f"remote invocation failed: {error}") from error
        except RpcTimeout as error:
            raise ObjectError(
                f"no runtime answered on node {target}: {error}"
            ) from error
        return reply.payload.get("result")

    def _handle_invoke(self, msg: Message) -> None:
        """Server side of remote invocation."""
        ref = ObjectRef.from_wire(msg.payload["ref"])
        method = msg.payload["method"]
        args = tuple(msg.payload.get("args", ()))
        kwargs = dict(msg.payload.get("kwargs", {}))
        self.stats["served_invocations"] += 1
        daemon = self.session.daemon

        def serve() -> ProtocolGen:
            result = yield from self._invoke_local(ref, method, args, kwargs)
            daemon.reply_request(msg, MessageType.APP_REPLY,
                                 {"result": result})

        daemon.spawn_handler(msg, serve(), label=f"obj-serve:{method}")
