"""Public facade: build and drive a Khazana deployment.

Typical use::

    from repro import api
    from repro.core import LockMode, RegionAttributes

    cluster = api.create_cluster(num_nodes=5)
    kz = cluster.client(node=1)
    region = kz.reserve(64 * 1024)
    kz.allocate(region.rid)
    kz.write_at(region.rid, b"hello, global memory")
    print(cluster.client(node=4).read_at(region.rid, 20))

The cluster wraps the discrete-event simulator; every client call runs
the simulation forward until the operation completes, so the code
above behaves like a blocking client library while remaining fully
deterministic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Union

from repro.analysis.races import RaceDetector
from repro.core.client import KhazanaSession, SyncDriver
from repro.core.daemon import DaemonConfig, KhazanaDaemon
from repro.net.clock import EventScheduler
from repro.net.runtime import SimRuntime
from repro.net.sim import SimNetwork, Topology


class Cluster:
    """A set of Khazana daemons on a simulated network."""

    def __init__(
        self,
        num_nodes: int,
        topology: Union[str, Topology, None] = None,
        seed: int = 0,
        config: Optional[DaemonConfig] = None,
        settle: bool = True,
        clusters: Optional[List[List[int]]] = None,
        node_configs: Optional[Dict[int, DaemonConfig]] = None,
    ) -> None:
        """Build a Khazana deployment.

        ``clusters`` partitions the node ids into clusters (paper
        Section 3.1's hierarchy): each cluster's first node hosts its
        cluster-manager role, managers know each other for
        inter-cluster location queries, and — unless an explicit
        topology is given — intra-cluster links are LAN and
        inter-cluster links are WAN.  Without ``clusters`` the
        deployment is the paper's single-cluster prototype.
        """
        if num_nodes < 1:
            raise ValueError(f"need at least one node, got {num_nodes}")
        self.scheduler = EventScheduler()
        self.clusters = self._check_clusters(clusters, num_nodes)
        self.topology = self._build_topology(topology, num_nodes)
        self.network = SimNetwork(self.scheduler, self.topology, seed=seed)
        #: The backend seam every daemon is built over.  A Cluster is
        #: always the simulated backend; the asyncio backend is built
        #: by repro.tools.cluster / repro.bench.transport instead.
        self.runtime = SimRuntime(self.scheduler, self.network)
        self.config = config if config is not None else DaemonConfig()
        self._node_configs = dict(node_configs) if node_configs else {}
        self.driver = SyncDriver(self.scheduler)

        node_ids = list(range(num_nodes))
        #: Shared race detector (None unless some config sets
        #: detect_races): one observer across all daemons, so
        #: cross-node violations — two CREW writers on different
        #: nodes — are visible.
        self.race_detector: Optional[RaceDetector] = None
        if any(self._config_for(n).detect_races for n in node_ids):
            self.race_detector = RaceDetector()
            self.race_detector.attach_network(self.network)
        self.daemons: Dict[int, KhazanaDaemon] = {}
        for node_id in node_ids:
            self.daemons[node_id] = KhazanaDaemon(
                node_id, self.runtime,
                config=self._config_for(node_id),
                probe=self.race_detector,
            )
        for daemon in self.daemons.values():
            daemon.bootstrap_system_region(peers=node_ids)
        if settle:
            # Let bootstrap-time traffic (initial pings) drain.
            self.run(0.01)

    @staticmethod
    def _check_clusters(
        clusters: Optional[List[List[int]]], num_nodes: int
    ) -> Optional[List[List[int]]]:
        if clusters is None:
            return None
        flat = [node for group in clusters for node in group]
        if sorted(flat) != list(range(num_nodes)):
            raise ValueError(
                "clusters must partition exactly the node ids "
                f"0..{num_nodes - 1}, got {clusters}"
            )
        if any(not group for group in clusters):
            raise ValueError("every cluster needs at least one node")
        return [list(group) for group in clusters]

    def _config_for(self, node_id: int) -> DaemonConfig:
        base = self._node_configs.get(node_id, self.config)
        if self.clusters is None:
            return base
        managers = [group[0] for group in self.clusters]
        for cluster_id, group in enumerate(self.clusters):
            if node_id in group:
                return replace(
                    base,
                    cluster_id=cluster_id,
                    cluster_manager_node=group[0],
                    peer_managers=tuple(
                        m for m in managers if m != group[0]
                    ),
                    bootstrap_node=managers[0],
                )
        raise ValueError(f"node {node_id} missing from cluster map")

    def _build_topology(self, topology: Union[str, Topology, None],
                        num_nodes: int) -> Topology:
        if isinstance(topology, Topology):
            return topology
        if topology is None:
            if self.clusters is not None:
                assignment = {
                    node: cid
                    for cid, group in enumerate(self.clusters)
                    for node in group
                }
                return Topology.clustered(assignment)
            topology = "lan"
        if topology == "lan":
            return Topology.lan()
        if topology == "wan":
            return Topology.wan()
        if topology == "two_cluster":
            half = num_nodes // 2
            assignment = {
                node: (0 if node < half else 1) for node in range(num_nodes)
            }
            return Topology.clustered(assignment)
        raise ValueError(
            f"unknown topology {topology!r}; use 'lan', 'wan', "
            "'two_cluster', or a Topology instance"
        )

    # --- Clients -----------------------------------------------------------

    def client(self, node: int = 0, principal: str = "user") -> KhazanaSession:
        """A session bound to the daemon on ``node``."""
        return KhazanaSession(self.daemons[node], self.driver, principal)

    # --- Simulation control ---------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run(self, duration: float) -> int:
        """Advance virtual time by ``duration`` seconds."""
        return self.scheduler.run_for(duration)

    def run_until(self, deadline: float) -> int:
        return self.scheduler.run_until(deadline)

    # --- Fault injection ---------------------------------------------------------

    def crash(self, node: int) -> None:
        """Crash a node: it stops communicating and loses its RAM."""
        daemon = self.daemons[node]
        self.network.crash(node)
        for address in daemon.storage.memory.addresses():
            daemon.storage.memory.remove(address)

    def recover(self, node: int) -> None:
        """Reconnect a previously crashed node (disk state intact)."""
        self.network.recover(node)

    def add_node(self, node: Optional[int] = None) -> KhazanaDaemon:
        """Bring a brand-new node into the running system.

        "Machines can dynamically enter and leave Khazana and
        contribute/reclaim local resources" (paper Section 3).  The
        newcomer joins the cluster of the current cluster-manager
        (cluster 0 in hierarchies), learns the well-known system
        region, and starts pinging; existing daemons learn about it
        through their failure detectors.
        """
        if node is None:
            node = max(self.daemons) + 1
        if node in self.daemons:
            raise ValueError(f"node {node} already exists")
        if self.clusters is not None:
            self.clusters[0].append(node)
        fresh = KhazanaDaemon(
            node, self.runtime,
            config=self._config_for(node),
            probe=self.race_detector,
        )
        existing = self.node_ids()
        peers = existing + [node]
        fresh.bootstrap_system_region(peers=peers)
        self.daemons[node] = fresh
        for other in self.daemons.values():
            if other.node_id != node:
                other.detector.add_peer(node)
        if fresh.membership is not None and existing:
            # Ring placement: run the join protocol so every member
            # learns the newcomer and re-homing starts (the seed peer
            # gossips the join to the rest of the ring).
            fresh.spawn(
                fresh.membership.join(existing[0]), label="member-join"
            )
        return fresh

    def remove_node(self, node: int) -> None:
        """Cleanly take a node out of the system.

        The daemon stops answering; peers notice through their
        detectors and replica maintenance re-replicates anything it
        homed (given ``min_replicas`` > 1).
        """
        daemon = self.daemons.pop(node)
        daemon.stop()
        for other in self.daemons.values():
            # A clean leave is announced rather than discovered: death
            # listeners (copyset scrubbing, replica repair) fire now.
            other.detector.declare_dead(node)

    def restart_node(self, node: int) -> KhazanaDaemon:
        """Replace a (crashed) daemon with a fresh incarnation.

        With a ``spill_dir`` configured the new daemon recovers its
        homed regions, page metadata, and page contents from its
        persistent store — the paper's "persistent (disk)" storage
        surviving a daemon crash.  Without one, the node comes back
        empty, like a wiped machine rejoining the system.
        """
        old = self.daemons[node]
        old.stop()
        self.network.recover(node)
        fresh = KhazanaDaemon(
            node, self.runtime,
            config=self._config_for(node),
            probe=self.race_detector,
        )
        fresh.bootstrap_system_region(peers=self.node_ids())
        self.daemons[node] = fresh
        return fresh

    def partition(self, group_a, group_b) -> None:
        self.network.partition(set(group_a), set(group_b))

    def heal(self) -> None:
        self.network.heal_partitions()

    # --- Introspection ----------------------------------------------------------

    @property
    def stats(self):
        """Aggregate network statistics."""
        return self.network.stats

    def node_ids(self) -> List[int]:
        return sorted(self.daemons)

    def daemon(self, node: int) -> KhazanaDaemon:
        return self.daemons[node]


def create_cluster(
    num_nodes: int = 3,
    topology: Union[str, Topology, None] = None,
    seed: int = 0,
    memory_pages: Optional[int] = None,
    disk_pages: Optional[int] = None,
    config: Optional[DaemonConfig] = None,
    clusters: Optional[List[List[int]]] = None,
) -> Cluster:
    """Build a ready-to-use Khazana deployment.

    ``memory_pages``/``disk_pages`` size each daemon's storage levels
    in 4 KiB pages; ``clusters`` builds the Section 3.1 multi-cluster
    hierarchy; other tunables go through ``config``.
    """
    if config is None:
        config = DaemonConfig()
    if memory_pages is not None:
        config = replace(config, memory_bytes=memory_pages * 4096)
    if disk_pages is not None:
        config = replace(config, disk_bytes=disk_pages * 4096)
    return Cluster(num_nodes, topology=topology, seed=seed, config=config,
                   clusters=clusters)


def create_hierarchy(
    cluster_sizes: List[int],
    seed: int = 0,
    config: Optional[DaemonConfig] = None,
) -> Cluster:
    """Build a multi-cluster hierarchy from per-cluster sizes.

    ``create_hierarchy([3, 3, 2])`` makes clusters {0,1,2}, {3,4,5},
    {6,7} with LAN links inside each cluster and WAN links between
    them; nodes 0, 3 and 6 host the cluster-manager roles.
    """
    groups: List[List[int]] = []
    next_node = 0
    for size in cluster_sizes:
        groups.append(list(range(next_node, next_node + size)))
        next_node += size
    return create_cluster(num_nodes=next_node, seed=seed, config=config,
                          clusters=groups)
