"""Virtual time and event scheduling for the simulated network.

Khazana's original prototype ran as Unix daemon processes exchanging
messages over sockets.  For a deterministic, laptop-scale reproduction
we replace wall-clock time with a virtual clock and drive every daemon
from a single discrete-event scheduler.  All latencies in the system
(network links, disk seeks, timeouts) are expressed in virtual seconds.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional


class VirtualClock:
    """A monotonically advancing virtual clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises ``ValueError`` if ``when`` is in the past; virtual time
        never runs backwards.
        """
        if when < self._now:
            raise ValueError(
                f"cannot move clock backwards: {when} < {self._now}"
            )
        self._now = when


class _Event:
    """A scheduled callback; orderable by (time, sequence number)."""

    __slots__ = ("when", "seq", "callback", "cancelled", "label")

    def __init__(self, when: float, seq: int, callback: Callable[[], None],
                 label: str = ""):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def __lt__(self, other: "_Event") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:
        return f"<event {self.label or '?'} @{self.when:.6f} #{self.seq}>"


class EventHandle:
    """Handle returned by ``EventScheduler.call_at``; supports cancel()."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from running if it has not fired yet."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        return self._event.when

    @property
    def label(self) -> str:
        return self._event.label


class EventScheduler:
    """Discrete-event scheduler driving the whole simulation.

    Events fire in (time, insertion-order) order, which makes every run
    of the simulator fully deterministic for a given seed and workload.
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        #: Schedule-exploration hook (``repro.analysis.explore``).  When
        #: set, every step offers the *window* of eligible events —
        #: those within ``choice_horizon`` virtual seconds of the
        #: earliest pending event, in (when, seq) order — to this
        #: callable, which returns the one to fire next.  The clock
        #: only advances to the earliest event's time, so firing a
        #: later-window event early just means "that delivery beat the
        #: latency model"; virtual time stays monotonic.
        self.chooser: Optional[Callable[[List[_Event]], _Event]] = None
        #: Width of the eligibility window offered to :attr:`chooser`.
        self.choice_horizon: float = 0.0
        #: Post-event hook: called with the event just executed (both
        #: default and chooser-driven steps).  The explorer uses it to
        #: evaluate invariants after every scheduled step.
        self.observer: Optional[Callable[[_Event], None]] = None

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    def call_at(self, when: float, callback: Callable[[], None],
                label: str = "") -> EventHandle:
        """Schedule ``callback`` to run at absolute virtual time ``when``.

        ``label`` is a stable, human-readable identity for the event;
        the schedule explorer keys its decisions and coverage on it.
        """
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule event in the past: {when} < {self.clock.now}"
            )
        event = _Event(when, next(self._seq), callback, label=label)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_later(self, delay: float, callback: Callable[[], None],
                   label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` virtual seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self.clock.now + delay, callback, label=label)

    def call_soon(self, callback: Callable[[], None],
                  label: str = "") -> EventHandle:
        """Schedule ``callback`` at the current virtual time (after
        already-queued same-time events)."""
        return self.call_at(self.clock.now, callback, label=label)

    def _pop_next(self) -> Optional[_Event]:
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Run the next pending event.  Returns False when idle.

        With a :attr:`chooser` installed the next event is picked from
        the eligibility window instead of strict (when, seq) order; a
        chooser may also mark the chosen event cancelled (a modelled
        message loss), in which case the step is consumed without
        running the callback.
        """
        if self.chooser is not None:
            return self._step_chosen()
        event = self._pop_next()
        if event is None:
            return False
        self.clock.advance_to(event.when)
        self._events_processed += 1
        event.callback()
        if self.observer is not None:
            self.observer(event)
        return True

    def _eligible_window(self) -> List[_Event]:
        """Pop every live event within ``choice_horizon`` of the head."""
        first = self._pop_next()
        if first is None:
            return []
        window = [first]
        limit = first.when + self.choice_horizon
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.when > limit:
                break
            window.append(heapq.heappop(self._queue))
        return window

    def _step_chosen(self) -> bool:
        window = self._eligible_window()
        if not window:
            return False
        chosen = self.chooser(window) if len(window) > 1 else window[0]
        if chosen not in window:
            raise ValueError(f"chooser returned {chosen!r}, not in window")
        for event in window:
            if event is not chosen:
                heapq.heappush(self._queue, event)
        # Only advance to the *earliest* eligible time: firing a later
        # event early models a faster-than-modelled delivery without
        # ever moving virtual time backwards for the events left queued.
        self.clock.advance_to(window[0].when)
        self._events_processed += 1
        if not chosen.cancelled:
            chosen.callback()
        if self.observer is not None:
            self.observer(chosen)
        return True

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run events until none remain.  Returns events executed.

        ``max_events`` guards against protocol livelock in tests; a run
        that exceeds it raises ``RuntimeError`` rather than spinning.
        """
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    f"scheduler exceeded {max_events} events; "
                    "likely livelock in a protocol"
                )
        return executed

    def run_until(self, deadline: float, max_events: int = 10_000_000) -> int:
        """Run events with time <= deadline, then advance clock to it."""
        executed = 0
        while self._queue:
            upcoming = self._peek_time()
            if upcoming is None or upcoming > deadline:
                break
            if not self.step():
                break
            executed += 1
            if executed > max_events:
                raise RuntimeError(
                    f"scheduler exceeded {max_events} events before {deadline}"
                )
        if deadline > self.clock.now:
            self.clock.advance_to(deadline)
        return executed

    def run_for(self, duration: float, max_events: int = 10_000_000) -> int:
        """Run events for ``duration`` virtual seconds from now."""
        return self.run_until(self.clock.now + duration, max_events=max_events)

    def _peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].when

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)
