"""Length-prefixed message framing for stream transports.

One frame on the wire is::

    <u32 little-endian body length> <body>

where the body is either

- the PR-6 binary codec encoding (first byte is the codec magic
  ``0xC5``) for the 17 hot message types, or
- a tagged pickle (first byte ``0x50``, then ``pickle.dumps`` of the
  envelope tuple) for cold message types and for hot-type payloads the
  codec cannot express.  The tag bytes are disjoint, so the decoder
  dispatches on the body's first byte.

Pickle is acceptable here because frames only ever arrive from peer
daemons of the same deployment on localhost/trusted links — the same
trust domain as the shared address space itself.

This module is also the satellite fix for ``Message.size_bytes`` over
TCP: :func:`frame_size` is the *actual* number of bytes a message
occupies on a stream (prefix included), for cold types included, and
:func:`install_exact_sizes` swaps it in as the message-size hook for
as long as a TCP transport is alive, so tap-reported sizes match
socket-measured bytes exactly.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Optional

from repro.net import codec
from repro.net.message import Message, MessageType, set_size_codec

#: Frame length prefix: one unsigned 32-bit little-endian integer.
LENGTH_PREFIX = struct.Struct("<I")

#: First body byte of a pickled (non-codec) envelope.
PICKLE_TAG = 0x50

#: Upper bound on one frame body; a prefix above this is treated as a
#: corrupt stream rather than an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def _picklable(value: Any) -> Any:
    """Deep-copy container payloads, normalising buffer views.

    The zero-copy dataplane ships page bytes as ``memoryview`` slices
    over frozen buffers; those views pickle as plain ``bytes`` here so
    the receiving process gets an ordinary immutable buffer.
    """
    if isinstance(value, (memoryview, bytearray)):
        return bytes(value)
    if isinstance(value, dict):
        return {key: _picklable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        converted = [_picklable(item) for item in value]
        return type(value)(converted) if isinstance(value, tuple) \
            else converted
    return value


def _pickle_body(message: Message) -> bytes:
    envelope = (
        message.msg_type.value,
        message.src,
        message.dst,
        _picklable(message.payload),
        message.request_id,
        message.reply_to,
        message.msg_id,
    )
    return bytes([PICKLE_TAG]) + pickle.dumps(envelope, protocol=4)


def encode_frame(message: Message) -> bytes:
    """One message as a complete frame (length prefix + body)."""
    body = codec.encode(message)
    if body is None:
        body = _pickle_body(message)
    return LENGTH_PREFIX.pack(len(body)) + body


def decode_body(body: bytes) -> Message:
    """Inverse of the body part of :func:`encode_frame`."""
    if not body:
        raise ValueError("empty frame body")
    if body[0] == PICKLE_TAG:
        msg_type, src, dst, payload, request_id, reply_to, msg_id = (
            pickle.loads(body[1:])
        )
        return Message(
            msg_type=MessageType(msg_type),
            src=src,
            dst=dst,
            payload=payload,
            request_id=request_id,
            reply_to=reply_to,
            msg_id=msg_id,
        )
    return codec.decode(body)


def frame_size(message: Message) -> int:
    """Exact on-the-wire size of ``message`` as one stream frame.

    Hot types use the codec's arithmetic size; cold types pay for the
    actual pickle (they are rare control traffic, so the throwaway
    encode is cheap where it matters not at all).
    """
    body_size = codec.encoded_size(message)
    if body_size is None:
        body_size = len(_pickle_body(message))
    return LENGTH_PREFIX.size + body_size


# --- Message.size_bytes integration ----------------------------------------
#
# While any TCP transport is alive, every Message.size_bytes() call in
# the process answers with the true frame size.  Reference-counted so
# several transports in one process (the in-process benchmark builds
# one per daemon) install once and the original hook — the codec-only
# sizer the simulator uses — comes back when the last one closes.

_installs = 0
_previous = None


def _hook(message: Message) -> Optional[int]:
    return frame_size(message)


def install_exact_sizes() -> None:
    """Make ``Message.size_bytes`` report exact frame sizes."""
    global _installs, _previous
    if _installs == 0:
        _previous = set_size_codec(_hook)
    _installs += 1


def uninstall_exact_sizes() -> None:
    """Undo one :func:`install_exact_sizes`; restores the prior hook
    when the last installer has gone."""
    global _installs, _previous
    if _installs == 0:
        return
    _installs -= 1
    if _installs == 0:
        set_size_codec(_previous)
        _previous = None
